//! Pooled-vs-serial consistency for the parallel dense kernels: the
//! CGS panel BLAS-2 pair, the row-split GEMV, and the column-split
//! transposed GEMV.
//!
//! Sizes are chosen to straddle the calibrated thresholds
//! (`PANEL_PAR_MIN_FLOPS`, `MATVEC_PAR_MIN_ELEMS`) so both the serial
//! and the pooled paths run. Where the parallel decomposition keeps
//! each output element's reduction loop identical (panel dots, GEMV
//! row spans, transposed-GEMV column dots), agreement is asserted
//! *bit-for-bit* via repeat-determinism plus an exact oracle; the
//! mathematical cross-checks against naive loops use 1e-12. The suite
//! must also pass under `LSI_NUM_THREADS=1`.

use lsi_linalg::gemm::{panel_qt_w, panel_w_minus_qy, PANEL_PAR_MIN_FLOPS};
use lsi_linalg::ops::{matvec, matvec_t, MATVEC_PAR_MIN_ELEMS};
use lsi_linalg::{vecops, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..m * n).map(|_| rng.random::<f64>() - 0.5).collect();
    DenseMatrix::from_col_major(m, n, data).unwrap()
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
}

/// Shapes below and above the panel threshold (flops = 2·m·n).
fn panel_shapes() -> Vec<(usize, usize)> {
    let above = (PANEL_PAR_MIN_FLOPS / 2 / 64) + 64;
    vec![(64, 7), (301, 13), (above, 64), (above + 17, 93)]
}

#[test]
fn panel_qt_w_matches_column_dots_and_is_deterministic() {
    for (i, &(m, n)) in panel_shapes().iter().enumerate() {
        let q = random_matrix(m, n, 100 + i as u64);
        let w = random_vec(m, 200 + i as u64);
        let y = panel_qt_w(&q, n, &w);
        // Tolerance oracle: vecops::dot accumulates in four lanes, the
        // panel kernel per-column — same sum, different association.
        for j in 0..n {
            let want = vecops::dot(q.col(j), &w);
            assert!((y[j] - want).abs() < 1e-12 * m as f64, "col {j} of {m}x{n}");
        }
        // Determinism: the pooled 4-column blocks land on different
        // workers every run; the bits may not move.
        for _ in 0..10 {
            assert_eq!(y, panel_qt_w(&q, n, &w), "{m}x{n} repeat drifted");
        }
    }
}

#[test]
fn panel_w_minus_qy_matches_axpy_loop_and_is_deterministic() {
    for (i, &(m, n)) in panel_shapes().iter().enumerate() {
        let q = random_matrix(m, n, 300 + i as u64);
        let y = random_vec(n, 400 + i as u64);
        let w0 = random_vec(m, 500 + i as u64);

        // Tolerance oracle: sequential per-column AXPYs associate the
        // subtraction differently from the fused 4-column kernel.
        let mut want = w0.clone();
        for j in 0..n {
            vecops::axpy(-y[j], q.col(j), &mut want);
        }
        let mut w = w0.clone();
        panel_w_minus_qy(&q, n, &y, &mut w);
        for r in 0..m {
            assert!((w[r] - want[r]).abs() < 1e-12 * n as f64, "row {r} of {m}x{n}");
        }

        // Determinism: repeats are bit-identical even though the row
        // spans land on different workers every run.
        for _ in 0..10 {
            let mut w2 = w0.clone();
            panel_w_minus_qy(&q, n, &y, &mut w2);
            assert_eq!(w, w2, "{m}x{n} repeat drifted");
        }
    }
}

#[test]
fn parallel_gemv_matches_naive_and_is_deterministic() {
    // m*n above and below MATVEC_PAR_MIN_ELEMS; tall shapes mimic the
    // scoring use (document rows x k factors).
    let above_rows = MATVEC_PAR_MIN_ELEMS / 64 + 100;
    for (i, &(m, n)) in [(128usize, 64usize), (above_rows, 64), (above_rows + 31, 96)]
        .iter()
        .enumerate()
    {
        let a = random_matrix(m, n, 600 + i as u64);
        let x = random_vec(n, 700 + i as u64);
        let y = matvec(&a, &x).unwrap();

        let mut want = vec![0.0; m];
        for j in 0..n {
            vecops::axpy(x[j], a.col(j), &mut want);
        }
        for r in 0..m {
            assert!((y[r] - want[r]).abs() < 1e-12 * n as f64, "row {r} of {m}x{n}");
        }
        for _ in 0..10 {
            assert_eq!(y, matvec(&a, &x).unwrap(), "{m}x{n} repeat drifted");
        }
    }
}

#[test]
fn parallel_gemv_skips_zero_blocks_identically() {
    // Sparse query vectors: most coefficients zero. The zero-block
    // skip must behave the same on every row span.
    let m = MATVEC_PAR_MIN_ELEMS / 32;
    let n = 48;
    let a = random_matrix(m, n, 800);
    let mut x = vec![0.0; n];
    x[5] = 1.25;
    x[30] = -0.75;
    let y = matvec(&a, &x).unwrap();
    let mut want = vec![0.0; m];
    vecops::axpy(1.25, a.col(5), &mut want);
    vecops::axpy(-0.75, a.col(30), &mut want);
    for r in 0..m {
        assert!((y[r] - want[r]).abs() < 1e-12, "row {r}");
    }
}

/// Calibration harness behind `MATVEC_PAR_MIN_ELEMS` and
/// `PANEL_PAR_MIN_FLOPS`: run once with the pool and once under
/// `LSI_NUM_THREADS=1`, compare the printed per-size timings, and set
/// the thresholds where the pooled run starts winning:
/// `cargo test -p lsi-linalg --release --test par_kernels -- --ignored --nocapture`
#[test]
#[ignore = "prints timings; run with --ignored --nocapture"]
fn measure_gemv_and_panel_rates() {
    use std::time::Instant;
    fn best(reps: usize, mut f: impl FnMut()) -> f64 {
        let mut b = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            b = b.min(t.elapsed().as_secs_f64());
        }
        b
    }
    for n in [64usize, 128] {
        for m in [1024usize, 4096, 16384, 65536] {
            let a = random_matrix(m, n, 1);
            let x = random_vec(n, 2);
            let secs = best(30, || {
                std::hint::black_box(matvec(&a, &x).unwrap());
            });
            println!("gemv {m:>6}x{n:<4} ({:>8} elems): {:>8.1} us", m * n, secs * 1e6);
        }
    }
    for ncols in [32usize, 64, 128, 256] {
        let m = 3500;
        let q = random_matrix(m, ncols, 3);
        let w = random_vec(m, 4);
        let secs = best(30, || {
            std::hint::black_box(panel_qt_w(&q, ncols, &w));
        });
        println!(
            "panel_qt_w {m}x{ncols:<4} ({:>8} flops): {:>8.1} us",
            2 * m * ncols,
            secs * 1e6
        );
        let y = random_vec(ncols, 5);
        let secs = best(30, || {
            let mut wc = w.clone();
            panel_w_minus_qy(&q, ncols, &y, &mut wc);
            std::hint::black_box(wc);
        });
        println!(
            "panel_w_minus_qy {m}x{ncols:<4} ({:>8} flops): {:>8.1} us",
            2 * m * ncols,
            secs * 1e6
        );
    }
}

#[test]
fn parallel_matvec_t_matches_column_dots_exactly() {
    // matvec_t's parallel path runs the very same vecops::dot per
    // column as the serial path — exact agreement required.
    let m = MATVEC_PAR_MIN_ELEMS / 16;
    for n in [3usize, 24] {
        let a = random_matrix(m, n, 900 + n as u64);
        let x = random_vec(m, 950 + n as u64);
        let y = matvec_t(&a, &x).unwrap();
        for j in 0..n {
            assert_eq!(y[j], vecops::dot(a.col(j), &x), "col {j}");
        }
        for _ in 0..5 {
            assert_eq!(y, matvec_t(&a, &x).unwrap());
        }
    }
}
