//! Integration tests for the reduced-precision scoring kernels
//! (`lowp`): agreement with f64 references at realistic scoring shapes,
//! thread-count independence of the span split, and the calibration
//! harness behind `MATVEC_F32_PAR_MIN_ELEMS`.
//!
//! Thread-mode coverage: the pool size is fixed per process from
//! `LSI_NUM_THREADS`, so `scripts/verify.sh` runs this whole suite
//! twice — once pooled, once serial — and both passes must produce
//! identical bits.

use lsi_linalg::lowp::{gemm_f32, matvec_f32, matvec_i8, MATVEC_F32_PAR_MIN_ELEMS};
use lsi_linalg::{ops, DenseMatrix};

/// Deterministic xorshift values in [-1, 1).
fn xorshift_vec(n: usize, mut state: u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

#[test]
fn f32_sweep_tracks_f64_gemv_within_error_bound() {
    // The scoring shape: n docs x k factors, dense q̂.
    for (n, k) in [(500usize, 32usize), (2000, 64), (777, 48)] {
        let vdata = xorshift_vec(n * k, 0x1234_5678 + n as u64);
        let v = DenseMatrix::from_col_major(n, k, vdata.clone()).unwrap();
        let q = xorshift_vec(k, 99 + k as u64);
        let exact = ops::matvec(&v, &q).unwrap();
        let v32: Vec<f32> = vdata.iter().map(|&x| x as f32).collect();
        let q32: Vec<f32> = q.iter().map(|&x| x as f32).collect();
        let approx = matvec_f32(&v32, n, k, &q32).unwrap();
        // Row dot of k unit-scale entries: |error| well under k·2^-20.
        let tol = k as f64 * 2f64.powi(-20) * (k as f64).sqrt();
        for i in 0..n {
            assert!(
                (approx[i] as f64 - exact[i]).abs() < tol,
                "({n},{k}) row {i}: {} vs {}",
                approx[i],
                exact[i]
            );
        }
    }
}

#[test]
fn pooled_and_span_results_are_bit_identical_above_threshold() {
    // Cross the parallel threshold; with a pool the rows split into
    // spans, and the result must equal a per-row serial replay exactly.
    let k = 64;
    let n = MATVEC_F32_PAR_MIN_ELEMS / k + 17;
    let vdata = xorshift_vec(n * k, 0xBEEF);
    let v32: Vec<f32> = vdata.iter().map(|&x| x as f32).collect();
    let q32: Vec<f32> = xorshift_vec(k, 7).iter().map(|&x| x as f32).collect();
    let y = matvec_f32(&v32, n, k, &q32).unwrap();
    let y2 = matvec_f32(&v32, n, k, &q32).unwrap();
    assert_eq!(y, y2);
    // Per-row reference with the same 4-wide block order.
    for i in [0usize, 1, n / 2, n - 1] {
        let mut acc = 0.0f32;
        let mut j = 0;
        while j + 4 <= k {
            acc += q32[j] * v32[j * n + i]
                + q32[j + 1] * v32[(j + 1) * n + i]
                + q32[j + 2] * v32[(j + 2) * n + i]
                + q32[j + 3] * v32[(j + 3) * n + i];
            j += 4;
        }
        for jj in j..k {
            acc += q32[jj] * v32[jj * n + i];
        }
        assert_eq!(y[i], acc, "row {i}");
    }
}

#[test]
fn i8_sweep_recovers_scaled_rows() {
    // Quantize a known matrix with per-row max-abs scales and verify
    // the GEMV-plus-rescale reconstructs the f64 scores to i8 accuracy.
    let (n, k) = (300usize, 24usize);
    let vdata = xorshift_vec(n * k, 42);
    let v = DenseMatrix::from_col_major(n, k, vdata.clone()).unwrap();
    let mut data8 = vec![0i8; n * k];
    let mut scales = vec![0.0f64; n];
    for i in 0..n {
        let row = v.row(i);
        let sc = row.iter().fold(0.0f64, |a, x| a.max(x.abs()));
        scales[i] = sc;
        if sc > 0.0 {
            for j in 0..k {
                data8[j * n + i] = (row[j] / sc * 127.0).round() as i8;
            }
        }
    }
    let q = xorshift_vec(k, 1234);
    let q32: Vec<f32> = q.iter().map(|&x| x as f32).collect();
    let y8 = matvec_i8(&data8, n, k, &q32).unwrap();
    let exact = ops::matvec(&v, &q).unwrap();
    for i in 0..n {
        let recovered = y8[i] as f64 * scales[i] / 127.0;
        // One quantization step per addend: k · (scale/254) · |q|∞.
        let tol = k as f64 * scales[i] / 254.0 + 1e-6;
        assert!(
            (recovered - exact[i]).abs() <= tol,
            "row {i}: {recovered} vs {}",
            exact[i]
        );
    }
}

#[test]
fn gemm_matches_repeated_gemv_within_tolerance() {
    let (n, k, nf) = (400usize, 40usize, 3usize);
    let v32: Vec<f32> = xorshift_vec(n * k, 5).iter().map(|&x| x as f32).collect();
    let b: Vec<f32> = xorshift_vec(k * nf, 6).iter().map(|&x| x as f32).collect();
    let c = gemm_f32(&v32, n, k, &b, nf).unwrap();
    for f in 0..nf {
        let y = matvec_f32(&v32, n, k, &b[f * k..(f + 1) * k]).unwrap();
        for i in 0..n {
            assert!((c[f * n + i] - y[i]).abs() <= 1e-4 * y[i].abs().max(1.0));
        }
    }
}

/// Calibration harness for `MATVEC_F32_PAR_MIN_ELEMS`: prints the f32
/// sweep time across sizes straddling the threshold, pooled vs serial.
/// Run once with the pool and once under `LSI_NUM_THREADS=1`:
/// `cargo test -p lsi-linalg --release --test lowp_kernels -- --ignored --nocapture`
#[test]
#[ignore = "prints timings; run with --ignored --nocapture"]
fn measure_f32_gemv_crossover() {
    use std::time::Instant;
    fn best(reps: usize, mut f: impl FnMut()) -> f64 {
        let mut b = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            b = b.min(t.elapsed().as_secs_f64());
        }
        b
    }
    let k = 64usize;
    for shift in [17usize, 18, 19, 20, 21] {
        let n = (1usize << shift) / k;
        let v32: Vec<f32> = xorshift_vec(n * k, shift as u64)
            .iter()
            .map(|&x| x as f32)
            .collect();
        let q32: Vec<f32> = xorshift_vec(k, 3).iter().map(|&x| x as f32).collect();
        let secs = best(30, || {
            std::hint::black_box(matvec_f32(&v32, n, k, &q32).unwrap());
        });
        println!(
            "matvec_f32 {n:>6}x{k:<4} (1<<{shift} elems): {:>8.1} us",
            secs * 1e6
        );
    }
}
