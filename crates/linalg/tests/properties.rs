//! Property-based tests for the dense kernels: the two SVDs agree,
//! factorizations reconstruct their inputs, and eigen/SVD invariants hold
//! on arbitrary matrices.

use lsi_linalg::gemm::reference;
use lsi_linalg::ops::{matmul, matmul_nt, matmul_tn, reconstruct};
use lsi_linalg::qr::{householder_qr, orthogonalize_against};
use lsi_linalg::{golub_kahan_svd, jacobi_svd, sym_eigen, vecops, DenseMatrix};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-10, 10] and modest dimensions.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        prop::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| DenseMatrix::from_col_major(m, n, data).unwrap())
    })
}

fn identity_distance(q: &DenseMatrix) -> f64 {
    let g = matmul_tn(q, q).unwrap();
    g.fro_distance(&DenseMatrix::identity(q.ncols())).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn jacobi_svd_reconstructs(a in matrix_strategy(8)) {
        let svd = jacobi_svd(&a).unwrap();
        let rec = reconstruct(&svd.u, &svd.s, &svd.v).unwrap();
        let scale = a.fro_norm().max(1.0);
        prop_assert!(rec.fro_distance(&a).unwrap() <= 1e-9 * scale);
        prop_assert!(identity_distance(&svd.u) < 1e-9);
        prop_assert!(identity_distance(&svd.v) < 1e-9);
    }

    #[test]
    fn the_two_svds_agree_on_singular_values(a in matrix_strategy(7)) {
        let j = jacobi_svd(&a).unwrap();
        let g = golub_kahan_svd(&a).unwrap();
        prop_assert_eq!(j.s.len(), g.s.len());
        let scale = a.fro_norm().max(1.0);
        for (x, y) in j.s.iter().zip(g.s.iter()) {
            prop_assert!((x - y).abs() < 1e-8 * scale, "jacobi {} vs gk {}", x, y);
        }
    }

    #[test]
    fn singular_values_sorted_and_nonnegative(a in matrix_strategy(8)) {
        let svd = jacobi_svd(&a).unwrap();
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn frobenius_norm_equals_singular_value_norm(a in matrix_strategy(8)) {
        // Theorem 2.1(3) of the paper: ||A||_F^2 = sum sigma_i^2.
        let svd = jacobi_svd(&a).unwrap();
        let s_norm = svd.s.iter().map(|x| x * x).sum::<f64>().sqrt();
        let scale = a.fro_norm().max(1.0);
        prop_assert!((s_norm - a.fro_norm()).abs() < 1e-9 * scale);
    }

    #[test]
    fn eckart_young_truncation_error(a in matrix_strategy(7)) {
        // Theorem 2.2: ||A - A_k||_F^2 = sum_{i>k} sigma_i^2.
        let svd = jacobi_svd(&a).unwrap();
        let k = svd.s.len() / 2;
        let t = svd.truncate(k);
        let ak = t.reconstruct().unwrap();
        let err = ak.fro_distance(&a).unwrap();
        let expect = svd.truncation_error_fro(k);
        let scale = a.fro_norm().max(1.0);
        prop_assert!((err - expect).abs() < 1e-8 * scale, "{} vs {}", err, expect);
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(a in matrix_strategy(8)) {
        let qr = householder_qr(&a).unwrap();
        let prod = matmul(&qr.q, &qr.r).unwrap();
        let scale = a.fro_norm().max(1.0);
        prop_assert!(prod.fro_distance(&a).unwrap() < 1e-10 * scale);
        prop_assert!(identity_distance(&qr.q) < 1e-10);
    }

    #[test]
    fn sym_eigen_matches_svd_on_gram_matrix(a in matrix_strategy(6)) {
        let gram = matmul_tn(&a, &a).unwrap();
        let (vals, _) = sym_eigen(&gram).unwrap();
        let svd = jacobi_svd(&a).unwrap();
        let scale = gram.fro_norm().max(1.0);
        for (lam, sig) in vals.iter().zip(svd.s.iter()) {
            prop_assert!((lam - sig * sig).abs() < 1e-8 * scale, "{} vs {}", lam, sig * sig);
        }
    }

    #[test]
    fn spectral_norm_is_largest_singular_value(a in matrix_strategy(6)) {
        // Theorem 2.1(3): ||A||_2 = sigma_1. Check via the Gram matrix's
        // largest eigenvalue.
        let svd = jacobi_svd(&a).unwrap();
        let gram = matmul_tn(&a, &a).unwrap();
        let (vals, _) = sym_eigen(&gram).unwrap();
        let scale = a.fro_norm().max(1.0);
        prop_assert!((vals[0].max(0.0).sqrt() - svd.s[0]).abs() < 1e-8 * scale);
    }

    #[test]
    fn matmul_associativity(
        a in matrix_strategy(5),
        bdata in prop::collection::vec(-5.0f64..5.0, 25),
        cdata in prop::collection::vec(-5.0f64..5.0, 25)
    ) {
        let n = a.ncols();
        let b = DenseMatrix::from_col_major(n, 5, bdata[..n * 5].to_vec()).unwrap();
        let c = DenseMatrix::from_col_major(5, 5, cdata.clone()).unwrap();
        let ab_c = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let a_bc = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        let scale = ab_c.fro_norm().max(1.0);
        prop_assert!(ab_c.fro_distance(&a_bc).unwrap() < 1e-9 * scale);
    }
}

/// Strategy: an (m×k, k×n) pair with arbitrary shapes, including inner
/// dimensions of 0 and 1 and sizes that are not multiples of the GEMM
/// register-tile (8×4) or cache-block sizes.
fn gemm_pair_strategy() -> impl Strategy<Value = (DenseMatrix, DenseMatrix)> {
    (1..=33usize, 0..=19usize, 1..=21usize).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-10.0f64..10.0, m * k),
            prop::collection::vec(-10.0f64..10.0, k * n),
        )
            .prop_map(move |(adata, bdata)| {
                (
                    DenseMatrix::from_col_major(m, k, adata).unwrap(),
                    DenseMatrix::from_col_major(k, n, bdata).unwrap(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_gemm_matches_naive_oracle(ab in gemm_pair_strategy()) {
        let (a, b) = ab;
        let blocked = matmul(&a, &b).unwrap();
        let naive = reference::matmul(&a, &b);
        let scale = a.fro_norm().max(1.0) * b.fro_norm().max(1.0);
        prop_assert!(blocked.fro_distance(&naive).unwrap() <= 1e-12 * scale);
    }

    #[test]
    fn blocked_gemm_tn_matches_naive_oracle(ab in gemm_pair_strategy()) {
        let (a, b) = ab;
        // A^T B with A stored k×m: reuse the pair as (Aᵀ stored, B).
        let at = a.transpose();
        let blocked = matmul_tn(&at, &b).unwrap();
        let naive = reference::matmul_tn(&at, &b);
        let scale = a.fro_norm().max(1.0) * b.fro_norm().max(1.0);
        prop_assert!(blocked.fro_distance(&naive).unwrap() <= 1e-12 * scale);
    }

    #[test]
    fn blocked_gemm_nt_matches_naive_oracle(ab in gemm_pair_strategy()) {
        let (a, b) = ab;
        let bt = b.transpose();
        let blocked = matmul_nt(&a, &bt).unwrap();
        let naive = reference::matmul_nt(&a, &bt);
        let scale = a.fro_norm().max(1.0) * b.fro_norm().max(1.0);
        prop_assert!(blocked.fro_distance(&naive).unwrap() <= 1e-12 * scale);
    }
}

/// Grow a basis for 200 steps with the panel CGS2 reorthogonalization
/// and check it stays numerically orthonormal throughout — the
/// "twice is enough" property the Lanczos driver depends on.
#[test]
fn cgs2_keeps_200_step_basis_orthonormal() {
    let dim = 240;
    let steps = 200;
    // Deterministic, seedless pseudo-random input vectors (xorshift).
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut basis = DenseMatrix::zeros(dim, steps);
    for j in 0..steps {
        let mut w: Vec<f64> = (0..dim).map(|_| next()).collect();
        let norm = orthogonalize_against(&basis, j, &mut w);
        assert!(norm > 0.0, "random vector degenerate at step {j}");
        vecops::scal(1.0 / norm, &mut w);
        basis.col_mut(j).copy_from_slice(&w);
    }
    let gram = matmul_tn(&basis, &basis).unwrap();
    let mut max_dev = 0.0f64;
    for i in 0..steps {
        for j in 0..steps {
            let want = if i == j { 1.0 } else { 0.0 };
            max_dev = max_dev.max((gram.get(i, j) - want).abs());
        }
    }
    assert!(
        max_dev <= 1e-10,
        "max |QᵀQ − I| = {max_dev:.3e} after {steps} CGS2 steps"
    );
}
