//! Regression test: failpoints armed *only* through `LSI_FAILPOINTS`
//! must fire. This lives in its own integration-test binary so the
//! registry is cold — the bug this guards against was a fast path that
//! bailed on "not armed" before the env spec had ever been parsed,
//! which unit tests (arming programmatically) could never catch.

use lsi_fault::{eval, should_fail, Fired};

#[test]
fn env_spec_arms_failpoints_without_any_programmatic_call() {
    // Set before the first eval() in this process; the registry
    // initializes lazily on that first call.
    std::env::set_var(
        "LSI_FAILPOINTS",
        "test.env.a=return-err:2,test.env.b=inject-nan",
    );

    // The very first evaluation must already see the env arming.
    assert_eq!(eval("test.env.a"), Some(Fired::ReturnErr));
    assert_eq!(eval("test.env.a"), Some(Fired::ReturnErr));
    // Count exhausted: self-disarmed.
    assert_eq!(eval("test.env.a"), None);

    // Unlimited entry from the same spec keeps firing.
    assert_eq!(eval("test.env.b"), Some(Fired::InjectNan));
    assert!(should_fail("test.env.b"));

    // Unrelated names stay silent.
    assert_eq!(eval("test.env.other"), None);
}
