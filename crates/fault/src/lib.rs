//! `lsi-fault` — deterministic failpoint-driven fault injection.
//!
//! Production hardening is only as good as the faults it has been
//! tested against. This crate gives every layer boundary of the LSI
//! pipeline a *named failpoint*: a branch that is a single relaxed
//! atomic load when disarmed, and that can be armed — via the
//! `LSI_FAILPOINTS` environment variable or the programmatic API — to
//! force one of four actions at that exact point:
//!
//! * `return-err` — the consumer must surface a typed error,
//! * `inject-nan` — the consumer's numerical guards must catch the
//!   poisoned value (or its fallback ladder must absorb it),
//! * `panic` — unwind; the enclosing recovery boundary (pool job
//!   propagation, CLI panic shield) must contain it,
//! * `delay-ms(N)` — sleep, for shaking out timeout/ordering bugs.
//!
//! Spec grammar (comma-separated):
//!
//! ```text
//! LSI_FAILPOINTS="<name>=<action>[:<count>][,<name>=<action>[:<count>]]*"
//! LSI_FAILPOINTS="svd.lanczos.iter=inject-nan:1,core.persist.save=return-err"
//! ```
//!
//! `count` bounds how many times the failpoint fires before it disarms
//! itself (default: unlimited). Canonical failpoint names live in
//! [`points`]; DESIGN.md §3d documents which actions each site honors.
//!
//! Like `lsi-obs`, this crate is std-only. Every firing is counted
//! (`fault.fired.count`, `fault.fired.<name>.count`) and logged as a
//! warn-level event through `lsi-obs`, so injected faults are always
//! visible in `--metrics` output and on stderr.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Canonical failpoint names, one per registered layer boundary.
///
/// Call sites reference these constants (not string literals) so the
/// smoke harness in `scripts/verify.sh` and the docs cannot drift from
/// the code.
pub mod points {
    /// Sparse I/O: entry of `lsi_sparse::io::read_matrix_market`.
    /// Honors `return-err` (→ `Error::Parse`) and `delay-ms`.
    pub const SPARSE_IO_READ: &str = "sparse.io.read";
    /// Per-iteration in the Lanczos driver, fired after the Gram
    /// product. Honors `return-err` (→ `Error::Fault`), `inject-nan`
    /// (poisons the recurrence vector; the watchdog or the fallback
    /// ladder must absorb it), `panic`, and `delay-ms`.
    pub const SVD_LANCZOS_ITER: &str = "svd.lanczos.iter";
    /// Inside a pool worker task, fired once per claimed chunk. Honors
    /// `panic` (the pool must capture the payload, fail the job, and
    /// stay serviceable) and `delay-ms` (simulates a straggler).
    pub const POOL_TASK: &str = "pool.task";
    /// Model serialization (`LsiModel::to_json` / CLI save). Honors
    /// `return-err` (→ `Error::Persist`) and `delay-ms`.
    pub const CORE_PERSIST_SAVE: &str = "core.persist.save";
    /// Model deserialization (`LsiModel::from_json`). Honors
    /// `return-err` (→ `Error::Persist`) and `delay-ms`.
    pub const CORE_PERSIST_LOAD: &str = "core.persist.load";
    /// Query scoring, fired after cosines are computed. Honors
    /// `inject-nan` (the non-finite exit guard must reject the scores
    /// with a typed error), `return-err`, and `delay-ms`.
    pub const CORE_QUERY_SCORE: &str = "core.query.score";
    /// Per-accepted-connection in the `lsi serve` accept loop, fired
    /// before the connection is handed to a worker. Honors
    /// `return-err` (the connection is dropped; the daemon keeps
    /// accepting) and `delay-ms` (a slow accept path).
    pub const SERVE_ACCEPT: &str = "serve.accept";
    /// Entry of the serve HTTP request parser. Honors `return-err`
    /// (→ a typed 400 response; the worker keeps serving) and
    /// `delay-ms`.
    pub const SERVE_PARSE: &str = "serve.parse";
    /// In the serve batcher, fired once per scoring batch before the
    /// sweep. Honors `return-err` (every request in the batch answers
    /// a typed 500), `panic` (contained by the batcher's unwind
    /// boundary — same 500s, the batcher stays alive), and `delay-ms`
    /// (a slow batch, exercising per-request deadlines).
    pub const SERVE_BATCH: &str = "serve.batch";

    /// Every registered failpoint, for enumeration by smoke harnesses.
    pub const ALL: &[&str] = &[
        SPARSE_IO_READ,
        SVD_LANCZOS_ITER,
        POOL_TASK,
        CORE_PERSIST_SAVE,
        CORE_PERSIST_LOAD,
        CORE_QUERY_SCORE,
        SERVE_ACCEPT,
        SERVE_PARSE,
        SERVE_BATCH,
    ];
}

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The caller must return a typed error.
    ReturnErr,
    /// The caller receives a signal to poison its data with NaN.
    InjectNan,
    /// Unwind with a panic (`lsi-fault: injected panic at ...`).
    Panic,
    /// Sleep for the given number of milliseconds, then continue.
    DelayMs(u64),
}

/// Outcome of [`eval`] that the *call site* must honor ([`Action::Panic`]
/// and [`Action::DelayMs`] are performed internally and yield `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fired {
    /// Return a typed error from the enclosing function.
    ReturnErr,
    /// Corrupt the site's data with a NaN (see [`poison_first`]).
    InjectNan,
}

struct Entry {
    action: Action,
    /// Firings left before self-disarm; `None` = unlimited.
    remaining: Option<u64>,
}

/// Fast-path switch. Starts [`UNINIT`] so the very first [`eval`] in
/// the process (and only it) pays for the `LSI_FAILPOINTS` parse;
/// after that every disarmed call is a single relaxed load plus an
/// untaken branch. (A plain armed/disarmed bool cannot work here: the
/// env spec is parsed inside the registry init, and a fast path that
/// bails on "not armed" before initializing would never parse it.)
static STATE: AtomicU8 = AtomicU8::new(UNINIT);
/// [`STATE`]: registry not yet initialized, env spec not yet parsed.
const UNINIT: u8 = 0;
/// [`STATE`]: registry initialized, no failpoint armed.
const DISARMED: u8 = 1;
/// [`STATE`]: at least one failpoint armed.
const ARMED: u8 = 2;

static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();

fn lock_registry() -> MutexGuard<'static, HashMap<String, Entry>> {
    let m = REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("LSI_FAILPOINTS") {
            match parse_spec(&spec) {
                Ok(entries) => {
                    for (name, action, remaining) in entries {
                        map.insert(name, Entry { action, remaining });
                    }
                }
                Err(e) => {
                    // A malformed spec must not silently disable fault
                    // testing: fail loudly (this is a test/ops knob, not
                    // user input).
                    panic!("invalid LSI_FAILPOINTS: {e}");
                }
            }
        }
        // Relaxed: STATE is an advisory fast-path hint; the registry
        // mutex is the authority on which failpoints are armed.
        STATE.store(
            if map.is_empty() { DISARMED } else { ARMED },
            Ordering::Relaxed,
        );
        Mutex::new(map)
    });
    // A panic action fires while the lock is *not* held, but an unwind
    // inside a holder elsewhere must not wedge the registry for good.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Parse a failpoint spec string (the `LSI_FAILPOINTS` grammar).
pub fn parse_spec(spec: &str) -> Result<Vec<(String, Action, Option<u64>)>, String> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, rhs) = part
            .split_once('=')
            .ok_or_else(|| format!("`{part}` is not of the form name=action[:count]"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("empty failpoint name in `{part}`"));
        }
        let (action_str, count) = match rhs.rsplit_once(':') {
            Some((a, c)) => {
                let n: u64 = c
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad count `{c}` in `{part}`"))?;
                (a.trim(), Some(n))
            }
            None => (rhs.trim(), None),
        };
        let action = match action_str {
            "return-err" => Action::ReturnErr,
            "inject-nan" => Action::InjectNan,
            "panic" => Action::Panic,
            other => {
                if let Some(ms) = other
                    .strip_prefix("delay-ms(")
                    .and_then(|r| r.strip_suffix(')'))
                {
                    let ms: u64 = ms
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad delay `{other}` in `{part}`"))?;
                    Action::DelayMs(ms)
                } else {
                    return Err(format!(
                        "unknown action `{other}` in `{part}` (expected \
                         return-err | inject-nan | panic | delay-ms(N))"
                    ));
                }
            }
        };
        out.push((name.to_string(), action, count));
    }
    Ok(out)
}

/// Arm `name` with `action`, firing at most `count` times (`None` =
/// unlimited). Programmatic equivalent of one `LSI_FAILPOINTS` entry.
pub fn arm(name: &str, action: Action, count: Option<u64>) {
    let mut map = lock_registry();
    map.insert(
        name.to_string(),
        Entry {
            action,
            remaining: count,
        },
    );
    // Relaxed: advisory hint only — evaluators re-check under the
    // registry mutex before acting on an armed state.
    STATE.store(ARMED, Ordering::Relaxed);
}

/// Arm every entry of a spec string. Errors on bad grammar.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    for (name, action, count) in parse_spec(spec)? {
        arm(&name, action, count);
    }
    Ok(())
}

/// Disarm one failpoint (no-op if it was not armed).
pub fn disarm(name: &str) {
    let mut map = lock_registry();
    map.remove(name);
    if map.is_empty() {
        // Relaxed: advisory hint; the mutex above orders the removal.
        STATE.store(DISARMED, Ordering::Relaxed);
    }
}

/// Disarm every failpoint.
pub fn clear() {
    let mut map = lock_registry();
    map.clear();
    // Relaxed: advisory hint; the mutex above orders the clear.
    STATE.store(DISARMED, Ordering::Relaxed);
}

/// Evaluate the failpoint `name`. Disarmed (the overwhelmingly common
/// case): one relaxed atomic load, returns `None`. Armed: performs
/// `panic` / `delay-ms` internally, or tells the caller to return an
/// error / inject a NaN. The first call in the process initializes the
/// registry from `LSI_FAILPOINTS`.
#[inline]
pub fn eval(name: &str) -> Option<Fired> {
    match STATE.load(Ordering::Relaxed) {
        DISARMED => None,
        UNINIT => init_then_eval(name),
        _ => eval_armed(name),
    }
}

/// One-time cold path: parse `LSI_FAILPOINTS` (via the registry init),
/// then re-dispatch on the now-settled state.
#[cold]
fn init_then_eval(name: &str) -> Option<Fired> {
    drop(lock_registry());
    // Relaxed: a stale read only costs one extra trip through the
    // mutex-guarded slow path; the map is the authority.
    if STATE.load(Ordering::Relaxed) == ARMED {
        eval_armed(name)
    } else {
        None
    }
}

#[cold]
fn eval_armed(name: &str) -> Option<Fired> {
    let action = {
        let mut map = lock_registry();
        let entry = map.get_mut(name)?;
        let action = entry.action;
        if let Some(rem) = entry.remaining.as_mut() {
            if *rem == 0 {
                map.remove(name);
                if map.is_empty() {
                    // Relaxed: advisory hint; held mutex orders it.
                    STATE.store(DISARMED, Ordering::Relaxed);
                }
                return None;
            }
            *rem -= 1;
            let exhausted = *rem == 0;
            if exhausted {
                map.remove(name);
                if map.is_empty() {
                    // Relaxed: advisory hint; held mutex orders it.
                    STATE.store(DISARMED, Ordering::Relaxed);
                }
            }
        }
        action
        // Lock dropped here: side effects below run unlocked so a panic
        // cannot poison the registry and a delay cannot serialize
        // unrelated failpoints.
    };
    lsi_obs::count("fault.fired.count", 1);
    lsi_obs::count(&format!("fault.fired.{name}.count"), 1);
    lsi_obs::warn!("lsi-fault: failpoint `{name}` fired ({action:?})");
    match action {
        Action::ReturnErr => Some(Fired::ReturnErr),
        Action::InjectNan => Some(Fired::InjectNan),
        Action::Panic => panic!("lsi-fault: injected panic at failpoint `{name}`"),
        Action::DelayMs(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
    }
}

/// Convenience for error-only sites: did `name` fire `return-err`?
/// (`inject-nan` at such a site is also mapped to an error — the site
/// has no numerical payload to poison, and a forced fault must never
/// silently do nothing.)
#[inline]
pub fn should_fail(name: &str) -> bool {
    eval(name).is_some()
}

/// Convenience for numerical sites: when `name` fired `inject-nan`,
/// overwrite the first element of `data` with NaN and return `true`.
/// A `return-err` firing is reported as `false` alongside... — callers
/// that can surface errors should use [`eval`] directly.
#[inline]
pub fn poison_first(name: &str, data: &mut [f64]) -> bool {
    if eval(name) == Some(Fired::InjectNan) {
        if let Some(x) = data.first_mut() {
            *x = f64::NAN;
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests touching it use distinct
    // failpoint names so they can run concurrently.

    #[test]
    fn disarmed_failpoint_is_silent() {
        assert_eq!(eval("test.never.armed"), None);
        assert!(!should_fail("test.never.armed"));
    }

    #[test]
    fn parse_spec_grammar() {
        let spec = "a.b=return-err, c.d=inject-nan:3 ,e.f=delay-ms(250),g.h=panic:1";
        let parsed = parse_spec(spec).unwrap();
        assert_eq!(
            parsed,
            vec![
                ("a.b".to_string(), Action::ReturnErr, None),
                ("c.d".to_string(), Action::InjectNan, Some(3)),
                ("e.f".to_string(), Action::DelayMs(250), None),
                ("g.h".to_string(), Action::Panic, Some(1)),
            ]
        );
        assert!(parse_spec("nonsense").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=return-err:lots").is_err());
        assert!(parse_spec("=return-err").is_err());
        assert!(parse_spec("a=delay-ms(abc)").is_err());
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn counted_failpoint_self_disarms() {
        arm("test.counted", Action::ReturnErr, Some(2));
        assert_eq!(eval("test.counted"), Some(Fired::ReturnErr));
        assert_eq!(eval("test.counted"), Some(Fired::ReturnErr));
        assert_eq!(eval("test.counted"), None);
        assert_eq!(eval("test.counted"), None);
    }

    #[test]
    fn unlimited_failpoint_keeps_firing_until_disarmed() {
        arm("test.unlimited", Action::InjectNan, None);
        for _ in 0..10 {
            assert_eq!(eval("test.unlimited"), Some(Fired::InjectNan));
        }
        disarm("test.unlimited");
        assert_eq!(eval("test.unlimited"), None);
    }

    #[test]
    fn poison_first_writes_nan_only_for_inject() {
        arm("test.poison", Action::InjectNan, Some(1));
        let mut data = vec![1.0, 2.0];
        assert!(poison_first("test.poison", &mut data));
        assert!(data[0].is_nan());
        assert_eq!(data[1], 2.0);
        let mut data = vec![1.0];
        assert!(!poison_first("test.poison", &mut data));
        assert_eq!(data, vec![1.0]);
    }

    #[test]
    fn panic_action_unwinds_with_failpoint_name() {
        arm("test.panics", Action::Panic, Some(1));
        let err = std::panic::catch_unwind(|| {
            eval("test.panics");
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("test.panics"), "payload: {msg}");
        // Registry survives the unwind and the point self-disarmed.
        assert_eq!(eval("test.panics"), None);
    }

    #[test]
    fn delay_action_sleeps_and_continues() {
        arm("test.delay", Action::DelayMs(30), Some(1));
        let t0 = std::time::Instant::now();
        assert_eq!(eval("test.delay"), None);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
    }

    #[test]
    fn arm_from_spec_arms_all_entries() {
        arm_from_spec("test.spec.a=return-err:1,test.spec.b=inject-nan:1").unwrap();
        assert_eq!(eval("test.spec.a"), Some(Fired::ReturnErr));
        assert_eq!(eval("test.spec.b"), Some(Fired::InjectNan));
        assert!(arm_from_spec("test.spec.c=bogus").is_err());
    }

    #[test]
    fn points_list_is_consistent() {
        assert!(points::ALL.contains(&points::SVD_LANCZOS_ITER));
        assert!(points::ALL.contains(&points::SERVE_BATCH));
        assert_eq!(points::ALL.len(), 9);
        for name in points::ALL {
            // Names follow the span taxonomy: dotted lowercase.
            assert!(name.chars().all(|c| c.is_ascii_lowercase()
                || c == '.'
                || c == '_'));
        }
    }
}
