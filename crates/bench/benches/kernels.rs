//! Kernel-level benchmarks: sparse matvec (serial vs rayon), weighting
//! application, and dense SVD of the small updating matrices — the
//! building blocks behind every cost row in Table 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsi_corpora::treclike::trec_like;
use lsi_linalg::{golub_kahan_svd, jacobi_svd, DenseMatrix};
use lsi_text::TermWeighting;

fn bench_sparse_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/spmv");
    for &scale in &[200usize, 50] {
        let csc = trec_like(scale, 3);
        let csr = csc.to_csr();
        let x = vec![1.0; csr.ncols()];
        let xt = vec![1.0; csr.nrows()];
        group.bench_with_input(BenchmarkId::new("csr_serial", scale), &csr, |b, m| {
            b.iter(|| m.matvec(&x).expect("matvec"))
        });
        group.bench_with_input(BenchmarkId::new("csr_parallel", scale), &csr, |b, m| {
            b.iter(|| m.par_matvec(&x).expect("matvec"))
        });
        group.bench_with_input(BenchmarkId::new("csc_t_serial", scale), &csc, |b, m| {
            b.iter(|| m.matvec_t(&xt).expect("matvec_t"))
        });
        group.bench_with_input(BenchmarkId::new("csc_t_parallel", scale), &csc, |b, m| {
            b.iter(|| m.par_matvec_t(&xt).expect("matvec_t"))
        });
    }
    group.finish();
}

fn bench_weighting(c: &mut Criterion) {
    let counts = trec_like(100, 5);
    let mut group = c.benchmark_group("kernels/weighting");
    for (name, scheme) in [
        ("raw", TermWeighting::none()),
        ("tf_idf", TermWeighting::tf_idf()),
        ("log_entropy", TermWeighting::log_entropy()),
    ] {
        group.bench_function(name, |b| b.iter(|| scheme.apply(&counts)));
    }
    group.finish();
}

fn bench_dense_svd(c: &mut Criterion) {
    // The small dense problems of SVD-updating: F is k x (k+p).
    let mut group = c.benchmark_group("kernels/dense_svd");
    group.sample_size(20);
    for &k in &[16usize, 64] {
        let p = k / 2;
        let mut f = DenseMatrix::zeros(k, k + p);
        for i in 0..k {
            f.set(i, i, (k - i) as f64);
            for j in 0..p {
                f.set(i, k + j, ((i * 7 + j * 3) % 11) as f64 / 11.0);
            }
        }
        group.bench_with_input(BenchmarkId::new("jacobi", k), &f, |b, f| {
            b.iter(|| jacobi_svd(f).expect("svd"))
        });
        group.bench_with_input(BenchmarkId::new("golub_kahan", k), &f, |b, f| {
            b.iter(|| golub_kahan_svd(f).expect("svd"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_matvec, bench_weighting, bench_dense_svd);
criterion_main!(benches);
