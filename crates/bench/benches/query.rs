//! §2.2 / §5.6 query machinery: projection + cosine ranking cost, and
//! the "efficiently comparing queries to documents" concern the paper
//! lists as an open issue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_text::{ParsingRules, TermWeighting};

fn model_with_docs(n_docs_per_topic: usize, k: usize) -> (LsiModel, String) {
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 10,
        docs_per_topic: n_docs_per_topic,
        doc_len: 30,
        queries_per_topic: 1,
        seed: 77,
        ..Default::default()
    });
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 7,
    };
    let (model, _) = LsiModel::build(&gen.corpus, &options).expect("model builds");
    (model, gen.queries[0].text.clone())
}

fn bench_query_by_collection_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/collection_size");
    for &per_topic in &[20usize, 80, 200] {
        let (model, query) = model_with_docs(per_topic, 32);
        group.bench_with_input(
            BenchmarkId::from_parameter(per_topic * 10),
            &model,
            |b, m| b.iter(|| m.query(&query).expect("query runs")),
        );
    }
    group.finish();
}

fn bench_query_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/k");
    for &k in &[8usize, 32, 64] {
        let (model, query) = model_with_docs(60, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &model, |b, m| {
            b.iter(|| m.query(&query).expect("query runs"))
        });
    }
    group.finish();
}

fn bench_projection_only(c: &mut Criterion) {
    let (model, query) = model_with_docs(60, 32);
    c.bench_function("query/project_text", |b| {
        b.iter(|| model.project_text(&query).expect("projects"))
    });
    let qhat = model.project_text(&query).expect("projects");
    c.bench_function("query/rank_projected", |b| {
        b.iter(|| model.rank_projected(&qhat).expect("ranks"))
    });
}

criterion_group!(
    benches,
    bench_query_by_collection_size,
    bench_query_by_k,
    bench_projection_only
);
criterion_main!(benches);
