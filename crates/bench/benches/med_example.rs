//! End-to-end regeneration cost of the paper's §3 example artifacts
//! (Tables 3–4, Figures 4–9): parsing, SVD, querying, and the three
//! updating methods on the 18×14 matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsi_bench::experiments::{med, updating};
use lsi_corpora::med::UPDATE_TOPICS;
use lsi_text::Corpus;

fn bench_example_build(c: &mut Criterion) {
    c.bench_function("med/build_model_k2", |b| b.iter(|| med::med_model(2)));
    c.bench_function("med/table3", |b| b.iter(med::table3));
    c.bench_function("med/figure45", |b| b.iter(med::figure45));
    c.bench_function("med/figure6", |b| b.iter(med::figure6));
}

fn bench_table4_columns(c: &mut Criterion) {
    let mut group = c.benchmark_group("med/table4_column");
    for &k in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| med::table4_column(k))
        });
    }
    group.finish();
}

fn bench_update_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("med/figures789");
    let update_corpus = Corpus::from_pairs(UPDATE_TOPICS);
    group.bench_function("fold_in", |b| {
        b.iter_batched(
            || med::med_model(2).1,
            |mut m| m.fold_in_documents(&update_corpus).expect("fold"),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("svd_update", |b| {
        b.iter_batched(
            || med::med_model(2),
            |(example, mut m)| {
                let d = example.update_documents_matrix();
                m.svd_update_documents(&d, &["M15".into(), "M16".into()])
                    .expect("update")
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("all_three_models", |b| b.iter(updating::updated_models));
    group.finish();
}

criterion_group!(benches, bench_example_build, bench_table4_columns, bench_update_variants);
criterion_main!(benches);
