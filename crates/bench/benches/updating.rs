//! Table 7 measured: folding-in vs SVD-updating vs recomputing as the
//! batch of new documents grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};

fn base_model(k: usize) -> (LsiModel, Corpus) {
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 8,
        docs_per_topic: 25,
        doc_len: 30,
        queries_per_topic: 1,
        seed: 2,
        ..Default::default()
    });
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 3,
    };
    let (model, _) = LsiModel::build(&gen.corpus, &options).expect("base model");
    let extra = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 8,
        docs_per_topic: 20,
        doc_len: 30,
        queries_per_topic: 1,
        seed: 5,
        ..Default::default()
    });
    let new_docs = Corpus {
        docs: extra
            .corpus
            .docs
            .iter()
            .map(|d| Document::new(format!("new-{}", d.id), d.text.clone()))
            .collect(),
    };
    (model, new_docs)
}

fn bench_updating_methods(c: &mut Criterion) {
    let (base, pool) = base_model(16);
    let mut group = c.benchmark_group("table7/update_docs");
    group.sample_size(10);
    for &p in &[1usize, 5, 20, 50] {
        let batch = Corpus {
            docs: pool.docs[..p].to_vec(),
        };
        let d_counts = base.vocabulary().count_matrix(&batch);
        let ids: Vec<String> = batch.docs.iter().map(|d| d.id.clone()).collect();

        group.bench_with_input(BenchmarkId::new("fold_in", p), &p, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut m| m.fold_in_documents(&batch).expect("fold"),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("svd_update", p), &p, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut m| m.svd_update_documents(&d_counts, &ids).expect("update"),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("recompute", p), &p, |b, _| {
            b.iter_batched(
                || {
                    let mut m = base.clone();
                    m.svd_update_documents(&d_counts, &ids).expect("update");
                    m
                },
                |mut m| m.recompute(16).expect("recompute"),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_weight_correction(c: &mut Criterion) {
    let (base, _) = base_model(16);
    let mut group = c.benchmark_group("table7/weight_correction");
    group.sample_size(10);
    for &j in &[1usize, 4, 16] {
        let changes: Vec<(usize, Vec<f64>)> = (0..j)
            .map(|t| {
                let delta: Vec<f64> = (0..base.n_docs())
                    .map(|d| if d % 7 == 0 { 0.25 } else { 0.0 })
                    .collect();
                (t, delta)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(j), &j, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut m| m.svd_update_weights(&changes).expect("weights"),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updating_methods, bench_weight_correction);
criterion_main!(benches);
