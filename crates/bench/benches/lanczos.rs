//! §5.3 / Table 7 substrate: cost of the truncated sparse SVD.
//!
//! Measures the Lanczos driver on TREC-shaped matrices across scale
//! factors and factor counts, plus the randomized-SVD ablation the
//! DESIGN document calls for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsi_corpora::treclike::trec_like;
use lsi_sparse::ops::DualFormat;
use lsi_svd::{lanczos_svd, randomized_svd, LanczosOptions, RandomizedOptions, Reorth};

fn bench_lanczos_scales(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanczos/trec_scale");
    group.sample_size(10);
    for &scale in &[400usize, 200, 100] {
        let matrix = trec_like(scale, 7);
        let dual = DualFormat::from_csc(matrix);
        group.bench_with_input(BenchmarkId::from_parameter(scale), &dual, |b, dual| {
            b.iter(|| {
                lanczos_svd(dual, 20, &LanczosOptions::default()).expect("lanczos runs")
            })
        });
    }
    group.finish();
}

fn bench_lanczos_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanczos/k");
    group.sample_size(10);
    let matrix = trec_like(100, 7);
    let dual = DualFormat::from_csc(matrix);
    for &k in &[10usize, 25, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| lanczos_svd(&dual, k, &LanczosOptions::default()).expect("lanczos runs"))
        });
    }
    group.finish();
}

fn bench_lanczos_vs_randomized(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_ablation");
    group.sample_size(10);
    let matrix = trec_like(150, 9);
    let dual = DualFormat::from_csc(matrix);
    let k = 25;
    group.bench_function("lanczos", |b| {
        b.iter(|| lanczos_svd(&dual, k, &LanczosOptions::default()).expect("runs"))
    });
    group.bench_function("randomized_q2", |b| {
        b.iter(|| randomized_svd(&dual, k, &RandomizedOptions::default()).expect("runs"))
    });
    group.bench_function("randomized_q0", |b| {
        b.iter(|| {
            randomized_svd(
                &dual,
                k,
                &RandomizedOptions {
                    power_iters: 0,
                    ..Default::default()
                },
            )
            .expect("runs")
        })
    });
    group.finish();
}

fn bench_reorthogonalization_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: full vs periodic vs bare-recurrence
    // reorthogonalization. Bare recurrence is cheapest but admits ghost
    // Ritz values (see lsi-svd's tests); this measures what full
    // reorthogonalization actually costs.
    let mut group = c.benchmark_group("lanczos/reorth");
    group.sample_size(10);
    let matrix = trec_like(100, 11);
    let dual = DualFormat::from_csc(matrix);
    for (name, reorth) in [
        ("full", Reorth::Full),
        ("periodic4", Reorth::Periodic(4)),
        ("three_term", Reorth::ThreeTermOnly),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                lanczos_svd(
                    &dual,
                    30,
                    &LanczosOptions {
                        reorth,
                        ..Default::default()
                    },
                )
                .expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lanczos_scales,
    bench_lanczos_k,
    bench_lanczos_vs_randomized,
    bench_reorthogonalization_ablation
);
criterion_main!(benches);
