//! Blocked GEMM and Gram–Schmidt panel kernels: the BLAS-2/3 hot paths
//! behind Lanczos reorthogonalization, Ritz assembly, SVD-updating
//! rotations, and batched query scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsi_linalg::gemm::reference;
use lsi_linalg::ops::{matmul, matmul_tn};
use lsi_linalg::{panel_qt_w, panel_w_minus_qy, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(m: usize, n: usize, rng: &mut StdRng) -> DenseMatrix {
    let data: Vec<f64> = (0..m * n).map(|_| rng.random_range(-1.0..1.0)).collect();
    DenseMatrix::from_col_major(m, n, data).expect("shape matches buffer")
}

fn bench_square_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut group = c.benchmark_group("gemm/square");
    group.sample_size(20);
    for &n in &[128usize, 256] {
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| matmul(&a, &b).expect("gemm"))
        });
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
                bch.iter(|| reference::matmul(&a, &b))
            });
        }
    }
    group.finish();
}

fn bench_transposed_gemm(c: &mut Criterion) {
    // A^T B with A stored k×m — the Ritz-vector / SVD-updating shape.
    let mut rng = StdRng::seed_from_u64(43);
    let mut group = c.benchmark_group("gemm/tn");
    group.sample_size(20);
    for &n in &[128usize, 256] {
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| matmul_tn(&a, &b).expect("gemm_tn"))
        });
    }
    group.finish();
}

fn bench_tall_gemm(c: &mut Criterion) {
    // V · Q̂: tall-skinny times small — the batched query-scoring shape.
    let mut rng = StdRng::seed_from_u64(44);
    let v = random_matrix(4096, 64, &mut rng);
    let q = random_matrix(64, 16, &mut rng);
    c.bench_function("gemm/tall_4096x64x16", |b| {
        b.iter(|| matmul(&v, &q).expect("gemm"))
    });
}

fn bench_panel_kernels(c: &mut Criterion) {
    // One CGS2 pass against a 3500×160 basis — the Lanczos
    // reorthogonalization shape at trec_like(20) scale.
    let mut rng = StdRng::seed_from_u64(45);
    let dim = 3500;
    let ncols = 160;
    let basis = random_matrix(dim, ncols, &mut rng);
    let w: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
    c.bench_function("gemm/panel_qt_w", |b| {
        b.iter(|| panel_qt_w(&basis, ncols, &w))
    });
    let y = panel_qt_w(&basis, ncols, &w);
    c.bench_function("gemm/panel_w_minus_qy", |b| {
        b.iter(|| {
            let mut wc = w.clone();
            panel_w_minus_qy(&basis, ncols, &y, &mut wc);
            wc
        })
    });
}

criterion_group!(
    benches,
    bench_square_gemm,
    bench_transposed_gemm,
    bench_tall_gemm,
    bench_panel_kernels
);
criterion_main!(benches);
