//! Experiment harness: one module per table/figure/claim of the paper.
//!
//! Every experiment returns a structured result plus a formatted report
//! so the `repro` binary, the Criterion benches, and the test suite all
//! share one implementation. The experiment index lives in DESIGN.md;
//! measured-vs-published numbers are recorded in EXPERIMENTS.md.

pub mod experiments;
pub mod svg;

/// Render a two-column table of (label, value) rows.
pub fn format_rows(title: &str, rows: &[(String, String)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (l, v) in rows {
        out.push_str(&format!("  {l:<width$}  {v}\n"));
    }
    out
}
