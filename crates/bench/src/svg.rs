//! Minimal dependency-free SVG scatter plots for the paper's figures.
//!
//! Figures 4 and 6–9 of the paper are two-dimensional scatter plots of
//! term and document coordinates. [`ScatterPlot`] renders the same
//! plots as standalone SVG files (`repro --plots` writes them to
//! `figures/`).

/// A point with a label and a style class.
#[derive(Debug, Clone)]
pub struct PlotPoint {
    /// X coordinate (data space).
    pub x: f64,
    /// Y coordinate (data space).
    pub y: f64,
    /// Label drawn next to the marker.
    pub label: String,
    /// Style: 0 = term (small, gray), 1 = document (blue), 2 =
    /// highlighted document (red), 3 = query (green, with vector from
    /// the origin).
    pub class: u8,
}

/// A 2-D scatter plot mimicking the paper's figure style.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    /// Plot title.
    pub title: String,
    /// The points.
    pub points: Vec<PlotPoint>,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl ScatterPlot {
    /// New plot with default canvas size.
    pub fn new(title: impl Into<String>) -> ScatterPlot {
        ScatterPlot {
            title: title.into(),
            points: Vec::new(),
            width: 760,
            height: 560,
        }
    }

    /// Add a term point.
    pub fn term(&mut self, x: f64, y: f64, label: impl Into<String>) {
        self.points.push(PlotPoint {
            x,
            y,
            label: label.into(),
            class: 0,
        });
    }

    /// Add a document point.
    pub fn doc(&mut self, x: f64, y: f64, label: impl Into<String>) {
        self.points.push(PlotPoint {
            x,
            y,
            label: label.into(),
            class: 1,
        });
    }

    /// Add a highlighted document point (e.g. the update topics).
    pub fn doc_highlight(&mut self, x: f64, y: f64, label: impl Into<String>) {
        self.points.push(PlotPoint {
            x,
            y,
            label: label.into(),
            class: 2,
        });
    }

    /// Add the query point (drawn with a vector from the origin, as in
    /// the paper's Figure 6).
    pub fn query(&mut self, x: f64, y: f64, label: impl Into<String>) {
        self.points.push(PlotPoint {
            x,
            y,
            label: label.into(),
            class: 3,
        });
    }

    /// Render to an SVG string.
    pub fn render(&self) -> String {
        let margin = 50.0;
        let w = self.width as f64;
        let h = self.height as f64;

        // Data bounds, always including the origin (the paper's plots
        // show the axes through 0).
        let mut xmin = 0.0f64;
        let mut xmax = 0.0f64;
        let mut ymin = 0.0f64;
        let mut ymax = 0.0f64;
        for p in &self.points {
            xmin = xmin.min(p.x);
            xmax = xmax.max(p.x);
            ymin = ymin.min(p.y);
            ymax = ymax.max(p.y);
        }
        let pad = 0.08;
        let xspan = (xmax - xmin).max(1e-9);
        let yspan = (ymax - ymin).max(1e-9);
        xmin -= pad * xspan;
        xmax += pad * xspan;
        ymin -= pad * yspan;
        ymax += pad * yspan;

        let sx = |x: f64| margin + (x - xmin) / (xmax - xmin) * (w - 2.0 * margin);
        let sy = |y: f64| h - margin - (y - ymin) / (ymax - ymin) * (h - 2.0 * margin);

        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n",
            self.width, self.height, self.width, self.height
        ));
        out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
        out.push_str(&format!(
            "<text x=\"{}\" y=\"24\" font-family=\"sans-serif\" font-size=\"16\" text-anchor=\"middle\">{}</text>\n",
            w / 2.0,
            xml_escape(&self.title)
        ));
        // Axes through the origin.
        let ox = sx(0.0);
        let oy = sy(0.0);
        out.push_str(&format!(
            "<line x1=\"{margin}\" y1=\"{oy:.1}\" x2=\"{:.1}\" y2=\"{oy:.1}\" stroke=\"#999\" stroke-width=\"1\"/>\n",
            w - margin
        ));
        out.push_str(&format!(
            "<line x1=\"{ox:.1}\" y1=\"{margin}\" x2=\"{ox:.1}\" y2=\"{:.1}\" stroke=\"#999\" stroke-width=\"1\"/>\n",
            h - margin
        ));

        for p in &self.points {
            let px = sx(p.x);
            let py = sy(p.y);
            let label = xml_escape(&p.label);
            match p.class {
                0 => {
                    out.push_str(&format!(
                        "<circle cx=\"{px:.1}\" cy=\"{py:.1}\" r=\"2.5\" fill=\"#777\"/>\n\
                         <text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"9\" fill=\"#555\">{label}</text>\n",
                        px + 4.0,
                        py - 3.0
                    ));
                }
                1 => {
                    out.push_str(&format!(
                        "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"7\" height=\"7\" fill=\"#1f5fbf\"/>\n\
                         <text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"11\" fill=\"#1f5fbf\">{label}</text>\n",
                        px - 3.5,
                        py - 3.5,
                        px + 6.0,
                        py - 5.0
                    ));
                }
                2 => {
                    out.push_str(&format!(
                        "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"8\" height=\"8\" fill=\"#c23b22\"/>\n\
                         <text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"12\" font-weight=\"bold\" fill=\"#c23b22\">{label}</text>\n",
                        px - 4.0,
                        py - 4.0,
                        px + 7.0,
                        py - 6.0
                    ));
                }
                _ => {
                    out.push_str(&format!(
                        "<line x1=\"{ox:.1}\" y1=\"{oy:.1}\" x2=\"{px:.1}\" y2=\"{py:.1}\" stroke=\"#1a7f37\" stroke-width=\"2\"/>\n\
                         <circle cx=\"{px:.1}\" cy=\"{py:.1}\" r=\"4\" fill=\"#1a7f37\"/>\n\
                         <text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"12\" font-weight=\"bold\" fill=\"#1a7f37\">{label}</text>\n",
                        px + 7.0,
                        py + 4.0
                    ));
                }
            }
        }
        out.push_str("</svg>\n");
        out
    }
}

/// Escape the five XML special characters.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScatterPlot {
        let mut p = ScatterPlot::new("test <plot>");
        p.term(0.1, 0.2, "alpha");
        p.doc(-0.5, 0.3, "M1");
        p.doc_highlight(0.4, -0.6, "M15");
        p.query(0.15, -0.12, "QUERY");
        p
    }

    #[test]
    fn renders_valid_looking_svg() {
        let svg = sample().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 2); // term + query tip
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 docs
        assert!(svg.contains("QUERY"));
    }

    #[test]
    fn escapes_xml_in_title_and_labels() {
        let svg = sample().render();
        assert!(svg.contains("test &lt;plot&gt;"));
        assert!(!svg.contains("<plot>"));
    }

    #[test]
    fn all_points_land_inside_the_canvas() {
        let p = sample();
        let svg = p.render();
        for token in svg.split("cx=\"") {
            if let Some(end) = token.find('"') {
                if let Ok(x) = token[..end].parse::<f64>() {
                    assert!(x >= 0.0 && x <= p.width as f64, "x {x} out of canvas");
                }
            }
        }
    }

    #[test]
    fn empty_plot_renders() {
        let svg = ScatterPlot::new("empty").render();
        assert!(svg.contains("</svg>"));
    }
}
