//! Kernel-level performance snapshot used to populate BENCH_kernels.json.
//!
//! Measures the three hot paths the blocked-BLAS work targets:
//! dense GEMM throughput (GFLOP/s), Lanczos wall time at k = 50 with
//! full reorthogonalization, and query-scoring throughput (queries/sec,
//! both one-at-a-time and batched). Prints one JSON object to stdout so
//! before/after runs can be diffed mechanically:
//!
//! ```text
//! cargo run --release -p lsi-bench --bin perf_kernels
//! ```

use std::time::Instant;

use lsi_core::{Combine, LsiModel, LsiOptions, MultiQuery};
use lsi_corpora::treclike::trec_like;
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_linalg::{ops, DenseMatrix};
use lsi_sparse::ops::DualFormat;
use lsi_svd::{lanczos_svd, LanczosOptions, Reorth};
use lsi_text::{ParsingRules, TermWeighting};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(m: usize, n: usize, rng: &mut StdRng) -> DenseMatrix {
    let mut a = DenseMatrix::zeros(m, n);
    for j in 0..n {
        for i in 0..m {
            a.set(i, j, rng.random::<f64>() - 0.5);
        }
    }
    a
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gemm_gflops(m: usize, k: usize, n: usize, transposed: bool, rng: &mut StdRng) -> f64 {
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    if transposed {
        // C = A^T B with A k-rows-first so shapes line up: A is k x m.
        let a = random_matrix(k, m, rng);
        let b = random_matrix(k, n, rng);
        let secs = best_secs(5, || {
            std::hint::black_box(ops::matmul_tn(&a, &b).expect("gemm_tn"));
        });
        flops / secs / 1e9
    } else {
        let a = random_matrix(m, k, rng);
        let b = random_matrix(k, n, rng);
        let secs = best_secs(5, || {
            std::hint::black_box(ops::matmul(&a, &b).expect("gemm"));
        });
        flops / secs / 1e9
    }
}

fn query_model() -> (LsiModel, Vec<String>) {
    // 10 topics x 200 docs/topic = 2000 documents.
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 10,
        docs_per_topic: 200,
        doc_len: 30,
        queries_per_topic: 8,
        seed: 77,
        ..Default::default()
    });
    let options = LsiOptions {
        k: 64,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 7,
    };
    let (model, _) = LsiModel::build(&gen.corpus, &options).expect("model builds");
    let queries = gen.queries.iter().map(|q| q.text.clone()).collect();
    (model, queries)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);

    // --- Dense GEMM throughput -------------------------------------
    let gemm_nn_256 = gemm_gflops(256, 256, 256, false, &mut rng);
    let gemm_tn_256 = gemm_gflops(256, 256, 256, true, &mut rng);
    let gemm_nn_512 = gemm_gflops(512, 512, 512, false, &mut rng);
    // Tall-skinny shape typical of basis updates: (4500 x 128) * (128 x 128).
    let gemm_nn_tall = gemm_gflops(4500, 128, 128, false, &mut rng);

    // --- Lanczos k = 50, full reorthogonalization ------------------
    let matrix = trec_like(20, 7); // 4500 x 3500, TREC-shaped sparsity
    let dual = DualFormat::from_csc(matrix);
    let opts = LanczosOptions {
        reorth: Reorth::Full,
        ..Default::default()
    };
    let mut steps = 0usize;
    let lanczos_secs = best_secs(3, || {
        let (svd, report) = lanczos_svd(&dual, 50, &opts).expect("lanczos runs");
        steps = report.steps;
        std::hint::black_box(svd);
    });

    // --- Query scoring throughput ----------------------------------
    let (model, queries) = query_model();
    let qhats: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| model.project_text(q).expect("projects"))
        .collect();

    // Single-query path: full text query, top 10 of a ranked list.
    let single_secs = best_secs(3, || {
        for q in &queries {
            let ranked = model.query(q).expect("query runs");
            std::hint::black_box(ranked.top(10));
        }
    });
    let single_qps = queries.len() as f64 / single_secs;

    // Scoring-only path: pre-projected vectors ranked top-10. This is
    // the loop the precomputed-norm + top-k selection work targets
    // (rank_projected_top partitions instead of sorting the full list).
    let score_reps = 20usize;
    let score_secs = best_secs(3, || {
        for _ in 0..score_reps {
            for qhat in &qhats {
                let ranked = model.rank_projected_top(qhat, 10).expect("ranks");
                std::hint::black_box(ranked);
            }
        }
    });
    let batch_qps = (score_reps * qhats.len()) as f64 / score_secs;

    // Multi-facet query (all facets at once) for the one-GEMM path.
    let mq = MultiQuery::from_vectors(&model, qhats.clone()).expect("facets");
    let multi_secs = best_secs(3, || {
        for _ in 0..score_reps {
            let ranked = model.query_multi(&mq, Combine::Max).expect("multi");
            std::hint::black_box(ranked.top(10));
        }
    });
    let multi_qps = (score_reps * qhats.len()) as f64 / multi_secs;

    println!("{{");
    println!("  \"gemm_nn_256_gflops\": {gemm_nn_256:.3},");
    println!("  \"gemm_tn_256_gflops\": {gemm_tn_256:.3},");
    println!("  \"gemm_nn_512_gflops\": {gemm_nn_512:.3},");
    println!("  \"gemm_nn_tall_gflops\": {gemm_nn_tall:.3},");
    println!("  \"lanczos_k50_secs\": {lanczos_secs:.4},");
    println!("  \"lanczos_k50_steps\": {steps},");
    println!("  \"query_single_qps\": {single_qps:.1},");
    println!("  \"query_batch_scoring_qps\": {batch_qps:.1},");
    println!("  \"query_multi_facet_qps\": {multi_qps:.1}");
    println!("}}");
}
