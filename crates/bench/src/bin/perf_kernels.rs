//! Kernel-level performance snapshot used to populate BENCH_kernels.json.
//!
//! Measures the three hot paths the blocked-BLAS work targets:
//! dense GEMM throughput (GFLOP/s), Lanczos wall time at k = 50 with
//! full reorthogonalization, and query-scoring throughput (queries/sec,
//! both one-at-a-time and batched). Prints one JSON run report to
//! stdout (the lsi-obs `RunReport` schema: `name`/`meta`/`results`/
//! `metrics`) so before/after runs can be diffed mechanically:
//!
//! ```text
//! cargo run --release -p lsi-bench --bin perf_kernels           # full sizes
//! cargo run --release -p lsi-bench --bin perf_kernels -- --quick  # CI smoke
//! cargo run --release -p lsi-bench --bin perf_kernels -- --pool   # BENCH_pool.json
//! ```
//!
//! `--quick` shrinks every problem size so the whole run takes a few
//! seconds; the report keys are identical, only the numbers are not
//! comparable to full-size runs (meta records `"quick": true`).
//!
//! `--pool` switches to the thread-pool snapshot used to populate
//! BENCH_pool.json: pooled dispatch latency vs the scoped-spawn cost it
//! replaced, the nnz-balanced SpMV speedup on a Zipf-skewed matrix, and
//! the Lanczos k = 50 wall time (comparable to `lanczos_k50_secs` in
//! BENCH_kernels.json). Combines with `--quick` for a smoke run.
//!
//! `--index` measures the cluster-pruned retrieval curve on a
//! 10x-inflated copy of the kernels corpus: the nprobe sweep
//! (recall@10, throughput, speedup vs the exact scan), the default
//! operating point, bit-identity at `nprobe = n_lists`, and the
//! 1x/10x/100x per-query latency trend. Exits nonzero when recall@10
//! at the default depth falls below 0.95 or full-depth bit-identity
//! breaks. Populates the `index` section of BENCH_kernels.json.
//!
//! `--compressed` measures the precision ladder: batched top-10 scoring
//! throughput on the exact f64 scan vs the f32 and i8 candidate sweeps
//! (same corpus and queries as the kernels run, so
//! `f64_batch_scoring_qps` is comparable to `query_batch_scoring_qps`),
//! plus resident scoring bytes per mode, margin-fallback counts, and
//! the i8 ladder's recall@10 against the exact oracle. Populates the
//! `compressed` section of BENCH_kernels.json.
//!
//! `--serve` runs the daemon load bench: an in-process
//! `lsi_serve::Server` driven by concurrent keep-alive clients over
//! loopback sockets. Measures coalesced-batch serving qps/p50/p99 vs
//! the same daemon pinned to one query per scoring call, the shed rate
//! past a tiny scoring queue, and a drain with requests in flight.
//! Exits nonzero when batching buys < 2x (full size), the bounded
//! queue never sheds, or a drain drops an in-flight request. Populates
//! BENCH_serve.json.
//!
//! `--gate` is the perf-regression gate run by scripts/verify.sh: it
//! re-measures the key metrics at full size with observability
//! *disarmed* (the production configuration), loads the `gate` section
//! of BENCH_kernels.json, and fails (exit 1) with an itemized diff when
//! any metric falls outside its tolerance band. A failing first pass
//! gets one settle-and-retry (the gate runs right after the test
//! suites, when the container's CPU budget is often drained); the
//! direction-aware better of the two measurements stands. It also
//! reports the armed-metrics and armed-tracing overhead on the batched
//! query path (the numbers behind the DESIGN.md §3g overhead table).
//! `LSI_PERF_TOLERANCE=0.5` overrides every band, for slower machines.

use std::time::Instant;

use lsi_core::{Combine, LsiModel, LsiOptions, MultiQuery};
use lsi_corpora::treclike::trec_like;
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_linalg::{ops, DenseMatrix};
use lsi_obs::Json;
use lsi_sparse::ops::DualFormat;
use lsi_svd::{lanczos_svd, LanczosOptions, Reorth};
use lsi_text::{ParsingRules, TermWeighting};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Problem sizes for one run; `--quick` selects the small set.
struct Sizes {
    gemm_square_small: usize,
    gemm_square_large: usize,
    gemm_tall: (usize, usize, usize),
    trec_scale: usize,
    lanczos_k: usize,
    topics: usize,
    docs_per_topic: usize,
    model_k: usize,
    time_reps: usize,
    score_reps: usize,
}

impl Sizes {
    fn full() -> Sizes {
        Sizes {
            gemm_square_small: 256,
            gemm_square_large: 512,
            // Tall-skinny shape typical of basis updates.
            gemm_tall: (4500, 128, 128),
            trec_scale: 20, // 4500 x 3500, TREC-shaped sparsity
            lanczos_k: 50,
            topics: 10,
            docs_per_topic: 200,
            model_k: 64,
            time_reps: 3,
            score_reps: 20,
        }
    }

    fn quick() -> Sizes {
        Sizes {
            gemm_square_small: 96,
            gemm_square_large: 128,
            gemm_tall: (600, 48, 48),
            // trec_like's scale is a divisor: larger scale = smaller matrix.
            trec_scale: 200,
            lanczos_k: 20,
            topics: 4,
            docs_per_topic: 30,
            model_k: 16,
            time_reps: 1,
            score_reps: 2,
        }
    }
}

fn random_matrix(m: usize, n: usize, rng: &mut StdRng) -> DenseMatrix {
    let mut a = DenseMatrix::zeros(m, n);
    for j in 0..n {
        for i in 0..m {
            a.set(i, j, rng.random::<f64>() - 0.5);
        }
    }
    a
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gemm_gflops(m: usize, k: usize, n: usize, transposed: bool, reps: usize, rng: &mut StdRng) -> f64 {
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    if transposed {
        // C = A^T B with A k-rows-first so shapes line up: A is k x m.
        let a = random_matrix(k, m, rng);
        let b = random_matrix(k, n, rng);
        let secs = best_secs(reps, || {
            std::hint::black_box(ops::matmul_tn(&a, &b).expect("gemm_tn"));
        });
        flops / secs / 1e9
    } else {
        let a = random_matrix(m, k, rng);
        let b = random_matrix(k, n, rng);
        let secs = best_secs(reps, || {
            std::hint::black_box(ops::matmul(&a, &b).expect("gemm"));
        });
        flops / secs / 1e9
    }
}

fn query_model(s: &Sizes) -> (LsiModel, Vec<String>) {
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: s.topics,
        docs_per_topic: s.docs_per_topic,
        doc_len: 30,
        queries_per_topic: 8,
        seed: 77,
        ..Default::default()
    });
    let options = LsiOptions {
        k: s.model_k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 7,
    };
    let (model, _) = LsiModel::build(&gen.corpus, &options).expect("model builds");
    let queries = gen.queries.iter().map(|q| q.text.clone()).collect();
    (model, queries)
}

/// The `--pool` report: dispatch latency, SpMV skew behavior, Lanczos
/// wall time. Everything the pool acceptance criteria need in one JSON.
fn pool_report(quick: bool) {
    use rayon::prelude::*;

    let run_start = Instant::now();
    let threads = rayon::current_num_threads();

    // --- Dispatch latency --------------------------------------------
    // Warm the pool (first parallel call spawns the workers), then time
    // empty parallel regions: all that remains is publish + wake +
    // chunk-claim + quiesce, i.e. pure dispatch.
    (0..threads * 4).into_par_iter().for_each(|_| {});
    let reps = if quick { 200 } else { 2000 };
    let t0 = Instant::now();
    for _ in 0..reps {
        (0..threads * 4).into_par_iter().for_each(|_| {});
    }
    let pool_dispatch_us = t0.elapsed().as_secs_f64() / reps as f64 * 1e6;

    // The cost the pool replaced: one scoped OS-thread spawn + join per
    // parallel region (what the shim did before it had a pool).
    let sreps = if quick { 10 } else { 50 };
    let t0 = Instant::now();
    for _ in 0..sreps {
        std::thread::scope(|s| {
            s.spawn(|| {});
        });
    }
    let spawn_dispatch_us = t0.elapsed().as_secs_f64() / sreps as f64 * 1e6;

    // --- SpMV on a Zipf-skewed matrix --------------------------------
    // Term-frequency rows follow a Zipf law, so a handful of rows hold
    // a large share of the nonzeros — the shape that made row-count
    // partitioning lopsided and motivated the nnz-balanced spans.
    // Both sizes must stay above PAR_NNZ_THRESHOLD or the "parallel"
    // column silently measures the serial fallback.
    let (tm, tn, density) = if quick { (8000, 4000, 0.012) } else { (20000, 8000, 0.012) };
    let csc = lsi_sparse::gen::random_term_doc(
        tm,
        tn,
        density,
        lsi_sparse::gen::RowProfile::Zipf { s: 1.1 },
        8,
        99,
    );
    let csr = csc.to_csr();
    let nnz = csr.nnz();
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let x: Vec<f64> = (0..tn).map(|_| rng.random::<f64>() - 0.5).collect();
    let mut y = vec![0.0; tm];
    let mreps = if quick { 5 } else { 50 };
    let serial_secs = best_secs(mreps, || {
        csr.matvec_into(&x, &mut y);
        std::hint::black_box(&y);
    });
    let par_secs = best_secs(mreps, || {
        csr.par_matvec_into(&x, &mut y);
        std::hint::black_box(&y);
    });

    // --- Lanczos wall time -------------------------------------------
    // Same shape and options as the kernels bench, so lanczos_k50_secs
    // is directly comparable to the PR 1 BENCH_kernels.json baseline.
    let s = if quick { Sizes::quick() } else { Sizes::full() };
    let matrix = trec_like(s.trec_scale, 7);
    let corpus_shape = format!("trec_like({}) {}x{}", s.trec_scale, matrix.nrows(), matrix.ncols());
    let dual = DualFormat::from_csc(matrix);
    let opts = LanczosOptions {
        reorth: Reorth::Full,
        ..Default::default()
    };
    let mut steps = 0usize;
    let lanczos_secs = best_secs(s.time_reps, || {
        let (svd, report) = lanczos_svd(&dual, s.lanczos_k, &opts).expect("lanczos runs");
        steps = report.steps;
        std::hint::black_box(svd);
    });

    let mut report = lsi_obs::RunReport::new("perf_pool")
        .meta("quick", Json::Bool(quick))
        .meta("corpus", Json::Str(corpus_shape))
        .meta("spmv_shape", Json::Str(format!("{tm}x{tn} zipf(1.1) nnz={nnz}")))
        .meta("wall_secs", Json::Num(run_start.elapsed().as_secs_f64()));
    report.result("pool_threads", Json::Num(threads as f64));
    report.result("pool_dispatch_us", Json::Num(pool_dispatch_us));
    report.result("spawn_dispatch_us", Json::Num(spawn_dispatch_us));
    report.result("spmv_skewed_serial_secs", Json::Num(serial_secs));
    report.result("spmv_skewed_par_secs", Json::Num(par_secs));
    report.result("spmv_skewed_speedup", Json::Num(serial_secs / par_secs));
    report.result("lanczos_k50_secs", Json::Num(lanczos_secs));
    report.result("lanczos_k50_steps", Json::Num(steps as f64));
    report.snapshot = lsi_obs::snapshot();
    print!("{}", report.to_json().to_string_pretty());
}

/// The `--compressed` report: the precision ladder measured end to end
/// through `rank_projected_top` on the kernels-bench corpus.
fn compressed_report(quick: bool) {
    use lsi_core::Precision;

    let s = if quick { Sizes::quick() } else { Sizes::full() };
    let run_start = Instant::now();
    let (model, queries) = query_model(&s);
    let qhats: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| model.project_text(q).expect("projects"))
        .collect();
    let corpus_shape = format!(
        "synthetic {} docs x k={} ({} queries)",
        model.n_docs(),
        model.k(),
        qhats.len()
    );

    // Exact top-10 oracle, for the i8 recall measurement.
    let oracles: Vec<Vec<usize>> = qhats
        .iter()
        .map(|qhat| {
            model
                .rank_projected_top(qhat, 10)
                .expect("oracle ranks")
                .matches
                .iter()
                .map(|m| m.doc)
                .collect()
        })
        .collect();

    let mut report = lsi_obs::RunReport::new("perf_compressed")
        .meta("quick", Json::Bool(quick))
        .meta("corpus", Json::Str(corpus_shape));
    let mut qps_by_mode = [0.0f64; 3];
    for (mi, precision) in [Precision::Exact, Precision::F32, Precision::I8]
        .into_iter()
        .enumerate()
    {
        let mut m = model.clone();
        m.set_precision(precision);
        let name = precision.name();
        let fallbacks_before = lsi_obs::snapshot()
            .counter("score.rerank.fallback.count")
            .unwrap_or(0);
        let secs = best_secs(s.time_reps, || {
            for _ in 0..s.score_reps {
                for qhat in &qhats {
                    let ranked = m.rank_projected_top(qhat, 10).expect("ranks");
                    std::hint::black_box(ranked);
                }
            }
        });
        let fallbacks = lsi_obs::snapshot()
            .counter("score.rerank.fallback.count")
            .unwrap_or(0)
            - fallbacks_before;
        let qps = (s.score_reps * qhats.len()) as f64 / secs;
        qps_by_mode[mi] = qps;
        report.result(&format!("{name}_batch_scoring_qps"), Json::Num(qps));
        report.result(
            &format!("{name}_resident_bytes"),
            Json::Num(m.scoring_resident_bytes() as f64),
        );
        if precision != Precision::Exact {
            report.result(&format!("{name}_fallbacks"), Json::Num(fallbacks as f64));
        }
        if precision == Precision::I8 {
            let mut hit = 0usize;
            let mut total = 0usize;
            for (qhat, oracle) in qhats.iter().zip(oracles.iter()) {
                let approx = m.rank_projected_top(qhat, 10).expect("i8 ranks");
                hit += approx
                    .matches
                    .iter()
                    .filter(|hm| oracle.contains(&hm.doc))
                    .count();
                total += oracle.len();
            }
            report.result("i8_recall_at_10", Json::Num(hit as f64 / total as f64));
        }
    }
    report.result("f32_speedup_vs_f64", Json::Num(qps_by_mode[1] / qps_by_mode[0]));
    report.result("i8_speedup_vs_f64", Json::Num(qps_by_mode[2] / qps_by_mode[0]));
    let report = report.meta("wall_secs", Json::Num(run_start.elapsed().as_secs_f64()));
    let mut report = report;
    report.snapshot = lsi_obs::snapshot();
    print!("{}", report.to_json().to_string_pretty());
}

/// The `--index` report: the cluster-pruned retrieval curve measured
/// end to end through `rank_projected_top` on a 10x-inflated copy of
/// the kernels-bench corpus (`replicate_docs_for_bench`, so the exact
/// rows are comparable to `query_batch_scoring_qps` scaled by 10).
///
/// Reports the nprobe sweep (recall@10 + throughput + speedup vs the
/// exact-scan oracle on the same inflated corpus), the default-depth
/// operating point, bit-identity at `nprobe = n_lists`, and the
/// scaling trend at 1x/10x/100x inflation. Exits nonzero when
/// recall@10 at [`lsi_core::DEFAULT_NPROBE`] drops below 0.95 or the
/// full-depth probe is not bit-identical — the CI floor for the
/// pruning path. Populates the `index` section of BENCH_kernels.json.
fn index_report(quick: bool) -> i32 {
    use lsi_core::{IndexPolicy, Precision, DEFAULT_NPROBE};

    let s = if quick { Sizes::quick() } else { Sizes::full() };
    let run_start = Instant::now();
    let (base, queries) = query_model(&s);
    let qhats: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| base.project_text(q).expect("projects"))
        .collect();

    let inflate = 10usize;
    let mut model = base.clone();
    model.replicate_docs_for_bench(inflate).expect("inflates");
    let n = model.n_docs();

    // Exact-scan oracle (top-10 ids) and exact batched throughput on
    // the inflated corpus — the baseline every pruned row divides by.
    let oracles: Vec<Vec<usize>> = qhats
        .iter()
        .map(|qhat| {
            model
                .rank_projected_top(qhat, 10)
                .expect("oracle ranks")
                .matches
                .iter()
                .map(|m| m.doc)
                .collect()
        })
        .collect();
    let batch_qps = |m: &LsiModel, reps: usize| {
        let secs = best_secs(reps, || {
            for qhat in &qhats {
                let ranked = m.rank_projected_top(qhat, 10).expect("ranks");
                std::hint::black_box(ranked);
            }
        });
        qhats.len() as f64 / secs
    };
    let recall_at_10 = |m: &LsiModel| {
        let mut hit = 0usize;
        let mut total = 0usize;
        for (qhat, oracle) in qhats.iter().zip(oracles.iter()) {
            let ranked = m.rank_projected_top(qhat, 10).expect("pruned ranks");
            hit += ranked.matches.iter().filter(|hm| oracle.contains(&hm.doc)).count();
            total += oracle.len();
        }
        hit as f64 / total as f64
    };
    let exact_qps = batch_qps(&model, s.time_reps);

    // One training pass; the sweep below only changes the probe depth,
    // which reuses the trained index.
    let train_start = Instant::now();
    model
        .set_index_policy(IndexPolicy::Pruned { nprobe: DEFAULT_NPROBE })
        .expect("index trains");
    let train_secs = train_start.elapsed().as_secs_f64();
    let n_lists = model.index_n_lists().expect("index present");

    let mut report = lsi_obs::RunReport::new("perf_index")
        .meta("quick", Json::Bool(quick))
        .meta(
            "corpus",
            Json::Str(format!(
                "synthetic {} docs (10x-inflated) x k={} ({} queries)",
                n,
                model.k(),
                qhats.len()
            )),
        );
    report.result("index_n_lists", Json::Num(n_lists as f64));
    report.result(
        "index_resident_bytes",
        Json::Num(model.index_resident_bytes().unwrap_or(0) as f64),
    );
    report.result("index_train_secs", Json::Num(train_secs));
    report.result("exact_batch_scoring_qps", Json::Num(exact_qps));

    // --- The nprobe sweep: recall@10 vs speedup ----------------------
    let mut failures: Vec<String> = Vec::new();
    for &p in &[1usize, 2, 4, 8, 16, 32, 64] {
        if p > n_lists {
            continue;
        }
        model.set_index_policy(IndexPolicy::Pruned { nprobe: p }).expect("depth change");
        let qps = batch_qps(&model, s.time_reps);
        let recall = recall_at_10(&model);
        report.result(&format!("nprobe{p}_batch_scoring_qps"), Json::Num(qps));
        report.result(&format!("nprobe{p}_recall_at_10"), Json::Num(recall));
        report.result(&format!("nprobe{p}_speedup_vs_exact"), Json::Num(qps / exact_qps));
    }
    // The default operating point (clamped on tiny corpora), the row
    // the recall floor and the perf gate stand on.
    model
        .set_index_policy(IndexPolicy::Pruned { nprobe: DEFAULT_NPROBE })
        .expect("depth change");
    let default_qps = batch_qps(&model, s.time_reps);
    let default_recall = recall_at_10(&model);
    let default_speedup = default_qps / exact_qps;
    report.result("pruned_batch_scoring_qps", Json::Num(default_qps));
    report.result("pruned_recall_at_10", Json::Num(default_recall));
    report.result("pruned_speedup_vs_exact", Json::Num(default_speedup));
    if default_recall < 0.95 {
        failures.push(format!(
            "recall@10 at nprobe={DEFAULT_NPROBE} is {default_recall:.4} (floor 0.95)"
        ));
    }

    // The compressed ladder rides the same survivor sweep: pruned
    // candidate generation in f32 with the exact f64 re-rank.
    {
        let mut m32 = model.clone();
        m32.set_precision(Precision::F32);
        report.result("pruned_f32_batch_scoring_qps", Json::Num(batch_qps(&m32, s.time_reps)));
        report.result("pruned_f32_recall_at_10", Json::Num(recall_at_10(&m32)));
    }

    // --- Bit-identity at full probe depth ----------------------------
    // nprobe = n_lists degenerates to the exact scan: same documents,
    // same order, same cosine bit patterns.
    model
        .set_index_policy(IndexPolicy::Pruned { nprobe: n_lists })
        .expect("depth change");
    let mut exact_policy = model.clone();
    exact_policy.set_index_policy(IndexPolicy::Exact).expect("exact policy");
    let mut identical = true;
    for qhat in &qhats {
        let want = exact_policy.rank_projected_top(qhat, 10).expect("exact ranks");
        let got = model.rank_projected_top(qhat, 10).expect("full-depth ranks");
        identical &= want.matches.len() == got.matches.len()
            && want
                .matches
                .iter()
                .zip(got.matches.iter())
                .all(|(a, b)| a.doc == b.doc && a.cosine.to_bits() == b.cosine.to_bits());
    }
    report.result("full_depth_bit_identical", Json::Num(identical as u64 as f64));
    if !identical {
        failures.push("nprobe = n_lists is not bit-identical to the exact scan".to_string());
    }

    // --- Scaling trend: per-query latency at 1x/10x/100x -------------
    // The exact scan grows linearly with the corpus; the probe stays
    // ~sqrt(n) + survivors, so pruned latency should stay near flat.
    for &factor in &[1usize, 10, 100] {
        let mut m = base.clone();
        m.replicate_docs_for_bench(factor).expect("inflates");
        let exact = batch_qps(&m, 1);
        m.set_index_policy(IndexPolicy::Pruned { nprobe: DEFAULT_NPROBE })
            .expect("index trains");
        let pruned = batch_qps(&m, 1);
        report.result(&format!("scale{factor}x_exact_query_us"), Json::Num(1e6 / exact));
        report.result(&format!("scale{factor}x_pruned_query_us"), Json::Num(1e6 / pruned));
    }

    let mut report = report.meta("wall_secs", Json::Num(run_start.elapsed().as_secs_f64()));
    report.snapshot = lsi_obs::snapshot();
    print!("{}", report.to_json().to_string_pretty());
    if !failures.is_empty() {
        for f in &failures {
            lsi_obs::error!("perf-index: FAIL: {f}");
        }
        return 1;
    }
    0
}

// --- The `--serve` load generator ------------------------------------
//
// Drives a real in-process `lsi_serve::Server` over loopback sockets:
// N keep-alive clients, each issuing GET /query requests back to back.
// Measures batched coalesced serving against the same daemon pinned to
// max_batch = 1 (per-request sequential scoring), then a shed phase
// with a tiny scoring queue, then a drain phase with requests provably
// in flight when the server stops. Populates BENCH_serve.json.

/// Per-phase load result, aggregated over every client.
struct LoadOutcome {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    ok: u64,
    shed: u64,
    timeout: u64,
    dropped: u64,
    wall_secs: f64,
    report: lsi_obs::RunReport,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Read one HTTP/1.1 response off a keep-alive stream. `carry` holds
/// bytes of the next response read past this one. Returns
/// `(status, server_will_close)`.
fn read_one_response(
    stream: &mut std::net::TcpStream,
    carry: &mut Vec<u8>,
) -> std::io::Result<(u16, bool)> {
    use std::io::Read as _;
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = find_blank_line(carry) {
            break end;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
    let status: u16 = head
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    let mut content_len = 0usize;
    let mut close = false;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_len = v.trim().parse().unwrap_or(0);
            }
            if k.trim().eq_ignore_ascii_case("connection")
                && v.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let total = head_end + content_len;
    while carry.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        carry.extend_from_slice(&chunk[..n]);
    }
    carry.drain(..total);
    Ok((status, close))
}

/// One keep-alive client: `n` GET requests round-robining `paths`,
/// reconnecting when the server closes. Returns per-request
/// `(status, latency_us)`; status 0 = no response (dropped).
fn client_loop(
    addr: std::net::SocketAddr,
    n: usize,
    paths: &[String],
    offset: usize,
) -> Vec<(u16, f64)> {
    use std::io::Write as _;
    let mut out = Vec::with_capacity(n);
    let mut conn: Option<(std::net::TcpStream, Vec<u8>)> = None;
    for i in 0..n {
        let path = &paths[(offset + i) % paths.len()];
        let t = Instant::now();
        let status = (|| -> std::io::Result<u16> {
            if conn.is_none() {
                let s = std::net::TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
                conn = Some((s, Vec::new()));
            }
            let (stream, carry) = conn.as_mut().expect("connection present");
            stream.write_all(
                format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes(),
            )?;
            let (status, close) = read_one_response(stream, carry)?;
            if close {
                conn = None;
            }
            Ok(status)
        })();
        let us = t.elapsed().as_secs_f64() * 1e6;
        match status {
            Ok(code) => out.push((code, us)),
            Err(_) => {
                conn = None;
                out.push((0, us));
            }
        }
    }
    out
}

/// Run one load phase: bind, serve `model`, hammer it with
/// `clients` x `per_client` requests, stop, and aggregate.
fn serve_phase(
    model: LsiModel,
    cfg: lsi_serve::ServeConfig,
    clients: usize,
    per_client: usize,
    paths: &[String],
) -> LoadOutcome {
    use std::sync::atomic::Ordering;

    let server = lsi_serve::Server::bind(cfg).expect("serve bench binds");
    let addr = server.local_addr();
    let stop = server.stop_handle();
    let handle = std::thread::spawn(move || server.run(model));
    // Warm up the accept path and the scoring store before timing.
    let _ = client_loop(addr, 1, paths, 0);

    let t0 = Instant::now();
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let paths = paths.to_vec();
            std::thread::spawn(move || client_loop(addr, per_client, &paths, c * 7))
        })
        .collect();
    let mut lats: Vec<f64> = Vec::new();
    let (mut ok, mut shed, mut timeout, mut dropped) = (0u64, 0u64, 0u64, 0u64);
    for join in joins {
        for (code, us) in join.join().expect("client thread") {
            match code {
                200 => {
                    ok += 1;
                    lats.push(us);
                }
                503 => shed += 1,
                408 | 504 => timeout += 1,
                _ => dropped += 1,
            }
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    // Relaxed: advisory stop gate; the accept loop re-checks each pass.
    stop.store(true, Ordering::Relaxed);
    let report = handle.join().expect("server thread");
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LoadOutcome {
        qps: ok as f64 / wall_secs,
        p50_us: percentile(&lats, 0.50),
        p99_us: percentile(&lats, 0.99),
        ok,
        shed,
        timeout,
        dropped,
        wall_secs,
        report,
    }
}

fn query_paths(queries: &[String]) -> Vec<String> {
    queries
        .iter()
        .map(|q| format!("/query?q={}&top=10", q.replace(' ', "+")))
        .collect()
}

/// The `--serve` report: coalesced-batch serving vs the same daemon
/// pinned to one query per scoring call, plus shed and drain behavior
/// under load. Exits nonzero (full size only) when batching buys less
/// than 2x, when the bounded queue never sheds, or when a drain drops
/// an in-flight request. Populates BENCH_serve.json.
fn serve_report(quick: bool) -> i32 {
    let mut s = if quick { Sizes::quick() } else { Sizes::full() };
    // Serving-sized factor space: retrieval-quality LSI runs at
    // k ~ 100+ (the paper's operating range), where the per-query GEMV
    // re-reads k doc-store columns per request and the coalesced GEMM's
    // one-pass reuse pays off. The kernels-bench k = 64 model
    // understates the daemon's regime.
    if !quick {
        s.model_k = 128;
    }
    let run_start = Instant::now();
    let (base, queries) = query_model(&s);
    // Inflation makes the document sweep memory-bound, the regime
    // batching targets: the coalesced GEMM reads the doc store once
    // per batch where the sequential daemon re-reads it per query.
    // 20x (40k docs, a ~41 MB doc store at k = 128) puts the sweep
    // well past cache so the fixed per-query costs (projection,
    // selection, HTTP framing) don't mask the scoring contrast.
    let inflate = if quick { 3 } else { 20 };
    let mut model = base.clone();
    model.replicate_docs_for_bench(inflate).expect("inflates");
    let paths = query_paths(&queries);
    let clients = if quick { 4 } else { 24 };
    let per_client = if quick { 30 } else { 100 };

    // The degradation ladder is off for the throughput comparison:
    // both phases must score the exact path end to end, or the batched
    // run would quietly win by shedding recall instead of coalescing.
    let flat_cfg = |max_batch: usize| lsi_serve::ServeConfig {
        threads: clients,
        max_batch,
        queue_depth: clients.max(64),
        degrade: false,
        ..lsi_serve::ServeConfig::default()
    };
    let sequential = serve_phase(model.clone(), flat_cfg(1), clients, per_client, &paths);
    let batched = serve_phase(model.clone(), flat_cfg(32), clients, per_client, &paths);
    let speedup = batched.qps / sequential.qps;

    // Shed phase: a scoring queue far smaller than the in-flight load.
    // The server must answer 503 past the bound, never queue unboundedly.
    let shed_cfg = lsi_serve::ServeConfig {
        threads: clients,
        max_batch: 1,
        queue_depth: 2,
        degrade: false,
        ..lsi_serve::ServeConfig::default()
    };
    let shed_phase = serve_phase(model.clone(), shed_cfg, clients, per_client.min(25), &paths);
    let shed_answered = shed_phase.ok + shed_phase.shed + shed_phase.timeout;
    let shed_rate = shed_phase.shed as f64 / shed_answered.max(1) as f64;

    // Drain phase: requests provably in flight (the serve.batch
    // failpoint stalls scoring) when the server stops; every one must
    // still be answered 200 and counted in the final report.
    let drain_clients = 4;
    let drain = {
        use std::sync::atomic::Ordering;
        let server = lsi_serve::Server::bind(lsi_serve::ServeConfig {
            threads: drain_clients,
            ..lsi_serve::ServeConfig::default()
        })
        .expect("drain server binds");
        let addr = server.local_addr();
        let stop = server.stop_handle();
        let mut m = base.clone();
        m.replicate_docs_for_bench(inflate).expect("inflates");
        let handle = std::thread::spawn(move || server.run(m));
        lsi_fault::arm_from_spec("serve.batch=delay-ms(150)").expect("failpoint arms");
        let joins: Vec<_> = (0..drain_clients)
            .map(|c| {
                let paths = paths.clone();
                std::thread::spawn(move || client_loop(addr, 1, &paths, c))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Relaxed: advisory stop gate; the accept loop re-checks each pass.
        stop.store(true, Ordering::Relaxed);
        let report = handle.join().expect("drain server thread");
        lsi_fault::clear();
        let mut ok = 0u64;
        let mut lost = 0u64;
        for join in joins {
            for (code, _) in join.join().expect("drain client") {
                if code == 200 {
                    ok += 1;
                } else {
                    lost += 1;
                }
            }
        }
        (ok, lost, report)
    };
    let (drain_ok, drain_lost, drain_server_report) = drain;

    let mut failures: Vec<String> = Vec::new();
    if !quick && speedup < 2.0 {
        failures.push(format!(
            "batched serving is only {speedup:.2}x the sequential daemon (floor 2.0x)"
        ));
    }
    if shed_phase.shed == 0 {
        failures.push("the depth-2 scoring queue never shed under load".to_string());
    }
    if drain_lost > 0 {
        failures.push(format!("drain dropped {drain_lost} in-flight request(s)"));
    }

    let mut report = lsi_obs::RunReport::new("perf_serve")
        .meta("quick", Json::Bool(quick))
        .meta(
            "corpus",
            Json::Str(format!(
                "synthetic {} docs ({inflate}x-inflated) x k={} ({} query paths)",
                model.n_docs(),
                model.k(),
                paths.len()
            )),
        )
        .meta("clients", Json::Num(clients as f64))
        .meta("requests_per_client", Json::Num(per_client as f64));
    report.result("sequential_qps", Json::Num(sequential.qps));
    report.result("sequential_p50_us", Json::Num(sequential.p50_us));
    report.result("sequential_p99_us", Json::Num(sequential.p99_us));
    report.result("batched_qps", Json::Num(batched.qps));
    report.result("batched_p50_us", Json::Num(batched.p50_us));
    report.result("batched_p99_us", Json::Num(batched.p99_us));
    report.result("batch_speedup", Json::Num(speedup));
    for (phase, out) in [("sequential", &sequential), ("batched", &batched)] {
        report.result(&format!("{phase}_ok"), Json::Num(out.ok as f64));
        report.result(&format!("{phase}_dropped"), Json::Num(out.dropped as f64));
        report.result(&format!("{phase}_wall_secs"), Json::Num(out.wall_secs));
    }
    let max_batch_seen = batched
        .report
        .to_json()
        .get("results")
        .and_then(|r| r.get("max_batch_seen"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    report.result("batched_max_batch_seen", Json::Num(max_batch_seen));
    report.result("shed_phase_qps", Json::Num(shed_phase.qps));
    report.result("shed_count", Json::Num(shed_phase.shed as f64));
    report.result("shed_rate", Json::Num(shed_rate));
    report.result("shed_timeouts", Json::Num(shed_phase.timeout as f64));
    report.result("drain_inflight_ok", Json::Num(drain_ok as f64));
    report.result("drain_inflight_lost", Json::Num(drain_lost as f64));
    let drain_queries = drain_server_report
        .to_json()
        .get("results")
        .and_then(|r| r.get("queries"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    report.result("drain_server_queries", Json::Num(drain_queries));
    let mut report = report.meta("wall_secs", Json::Num(run_start.elapsed().as_secs_f64()));
    report.snapshot = lsi_obs::snapshot();
    print!("{}", report.to_json().to_string_pretty());
    if !failures.is_empty() {
        for f in &failures {
            lsi_obs::error!("perf-serve: FAIL: {f}");
        }
        return 1;
    }
    0
}

/// One row of the gate comparison table.
struct GateRow {
    name: String,
    baseline: f64,
    measured: f64,
    /// `true` when larger values are better (throughput), `false` for
    /// wall times.
    higher_is_better: bool,
    tolerance: f64,
}

impl GateRow {
    /// The worst value still inside the tolerance band.
    fn bound(&self) -> f64 {
        if self.higher_is_better {
            self.baseline * (1.0 - self.tolerance)
        } else {
            self.baseline * (1.0 + self.tolerance)
        }
    }

    fn passes(&self) -> bool {
        if self.higher_is_better {
            self.measured >= self.bound()
        } else {
            self.measured <= self.bound()
        }
    }
}

/// Walk up from the current directory to find BENCH_kernels.json (the
/// gate runs from the repo root under verify.sh, but also from crate
/// subdirectories during development).
fn find_bench_json() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join("BENCH_kernels.json");
        if candidate.is_file() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The `--gate` mode: measure fresh, compare against the committed
/// `gate` section of BENCH_kernels.json, exit nonzero on regression.
/// One full disarmed measurement pass over the gated metrics, plus the
/// armed-overhead trio `[disarmed, +metrics, +metrics+trace]` on the
/// batched-scoring loop. The gate measures the production
/// configuration: spans compiled in but the master switch off, so any
/// regression here is real cost on the default path (including the
/// counting-allocator gate check).
fn gate_measure(s: &Sizes) -> (Vec<(&'static str, f64)>, [f64; 3]) {
    assert!(!lsi_obs::enabled(), "gate must measure the disarmed path");
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let sq = s.gemm_square_small;
    let gemm_nn_small = gemm_gflops(sq, sq, sq, false, 5, &mut rng);

    let matrix = trec_like(s.trec_scale, 7);
    let dual = DualFormat::from_csc(matrix);
    let opts = LanczosOptions {
        reorth: Reorth::Full,
        ..Default::default()
    };
    let lanczos_secs = best_secs(s.time_reps, || {
        let (svd, _) = lanczos_svd(&dual, s.lanczos_k, &opts).expect("lanczos runs");
        std::hint::black_box(svd);
    });

    let (model, queries) = query_model(s);
    let qhats: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| model.project_text(q).expect("projects"))
        .collect();
    let single_secs = best_secs(s.time_reps, || {
        for q in &queries {
            let ranked = model.query(q).expect("query runs");
            std::hint::black_box(ranked.top(10));
        }
    });
    let single_qps = queries.len() as f64 / single_secs;
    let batch = |reps: usize| {
        let secs = best_secs(reps, || {
            for _ in 0..s.score_reps {
                for qhat in &qhats {
                    let ranked = model.rank_projected_top(qhat, 10).expect("ranks");
                    std::hint::black_box(ranked);
                }
            }
        });
        (s.score_reps * qhats.len()) as f64 / secs
    };
    // Warm-up pass: the tight 2% band must not trip on cold caches.
    let _ = batch(1);
    let batch_qps = batch(7);
    let mq = MultiQuery::from_vectors(&model, qhats.clone()).expect("facets");
    let multi_secs = best_secs(s.time_reps, || {
        for _ in 0..s.score_reps {
            let ranked = model.query_multi(&mq, Combine::Max).expect("multi");
            std::hint::black_box(ranked.top(10));
        }
    });
    let multi_qps = (s.score_reps * qhats.len()) as f64 / multi_secs;

    // Pruned batched scoring at the default probe depth on the
    // 10x-inflated corpus — the gated operating point of the cluster
    // index (same corpus and depth as `perf_kernels --index`).
    let mut inflated = model.clone();
    inflated.replicate_docs_for_bench(10).expect("inflates");
    inflated
        .set_index_policy(lsi_core::IndexPolicy::Pruned { nprobe: lsi_core::DEFAULT_NPROBE })
        .expect("index trains");
    let pruned_secs = best_secs(s.time_reps, || {
        for _ in 0..s.score_reps {
            for qhat in &qhats {
                let ranked = inflated.rank_projected_top(qhat, 10).expect("pruned ranks");
                std::hint::black_box(ranked);
            }
        }
    });
    let pruned_qps = (s.score_reps * qhats.len()) as f64 / pruned_secs;

    // Batched serving throughput end to end through the daemon: real
    // loopback sockets, coalesced scoring, same 10x-inflated corpus as
    // the pruned row. Gates the serve path's whole stack (HTTP parse,
    // queue handoff, batch GEMM, response write).
    let mut serve_model = model.clone();
    serve_model.replicate_docs_for_bench(10).expect("inflates");
    let serve_paths = query_paths(&queries);
    let serve_out = serve_phase(
        serve_model,
        lsi_serve::ServeConfig {
            threads: 8,
            max_batch: 32,
            degrade: false,
            ..lsi_serve::ServeConfig::default()
        },
        8,
        40,
        &serve_paths,
    );
    let serve_qps = serve_out.qps;

    // Full-workspace static analysis (lexer + per-file rules + call
    // graph + interprocedural rules): caps the wall time of the
    // verify.sh `--ci` stage so the graph layers cannot quietly turn
    // the lint gate into the slowest part of the pipeline.
    let analysis_root =
        lsi_analyze::find_workspace_root(None).expect("workspace root for analysis gate");
    let analysis_secs = best_secs(3, || {
        let analysis = lsi_analyze::analyze(&analysis_root).expect("analysis runs");
        std::hint::black_box(analysis.findings.len());
    });

    // --- Instrumentation overhead on the same batched loop -----------
    // Armed metrics (spans + counters + allocation attribution), then
    // armed metrics + trace buffer. Reported, not gated: the gated
    // guarantee is that the *disarmed* path stays fast.
    lsi_obs::set_enabled(true);
    let batch_qps_metrics = batch(3);
    lsi_obs::set_trace_enabled(true);
    lsi_obs::register_thread("main");
    let batch_qps_trace = batch(3);
    lsi_obs::set_trace_enabled(false);
    lsi_obs::set_enabled(false);
    lsi_obs::reset_trace();

    (
        vec![
            ("gemm_nn_256_gflops", gemm_nn_small),
            ("lanczos_k50_secs", lanczos_secs),
            ("query_single_qps", single_qps),
            ("query_batch_scoring_qps", batch_qps),
            ("query_multi_facet_qps", multi_qps),
            ("query_pruned_batch_qps", pruned_qps),
            ("serve_batch_qps", serve_qps),
            ("analysis_full_secs", analysis_secs),
        ],
        [batch_qps, batch_qps_metrics, batch_qps_trace],
    )
}

fn gate_report() -> i32 {
    let s = Sizes::full();
    let run_start = Instant::now();

    // Load the committed bands first so a malformed file fails fast,
    // before a minute of measurement.
    let Some(bench_path) = find_bench_json() else {
        lsi_obs::error!("perf-gate: BENCH_kernels.json not found walking up from the current directory");
        return 2;
    };
    let text = match std::fs::read_to_string(&bench_path) {
        Ok(t) => t,
        Err(e) => {
            lsi_obs::error!("perf-gate: cannot read {}: {e}", bench_path.display());
            return 2;
        }
    };
    let bench = match lsi_obs::parse_json(&text) {
        Ok(j) => j,
        Err(e) => {
            lsi_obs::error!("perf-gate: {} is not valid JSON: {e}", bench_path.display());
            return 2;
        }
    };
    let Some(gate) = bench.get("gate") else {
        lsi_obs::error!(
            "perf-gate: {} has no \"gate\" section; nothing to compare against",
            bench_path.display()
        );
        return 2;
    };
    let Some(Json::Obj(metrics)) = gate.get("metrics") else {
        lsi_obs::error!("perf-gate: \"gate\" section has no \"metrics\" object");
        return 2;
    };
    // LSI_PERF_TOLERANCE widens (or tightens) every band at once — the
    // escape hatch for machines slower than the one that recorded the
    // baselines. Committed per-metric tolerances otherwise apply.
    let tolerance_override = std::env::var("LSI_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    // --- Measure, observability disarmed -----------------------------
    let (mut measured, mut overhead) = gate_measure(&s);

    // --- Compare ------------------------------------------------------
    // One settle-and-retry pass: the gate usually runs right after the
    // full test suites, when the container's CPU budget is drained and
    // throughput can sag 10%+ for a few seconds. A metric outside its
    // band gets one fresh measurement after a short settle, and the
    // direction-aware better of the two runs stands — window-level
    // throttling clears; a real regression fails both passes.
    let build_rows = |measured: &[(&str, f64)]| -> Result<(Vec<GateRow>, usize), i32> {
        let mut rows: Vec<GateRow> = Vec::new();
        let mut unknown = 0;
        for (name, spec) in metrics {
            let (Some(baseline), Some(direction)) = (
                spec.get("baseline").and_then(Json::as_f64),
                spec.get("direction").and_then(Json::as_str),
            ) else {
                lsi_obs::error!("perf-gate: gate metric {name} needs \"baseline\" and \"direction\"");
                return Err(2);
            };
            let tolerance = tolerance_override
                .or_else(|| spec.get("tolerance").and_then(Json::as_f64))
                .unwrap_or(0.25);
            let Some(&(_, value)) = measured.iter().find(|(m, _)| *m == name.as_str()) else {
                lsi_obs::error!("perf-gate: gate metric {name} is not one perf_kernels measures");
                unknown += 1;
                continue;
            };
            rows.push(GateRow {
                name: name.clone(),
                baseline,
                measured: value,
                higher_is_better: direction == "higher",
                tolerance,
            });
        }
        Ok((rows, unknown))
    };
    let (mut rows, unknown) = match build_rows(&measured) {
        Ok(v) => v,
        Err(code) => return code,
    };
    if rows.iter().any(|r| !r.passes()) {
        lsi_obs::warn!("perf-gate: metric(s) outside tolerance; settling and re-measuring once");
        std::thread::sleep(std::time::Duration::from_secs(3));
        let (remeasured, reoverhead) = gate_measure(&s);
        for (slot, &(_, fresh)) in measured.iter_mut().zip(&remeasured) {
            let higher = rows
                .iter()
                .find(|r| r.name == slot.0)
                .map_or(true, |r| r.higher_is_better);
            if (fresh > slot.1) == higher {
                slot.1 = fresh;
            }
        }
        overhead = reoverhead;
        (rows, _) = match build_rows(&measured) {
            Ok(v) => v,
            Err(code) => return code,
        };
    }
    let [batch_qps, batch_qps_metrics, batch_qps_trace] = overhead;

    println!("perf-gate: {} vs fresh measurement", bench_path.display());
    println!(
        "  {:<26} {:>12} {:>12} {:>7} {:>12}  status",
        "metric", "baseline", "measured", "ratio", "bound"
    );
    let mut failed = 0;
    for row in &rows {
        let status = if row.passes() { "PASS" } else { "FAIL" };
        if !row.passes() {
            failed += 1;
        }
        println!(
            "  {:<26} {:>12.3} {:>12.3} {:>7.3} {:>12.3}  {} ({}, tol {:.0}%)",
            row.name,
            row.baseline,
            row.measured,
            row.measured / row.baseline,
            row.bound(),
            status,
            if row.higher_is_better { "higher is better" } else { "lower is better" },
            row.tolerance * 100.0
        );
    }
    println!(
        "  overhead on query_batch_scoring_qps: disarmed {:.0}, +metrics {:.0} ({:+.1}%), +trace {:.0} ({:+.1}%)",
        batch_qps,
        batch_qps_metrics,
        (batch_qps_metrics / batch_qps - 1.0) * 100.0,
        batch_qps_trace,
        (batch_qps_trace / batch_qps - 1.0) * 100.0,
    );
    println!("  wall: {:.1}s", run_start.elapsed().as_secs_f64());
    if failed > 0 || unknown > 0 {
        lsi_obs::error!(
            "perf-gate: FAIL ({failed} metric(s) outside tolerance, {unknown} unknown); \
             rerun with LSI_PERF_TOLERANCE=<frac> to widen bands on a slower machine"
        );
        return 1;
    }
    println!("perf-gate: OK ({} metrics within tolerance)", rows.len());
    0
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    if std::env::args().skip(1).any(|a| a == "--gate") {
        std::process::exit(gate_report());
    }
    if std::env::args().skip(1).any(|a| a == "--pool") {
        if std::env::var_os("LSI_NO_OBS").is_none() {
            lsi_obs::set_enabled(true);
        }
        pool_report(quick);
        return;
    }
    if std::env::args().skip(1).any(|a| a == "--index") {
        if std::env::var_os("LSI_NO_OBS").is_none() {
            lsi_obs::set_enabled(true);
        }
        std::process::exit(index_report(quick));
    }
    if std::env::args().skip(1).any(|a| a == "--serve") {
        if std::env::var_os("LSI_NO_OBS").is_none() {
            lsi_obs::set_enabled(true);
        }
        std::process::exit(serve_report(quick));
    }
    if std::env::args().skip(1).any(|a| a == "--compressed") {
        if std::env::var_os("LSI_NO_OBS").is_none() {
            lsi_obs::set_enabled(true);
        }
        compressed_report(quick);
        return;
    }
    let s = if quick { Sizes::quick() } else { Sizes::full() };
    // LSI_NO_OBS=1 measures the uninstrumented baseline (the metrics
    // section of the report then comes out empty).
    if std::env::var_os("LSI_NO_OBS").is_none() {
        lsi_obs::set_enabled(true);
    }
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let run_start = Instant::now();

    // --- Dense GEMM throughput -------------------------------------
    let (gemm_nn_small, gemm_tn_small, gemm_nn_large, gemm_nn_tall) = {
        let _span = lsi_obs::span("bench.gemm");
        let sq = s.gemm_square_small;
        let lg = s.gemm_square_large;
        let (tm, tk, tn) = s.gemm_tall;
        (
            gemm_gflops(sq, sq, sq, false, 5, &mut rng),
            gemm_gflops(sq, sq, sq, true, 5, &mut rng),
            gemm_gflops(lg, lg, lg, false, 5, &mut rng),
            gemm_gflops(tm, tk, tn, false, 5, &mut rng),
        )
    };

    // --- Lanczos, full reorthogonalization -------------------------
    let matrix = trec_like(s.trec_scale, 7);
    let corpus_shape = format!("trec_like({}) {}x{}", s.trec_scale, matrix.nrows(), matrix.ncols());
    let dual = DualFormat::from_csc(matrix);
    let opts = LanczosOptions {
        reorth: Reorth::Full,
        ..Default::default()
    };
    let mut steps = 0usize;
    let lanczos_secs = {
        let _span = lsi_obs::span("bench.lanczos");
        best_secs(s.time_reps, || {
            let (svd, report) = lanczos_svd(&dual, s.lanczos_k, &opts).expect("lanczos runs");
            steps = report.steps;
            std::hint::black_box(svd);
        })
    };

    // --- Query scoring throughput ----------------------------------
    let _query_span = lsi_obs::span("bench.query");
    let (model, queries) = query_model(&s);
    let qhats: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| model.project_text(q).expect("projects"))
        .collect();

    // Single-query path: full text query, top 10 of a ranked list.
    let single_secs = best_secs(s.time_reps, || {
        for q in &queries {
            let ranked = model.query(q).expect("query runs");
            std::hint::black_box(ranked.top(10));
        }
    });
    let single_qps = queries.len() as f64 / single_secs;

    // Scoring-only path: pre-projected vectors ranked top-10. This is
    // the loop the precomputed-norm + top-k selection work targets
    // (rank_projected_top partitions instead of sorting the full list).
    let score_secs = best_secs(s.time_reps, || {
        for _ in 0..s.score_reps {
            for qhat in &qhats {
                let ranked = model.rank_projected_top(qhat, 10).expect("ranks");
                std::hint::black_box(ranked);
            }
        }
    });
    let batch_qps = (s.score_reps * qhats.len()) as f64 / score_secs;

    // Multi-facet query (all facets at once) for the one-GEMM path.
    let mq = MultiQuery::from_vectors(&model, qhats.clone()).expect("facets");
    let multi_secs = best_secs(s.time_reps, || {
        for _ in 0..s.score_reps {
            let ranked = model.query_multi(&mq, Combine::Max).expect("multi");
            std::hint::black_box(ranked.top(10));
        }
    });
    let multi_qps = (s.score_reps * qhats.len()) as f64 / multi_secs;
    drop(_query_span);

    let mut report = lsi_obs::RunReport::new("perf_kernels")
        .meta("k", Json::Num(s.lanczos_k as f64))
        .meta("corpus", Json::Str(corpus_shape))
        .meta("quick", Json::Bool(quick))
        .meta("wall_secs", Json::Num(run_start.elapsed().as_secs_f64()));
    report.result("gemm_nn_256_gflops", Json::Num(gemm_nn_small));
    report.result("gemm_tn_256_gflops", Json::Num(gemm_tn_small));
    report.result("gemm_nn_512_gflops", Json::Num(gemm_nn_large));
    report.result("gemm_nn_tall_gflops", Json::Num(gemm_nn_tall));
    report.result("lanczos_k50_secs", Json::Num(lanczos_secs));
    report.result("lanczos_k50_steps", Json::Num(steps as f64));
    report.result("query_single_qps", Json::Num(single_qps));
    report.result("query_batch_scoring_qps", Json::Num(batch_qps));
    report.result("query_multi_facet_qps", Json::Num(multi_qps));
    report.snapshot = lsi_obs::snapshot();
    print!("{}", report.to_json().to_string_pretty());
}
