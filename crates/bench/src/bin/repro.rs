//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p lsi-bench --bin repro            # everything
//! cargo run --release -p lsi-bench --bin repro -- --table4 --figure6
//! cargo run --release -p lsi-bench --bin repro -- --json --table4
//! ```
//!
//! `--json` swaps the plain-text tables for one machine-readable run
//! report (the lsi-obs `RunReport` schema): per-section wall times
//! under `results`, git sha and the section list under `meta`, and the
//! collected span/flop metrics under `metrics`. Stdout is then exactly
//! one JSON document.
//!
//! Section names follow DESIGN.md's experiment index.

use lsi_bench::experiments::*;
use lsi_obs::Json;

struct Section {
    flag: &'static str,
    description: &'static str,
    run: fn() -> String,
}

fn sections() -> Vec<Section> {
    vec![
        Section {
            flag: "--table3",
            description: "Table 3: the 18x14 term-document matrix",
            run: || med::table3(),
        },
        Section {
            flag: "--figure4",
            description: "Figures 4/5: 2-D term/document/query coordinates",
            run: || med::figure45_report(),
        },
        Section {
            flag: "--figure5",
            description: "Figure 5 alias of --figure4",
            run: || med::figure45_report(),
        },
        Section {
            flag: "--figure6",
            description: "Figure 6 / S3.2: threshold retrieval vs lexical matching",
            run: || med::figure6_report(),
        },
        Section {
            flag: "--table4",
            description: "Table 4: returned documents by number of factors",
            run: || med::table4_report(),
        },
        Section {
            flag: "--figure7",
            description: "Figures 7-9: folding-in vs recompute vs SVD-updating",
            run: || updating::figures789_report(),
        },
        Section {
            flag: "--figure8",
            description: "alias of --figure7",
            run: || updating::figures789_report(),
        },
        Section {
            flag: "--figure9",
            description: "alias of --figure7",
            run: || updating::figures789_report(),
        },
        Section {
            flag: "--ortho",
            description: "S4.3: orthogonality loss under folding-in",
            run: || updating::ortho_report(10),
        },
        Section {
            flag: "--plots",
            description: "write Figures 4/6/7/8/9 as SVG files under ./figures/",
            run: || {
                plots::write_figures(std::path::Path::new("figures"))
                    .unwrap_or_else(|e| format!("failed to write figures: {e}\n"))
            },
        },
        Section {
            flag: "--ortho-retrieval",
            description: "S4.3 realized: defect vs retrieval quality while growing",
            run: || ortho_retrieval::report(4242),
        },
        Section {
            flag: "--table7",
            description: "Table 7: updating-method complexity",
            run: || table7::report(&[1, 2, 5, 10, 25, 50], 16),
        },
        Section {
            flag: "--retrieval",
            description: "S5.1: LSI vs keyword vector retrieval",
            run: || retrieval::report(2024, 16),
        },
        Section {
            flag: "--polysemy",
            description: "S1/S3: polysemy stress sweep (LSI vs keyword)",
            run: || polysemy::report(808, 16),
        },
        Section {
            flag: "--weighting",
            description: "S5.1: term weighting schemes over five collections",
            run: || weighting::report(12),
        },
        Section {
            flag: "--feedback",
            description: "S5.1: relevance feedback",
            run: || feedback::report(99, 14),
        },
        Section {
            flag: "--ksweep",
            description: "S5.2: choosing the number of factors",
            run: || ksweep::report(1212),
        },
        Section {
            flag: "--filtering",
            description: "S5.3: information filtering",
            run: || filtering::report(3000, 12),
        },
        Section {
            flag: "--trec",
            description: "S5.3: TREC-scale Lanczos sweep",
            run: || treclike::report(&[200, 100, 50, 20], 50),
        },
        Section {
            flag: "--crosslang",
            description: "S5.4: cross-language retrieval",
            run: || crosslang::report(515),
        },
        Section {
            flag: "--synonym",
            description: "S5.4: TOEFL synonym test",
            run: || synonym::report(9090, 16),
        },
        Section {
            flag: "--noisy",
            description: "S5.4: retrieval from noisy input",
            run: || noisy::report(321, 12),
        },
        Section {
            flag: "--spelling",
            description: "S5.4: spelling correction",
            run: || spelling::report(80, 60, 17),
        },
        Section {
            flag: "--scorecard",
            description: "run the full battery and check every acceptance band",
            run: || scorecard::report(),
        },
        Section {
            flag: "--reviewers",
            description: "S5.4: reviewer assignment",
            run: || reviewers::report(606),
        },
    ]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = {
        let before = args.len();
        args.retain(|a| a != "--json");
        args.len() != before
    };
    let all = sections();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("repro: regenerate the paper's tables and figures\n");
        println!("usage: repro [--list] [--json] [FLAGS...]   (no flags = run everything)\n");
        for s in &all {
            println!("  {:<12} {}", s.flag, s.description);
        }
        println!("  {:<12} {}", "--json", "emit one JSON run report instead of text");
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for s in &all {
            println!("{:<12} {}", s.flag, s.description);
        }
        return;
    }
    if json {
        lsi_obs::set_enabled(true);
    }
    let mut report = lsi_obs::RunReport::new("repro");
    let mut section_names: Vec<Json> = Vec::new();
    let mut ran_any = false;
    let mut seen = std::collections::HashSet::new();
    for s in &all {
        let selected = args.is_empty() || args.iter().any(|a| a == s.flag);
        if selected {
            let name = s.flag.trim_start_matches('-');
            let start = std::time::Instant::now();
            let output = {
                let _span = lsi_obs::span(name);
                (s.run)()
            };
            let fresh = seen.insert(output.clone());
            if json {
                // Aliases (--figure5, --figure8/9) rerun the same
                // section; report wall time only for the first run.
                if fresh {
                    section_names.push(Json::Str(name.to_string()));
                    report.result(
                        &format!("{name}_secs"),
                        Json::Num(start.elapsed().as_secs_f64()),
                    );
                }
            } else if fresh {
                println!("{output}");
            }
            ran_any = true;
        }
    }
    if !ran_any {
        lsi_obs::error!("no known section among {args:?}; try --help");
        std::process::exit(2);
    }
    if json {
        let mut report = report.meta("sections", Json::Arr(section_names));
        report.snapshot = lsi_obs::snapshot();
        print!("{}", report.to_json().to_string_pretty());
    }
}
