//! §5.1 term weighting: "A log transformation of the local cell entries
//! combined with a global entropy weight for terms is the most
//! effective term-weighting scheme. Averaged over five test
//! collections, log × entropy weighting was 40% more effective than raw
//! term weighting."

use std::collections::HashSet;

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_eval::metrics::RetrievalScore;
use lsi_text::{GlobalWeight, LocalWeight, ParsingRules, TermWeighting};

/// The schemes compared (a representative subset of Dumais 1991).
pub fn schemes() -> Vec<(&'static str, TermWeighting)> {
    vec![
        ("raw", TermWeighting::none()),
        ("log", TermWeighting {
            local: LocalWeight::Log,
            global: GlobalWeight::None,
        }),
        ("binary", TermWeighting {
            local: LocalWeight::Binary,
            global: GlobalWeight::None,
        }),
        ("tf.idf", TermWeighting::tf_idf()),
        ("log.idf", TermWeighting {
            local: LocalWeight::Log,
            global: GlobalWeight::Idf,
        }),
        ("gfidf", TermWeighting {
            local: LocalWeight::RawTf,
            global: GlobalWeight::GfIdf,
        }),
        ("log.entropy", TermWeighting::log_entropy()),
    ]
}

/// The five test collections (paper: "averaged over five test
/// collections"), varied in size and noise.
///
/// The collections are deliberately noisy: around half of all tokens
/// are drawn from a *small* background vocabulary, so raw term
/// frequencies are dominated by uninformative words that occur evenly
/// across documents — precisely the words the entropy weight drives to
/// zero. This is the regime in which the paper measured its 40 % gap.
pub fn five_collections() -> Vec<SyntheticCorpus> {
    let base = SyntheticOptions {
        n_topics: 6,
        docs_per_topic: 12,
        concepts_per_topic: 8,
        synonyms_per_concept: 3,
        doc_len: 50,
        background_vocab: 25,
        noise_fraction: 0.5,
        query_len: 10,
        queries_per_topic: 3,
        polysemy_fraction: 0.0,
        seed: 0,
    };
    (0..5u64)
        .map(|i| {
            SyntheticCorpus::generate(&SyntheticOptions {
                seed: 1000 + i,
                noise_fraction: 0.45 + 0.05 * i as f64,
                docs_per_topic: 10 + 2 * i as usize,
                ..base.clone()
            })
        })
        .collect()
}

/// Mean 3-pt average precision of one scheme on one collection.
pub fn score_scheme(gen: &SyntheticCorpus, weighting: TermWeighting, k: usize) -> f64 {
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting,
        svd_seed: 21,
    };
    let (model, _) = LsiModel::build(&gen.corpus, &options).expect("model builds");
    let runs: Vec<(Vec<usize>, HashSet<usize>)> = gen
        .queries
        .iter()
        .map(|q| {
            let ranking: Vec<usize> = model
                .query(&q.text)
                .expect("query runs")
                .matches
                .iter()
                .map(|m| m.doc)
                .collect();
            (ranking, q.relevant.iter().copied().collect())
        })
        .collect();
    RetrievalScore::over_queries(runs.iter().map(|(r, rel)| (r.as_slice(), rel)))
        .avg_precision_3pt
}

/// Mean score of each scheme over the five collections.
pub fn run(k: usize) -> Vec<(&'static str, f64)> {
    let collections = five_collections();
    schemes()
        .into_iter()
        .map(|(name, w)| {
            let mean = collections
                .iter()
                .map(|c| score_scheme(c, w, k))
                .sum::<f64>()
                / collections.len() as f64;
            (name, mean)
        })
        .collect()
}

/// Render the weighting experiment.
pub fn report(k: usize) -> String {
    let results = run(k);
    let raw = results.iter().find(|(n, _)| *n == "raw").expect("raw scheme").1;
    let mut out = format!(
        "S5.1: term weighting schemes, mean 3-pt avg precision over five collections (k={k})\n"
    );
    for (name, score) in &results {
        out.push_str(&format!(
            "  {name:<12} {score:.4}   ({:+.1}% vs raw)\n",
            (score - raw) / raw * 100.0
        ));
    }
    out.push_str("  (paper: log x entropy ~ +40% vs raw term weighting)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_entropy_beats_raw_weighting() {
        let results = run(12);
        let get = |n: &str| results.iter().find(|(name, _)| *name == n).unwrap().1;
        let raw = get("raw");
        let le = get("log.entropy");
        assert!(
            le > raw,
            "log.entropy ({le:.4}) should beat raw ({raw:.4})"
        );
    }

    #[test]
    fn log_entropy_is_among_the_best_schemes() {
        let results = run(12);
        let le = results
            .iter()
            .find(|(n, _)| *n == "log.entropy")
            .unwrap()
            .1;
        let best = results.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
        assert!(
            le >= best - 0.03,
            "log.entropy {le:.4} should be within 0.03 of the best {best:.4}"
        );
    }

    #[test]
    fn all_schemes_are_usable() {
        let results = run(12);
        assert_eq!(results.len(), schemes().len());
        for (name, score) in results {
            assert!(score > 0.1, "{name} scored {score}");
        }
    }
}
