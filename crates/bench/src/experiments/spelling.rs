//! §5.4 spelling-correction experiment wrapper.

use lsi_apps::spelling::{edit_distance_correct, SpellingCorrector};
use lsi_corpora::spelling::{generate_misspellings, LEXICON};

/// Accuracy of the LSI corrector and the edit-distance baseline.
pub struct SpellingResult {
    /// Cases evaluated.
    pub cases: usize,
    /// LSI n-gram corrector accuracy.
    pub lsi_accuracy: f64,
    /// Edit-distance baseline accuracy.
    pub edit_accuracy: f64,
}

/// Run on `n` generated single-edit misspellings.
pub fn run(n: usize, k: usize, seed: u64) -> SpellingResult {
    let corrector = SpellingCorrector::build(LEXICON, k).expect("corrector builds");
    let cases = generate_misspellings(n, seed);
    let lsi_accuracy = corrector.accuracy(&cases).expect("accuracy runs");
    let edit_hits = cases
        .iter()
        .filter(|c| edit_distance_correct(LEXICON, &c.written).as_deref() == Some(c.intended.as_str()))
        .count();
    SpellingResult {
        cases: n,
        lsi_accuracy,
        edit_accuracy: edit_hits as f64 / n as f64,
    }
}

/// Render the experiment.
pub fn report(n: usize, k: usize, seed: u64) -> String {
    let r = run(n, k, seed);
    format!(
        "S5.4: LSI spelling correction over an n-gram x word space ({} single-edit misspellings, k={k})\n  \
         LSI n-gram corrector : {:.1}%\n  \
         edit-distance baseline: {:.1}%\n  \
         (paper/Kukich: nearest word in LSI space is the suggested correction)\n",
        r.cases,
        r.lsi_accuracy * 100.0,
        r.edit_accuracy * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsi_corrector_is_accurate() {
        let r = run(40, 60, 17);
        assert!(r.lsi_accuracy >= 0.7, "LSI accuracy {:.2}", r.lsi_accuracy);
        assert!(r.edit_accuracy >= 0.7, "edit accuracy {:.2}", r.edit_accuracy);
    }
}
