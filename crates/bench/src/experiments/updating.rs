//! Figures 7–9 (§3.3, §4.4) and the §4.3 orthogonality experiment:
//! folding-in vs SVD-updating vs recomputing on the medical topics.

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::med::{self, MedExample};
use lsi_text::{Corpus, ParsingRules, TermWeighting};

use super::med::med_model;

/// The three updated models of §3.3/§3.4/§4.4.
pub struct UpdatedModels {
    /// Figure 7: M15/M16 folded in to the k=2 model.
    pub folded: LsiModel,
    /// Figure 8: SVD recomputed on the 18×16 matrix.
    pub recomputed: LsiModel,
    /// Figure 9: SVD-updating with `B = (A_2 | D)`.
    pub updated: LsiModel,
}

/// Build all three variants.
pub fn updated_models() -> UpdatedModels {
    let update_corpus = Corpus::from_pairs(med::UPDATE_TOPICS);

    // Folding-in (Figure 7).
    let (_, mut folded) = med_model(2);
    folded
        .fold_in_documents(&update_corpus)
        .expect("folding in M15/M16");

    // Recomputing (Figure 8): fresh SVD of the 18x16 matrix. The
    // vocabulary is unchanged (the new topics add no keywords).
    let extended = MedExample::extended_corpus();
    let options = LsiOptions {
        k: 2,
        rules: ParsingRules::paper_example(),
        weighting: TermWeighting::none(),
        svd_seed: 42,
    };
    let (recomputed, _) = LsiModel::build(&extended, &options).expect("recompute");

    // SVD-updating (Figure 9).
    let (example, mut updated) = med_model(2);
    let d = example.update_documents_matrix();
    updated
        .svd_update_documents(&d, &["M15".to_string(), "M16".to_string()])
        .expect("SVD-update with M15/M16");

    UpdatedModels {
        folded,
        recomputed,
        updated,
    }
}

/// Cosine similarity between two documents by id.
fn doc_cos(model: &LsiModel, a: &str, b: &str) -> f64 {
    let ia = model.doc_index(a).expect("doc a");
    let ib = model.doc_index(b).expect("doc b");
    model.doc_doc_similarity(ia, ib)
}

/// Mean cosine of M15 to the rats documents M13/M14 — the cluster the
/// paper says forms under recomputing/updating (Figs. 8, 9) but not
/// under folding-in (Fig. 7).
pub fn rats_cluster_score(model: &LsiModel) -> f64 {
    0.5 * (doc_cos(model, "M15", "M13") + doc_cos(model, "M15", "M14"))
}

/// Render the Figure 7/8/9 comparison.
pub fn figures789_report() -> String {
    let models = updated_models();
    let mut out = String::from("Figures 7-9: adding M15/M16 by folding-in vs recomputing vs SVD-updating\n");
    for (label, model) in [
        ("fold-in   (Fig 7)", &models.folded),
        ("recompute (Fig 8)", &models.recomputed),
        ("SVD-update(Fig 9)", &models.updated),
    ] {
        out.push_str(&format!("  {label}: sigma = ({:.4}, {:.4})\n",
            model.singular_values()[0], model.singular_values()[1]));
        for id in ["M13", "M14", "M15", "M16"] {
            let j = model.doc_index(id).expect("doc present");
            let c = model.doc_coords_scaled(j);
            out.push_str(&format!("    {id}: ({:>7.4}, {:>7.4})\n", c[0], c[1]));
        }
        out.push_str(&format!(
            "    cos(M15, {{M13,M14}}) = {:.4}\n",
            rats_cluster_score(model)
        ));
    }
    out
}

/// §4.3 orthogonality-loss experiment: fold in batches of documents and
/// track `‖V̂ᵀV̂ − I‖₂`, against the SVD-updated model's loss.
pub struct OrthoExperiment {
    /// `(number folded, doc defect)` series for folding-in.
    pub fold_series: Vec<(usize, f64)>,
    /// Defect after SVD-updating the same documents instead.
    pub update_defect: f64,
}

/// Run the orthogonality experiment by repeatedly folding the update
/// topics (with fresh ids) into the example model.
pub fn ortho_experiment(batches: usize) -> OrthoExperiment {
    let (_, mut folded) = med_model(2);
    let mut fold_series = Vec::with_capacity(batches + 1);
    fold_series.push((0usize, folded.orthogonality_loss().unwrap().doc_defect));
    for b in 0..batches {
        let corpus = Corpus::from_pairs([
            (format!("M15v{b}"), med::UPDATE_TOPICS[0].1.to_string()),
            (format!("M16v{b}"), med::UPDATE_TOPICS[1].1.to_string()),
        ]);
        folded.fold_in_documents(&corpus).expect("fold");
        fold_series.push((
            2 * (b + 1),
            folded.orthogonality_loss().unwrap().doc_defect,
        ));
    }

    let (example, mut updated) = med_model(2);
    let d = example.update_documents_matrix();
    updated
        .svd_update_documents(&d, &["M15".to_string(), "M16".to_string()])
        .expect("update");
    OrthoExperiment {
        fold_series,
        update_defect: updated.orthogonality_loss().unwrap().doc_defect,
    }
}

/// Render the orthogonality experiment.
pub fn ortho_report(batches: usize) -> String {
    let e = ortho_experiment(batches);
    let mut out = String::from(
        "S4.3: orthogonality loss ||V^T V - I||_2 under folding-in (SVD-updating stays ~0)\n",
    );
    for (n, d) in &e.fold_series {
        out.push_str(&format!("  folded {n:>3} docs: defect {d:.6}\n"));
    }
    out.push_str(&format!("  SVD-updating defect: {:.2e}\n", e.update_defect));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_in_leaves_original_documents_fixed() {
        let (_, base) = med_model(2);
        let models = updated_models();
        for j in 0..14 {
            let before = base.doc_vector(j);
            let after = models.folded.doc_vector(j);
            assert_eq!(before, after, "fold-in moved M{}", j + 1);
        }
    }

    #[test]
    fn updating_forms_the_rats_cluster_folding_does_not() {
        // The paper's core qualitative claim (§3.4/§4.4): "the
        // folding-in procedure failed to form the cluster {M13, M14,
        // M15}" which recomputing and SVD-updating produce.
        let models = updated_models();
        let fold = rats_cluster_score(&models.folded);
        let recompute = rats_cluster_score(&models.recomputed);
        let update = rats_cluster_score(&models.updated);
        assert!(
            recompute > fold,
            "recompute ({recompute:.3}) should cluster M15 with the rats docs better than fold-in ({fold:.3})"
        );
        assert!(
            update > fold,
            "SVD-update ({update:.3}) should cluster better than fold-in ({fold:.3})"
        );
        // And updating approximates recomputing (Figures 8 vs 9 look alike).
        assert!(
            (update - recompute).abs() < 0.15,
            "update {update:.3} should be close to recompute {recompute:.3}"
        );
    }

    #[test]
    fn m16_lands_near_its_constituent_terms_under_updating() {
        // §4.5: "SVD-updating appropriately moves the medical topic M16
        // to the centroid of the term vectors corresponding to
        // depressed, patients, pressure, and fast."
        let models = updated_models();
        let m = &models.updated;
        let j = m.doc_index("M16").unwrap();
        let doc = m.doc_vector(j);
        let mut centroid = vec![0.0; m.k()];
        for term in ["depressed", "patients", "pressure", "fast"] {
            let t = m.term_index(term).unwrap();
            for (c, v) in centroid.iter_mut().zip(m.term_vector(t)) {
                *c += v;
            }
        }
        let cos = lsi_linalg::vecops::cosine(&doc, &centroid);
        assert!(cos > 0.9, "M16 should align with its term centroid, cos {cos:.3}");
    }

    #[test]
    fn ortho_defect_grows_with_folding_and_stays_zero_under_updating() {
        let e = ortho_experiment(5);
        assert!(e.fold_series.first().unwrap().1 < 1e-9);
        let last = e.fold_series.last().unwrap().1;
        assert!(last > 0.1, "folding 10 docs should visibly corrupt V: {last}");
        for w in e.fold_series.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "defect must be nondecreasing");
        }
        assert!(e.update_defect < 1e-9);
    }

    #[test]
    fn updated_sigma_close_to_recomputed_sigma() {
        let models = updated_models();
        let u = models.updated.singular_values();
        let r = models.recomputed.singular_values();
        for (a, b) in u.iter().zip(r.iter()) {
            assert!(
                (a - b).abs() / b < 0.06,
                "updated sigma {a:.4} vs recomputed {b:.4}"
            );
        }
    }
}
