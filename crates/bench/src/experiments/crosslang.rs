//! §5.4 cross-language retrieval experiment wrapper.

use lsi_apps::crosslang::{monolingual_model, translate_query, CrossLanguageLsi};
use lsi_core::LsiOptions;
use lsi_corpora::bilingual::{BilingualCorpus, BilingualOptions};
use lsi_text::{ParsingRules, TermWeighting};

/// Accuracy of the multilingual space vs the translate-then-search
/// baseline.
pub struct CrossLangResult {
    /// English query -> French document top-1 topic accuracy.
    pub cross_en_to_fr: f64,
    /// French query -> English document top-1 topic accuracy.
    pub cross_fr_to_en: f64,
    /// Translate English query to French, search French-only space.
    pub translated_baseline: f64,
}

fn options() -> LsiOptions {
    LsiOptions {
        k: 12,
        rules: ParsingRules { min_df: 2, ..Default::default() },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 19,
    }
}

/// Run the experiment.
pub fn run(seed: u64) -> CrossLangResult {
    let data = BilingualCorpus::generate(&BilingualOptions { seed, ..Default::default() });
    let system = CrossLanguageLsi::build(&data, &options()).expect("system builds");

    let accuracy = |queries: &[String], want_french: bool| -> f64 {
        let mut correct = 0usize;
        for (topic, q) in queries.iter().enumerate() {
            let ranked = system.rank_monolingual(q).expect("query runs");
            let top = ranked.iter().find(|(d, _)| {
                let local = d - system.n_training;
                (local >= data.holdout_english.len()) == want_french
            });
            if let Some((d, _)) = top {
                let local = d - system.n_training;
                let idx = if want_french { local - data.holdout_english.len() } else { local };
                if data.holdout_topics[idx] == topic {
                    correct += 1;
                }
            }
        }
        correct as f64 / queries.len() as f64
    };

    let cross_en_to_fr = accuracy(&data.queries_english, true);
    let cross_fr_to_en = accuracy(&data.queries_french, false);

    let french_model = monolingual_model(&data.holdout_french, &options()).expect("builds");
    let mut correct = 0usize;
    for (topic, q) in data.queries_english.iter().enumerate() {
        let ranked = french_model.query(&translate_query(q, true)).expect("runs");
        if data.holdout_topics[ranked.matches[0].doc] == topic {
            correct += 1;
        }
    }
    let translated_baseline = correct as f64 / data.queries_english.len() as f64;

    CrossLangResult { cross_en_to_fr, cross_fr_to_en, translated_baseline }
}

/// Render the experiment.
pub fn report(seed: u64) -> String {
    let r = run(seed);
    format!(
        "S5.4: cross-language retrieval (top-1 topic accuracy)\n  \
         English query -> French docs : {:.2}\n  \
         French query  -> English docs: {:.2}\n  \
         translate-then-search baseline: {:.2}\n  \
         (paper: the multilingual space was as effective as translating the query)\n",
        r.cross_en_to_fr, r.cross_fr_to_en, r.translated_baseline
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_language_is_comparable_to_translation() {
        let r = run(515);
        assert!(r.cross_en_to_fr >= 0.8, "en->fr {}", r.cross_en_to_fr);
        assert!(r.cross_fr_to_en >= 0.8, "fr->en {}", r.cross_fr_to_en);
        assert!(
            r.cross_en_to_fr >= r.translated_baseline - 0.2,
            "cross {} vs baseline {}",
            r.cross_en_to_fr,
            r.translated_baseline
        );
    }
}
