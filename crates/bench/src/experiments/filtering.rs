//! §5.3 information filtering: "Foltz compared LSI and keyword vector
//! methods for filtering Netnews articles, and found 12%-23% advantages
//! for LSI. ... The most effective method used vectors derived from
//! known relevant documents (like relevance feedback) combined with LSI
//! matching."

use lsi_apps::filtering::InterestProfile;
use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_text::{Corpus, ParsingRules, TermWeighting};

/// Filtering accuracy of three systems on a held-out stream.
pub struct FilteringResult {
    /// LSI with text profiles (mean average precision of the stream
    /// ranking per profile).
    pub lsi_text_profile: f64,
    /// LSI with profiles built from known relevant documents.
    pub lsi_doc_profile: f64,
    /// Keyword (full-space) matching with text profiles.
    pub keyword_profile: f64,
}

/// Run the filtering comparison: train on one corpus, stream a second
/// (held-out) corpus from the same generator, measure how well each
/// profile ranks its own topic's documents.
pub fn run(seed: u64, k: usize) -> FilteringResult {
    let train = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 6,
        docs_per_topic: 12,
        synonyms_per_concept: 4,
        queries_per_topic: 1,
        seed,
        ..Default::default()
    });
    let stream = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 6,
        docs_per_topic: 8,
        synonyms_per_concept: 4,
        queries_per_topic: 1,
        seed: seed + 1,
        ..Default::default()
    });
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 61,
    };
    let (model, _) = LsiModel::build(&train.corpus, &options).expect("model builds");
    let vsm = lsi_eval::VectorSpaceModel::build(
        &train.corpus,
        model.vocabulary().clone(),
        TermWeighting::log_entropy(),
    );

    // Profiles per topic: the topic's query text, and the topic's first
    // three training documents.
    let n_topics = 6usize;
    let mut text_profiles = Vec::new();
    let mut doc_profiles = Vec::new();
    for t in 0..n_topics {
        let q = train.queries.iter().find(|q| q.topic == t).expect("query per topic");
        text_profiles
            .push(InterestProfile::from_text(&model, format!("t{t}"), &q.text, 0.5).unwrap());
        let docs: Vec<usize> = (0..train.n_docs())
            .filter(|&d| train.doc_topics[d] == t)
            .take(3)
            .collect();
        doc_profiles.push(
            InterestProfile::from_relevant_docs(&model, format!("t{t}"), &docs, 0.5).unwrap(),
        );
    }

    // Stream: project each held-out doc once; per profile, rank the
    // stream and compute average precision of its topic.
    let stream_vectors: Vec<Vec<f64>> = stream
        .corpus
        .docs
        .iter()
        .map(|d| model.project_text(&d.text).expect("projects"))
        .collect();

    let ap_for = |scores: Vec<(usize, f64)>, topic: usize| -> f64 {
        let mut ranked = scores;
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let ranking: Vec<usize> = ranked.into_iter().map(|(d, _)| d).collect();
        let relevant: std::collections::HashSet<usize> = (0..stream.n_docs())
            .filter(|&d| stream.doc_topics[d] == topic)
            .collect();
        lsi_eval::metrics::average_precision_3pt(&ranking, &relevant)
    };

    let mut lsi_text_sum = 0.0;
    let mut lsi_doc_sum = 0.0;
    let mut vsm_sum = 0.0;
    for t in 0..n_topics {
        let scores_text: Vec<(usize, f64)> = stream_vectors
            .iter()
            .enumerate()
            .map(|(d, v)| (d, text_profiles[t].score(v)))
            .collect();
        lsi_text_sum += ap_for(scores_text, t);
        let scores_doc: Vec<(usize, f64)> = stream_vectors
            .iter()
            .enumerate()
            .map(|(d, v)| (d, doc_profiles[t].score(v)))
            .collect();
        lsi_doc_sum += ap_for(scores_doc, t);
        // Keyword baseline: cosine of the stream doc's weighted term
        // vector with the profile's query text, in the full term space.
        let q = train.queries.iter().find(|q| q.topic == t).unwrap();
        let stream_corpus = Corpus {
            docs: stream.corpus.docs.clone(),
        };
        let stream_vsm = lsi_eval::VectorSpaceModel::build(
            &stream_corpus,
            vsm.vocabulary().clone(),
            TermWeighting::log_entropy(),
        );
        let scores_kw: Vec<(usize, f64)> = stream_vsm.rank(&q.text);
        vsm_sum += ap_for(scores_kw, t);
    }

    FilteringResult {
        lsi_text_profile: lsi_text_sum / n_topics as f64,
        lsi_doc_profile: lsi_doc_sum / n_topics as f64,
        keyword_profile: vsm_sum / n_topics as f64,
    }
}

/// Render the §5.3 filtering experiment.
pub fn report(seed: u64, k: usize) -> String {
    let r = run(seed, k);
    let adv = (r.lsi_text_profile - r.keyword_profile) / r.keyword_profile * 100.0;
    format!(
        "S5.3: information filtering (mean 3-pt avg precision over standing profiles)\n  \
         LSI, text profiles          : {:.4}\n  \
         LSI, relevant-doc profiles  : {:.4}   (paper: the most effective method)\n  \
         keyword matching            : {:.4}\n  \
         LSI advantage vs keyword    : {adv:+.1}%   (paper: 12-23%)\n",
        r.lsi_text_profile, r.lsi_doc_profile, r.keyword_profile
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsi_filtering_beats_keyword_filtering() {
        let r = run(3000, 12);
        assert!(
            r.lsi_text_profile > r.keyword_profile,
            "LSI {:.4} should beat keyword {:.4}",
            r.lsi_text_profile,
            r.keyword_profile
        );
    }

    #[test]
    fn doc_profiles_are_at_least_as_good_as_text_profiles() {
        let r = run(3000, 12);
        assert!(
            r.lsi_doc_profile >= r.lsi_text_profile - 0.05,
            "doc profiles {:.4} vs text {:.4}",
            r.lsi_doc_profile,
            r.lsi_text_profile
        );
    }

    #[test]
    fn all_scores_meaningful() {
        let r = run(42, 12);
        for s in [r.lsi_text_profile, r.lsi_doc_profile, r.keyword_profile] {
            assert!(s > 0.15 && s <= 1.0, "score {s}");
        }
    }
}
