//! §4.3's proposed research, realized: "Significant insights in the
//! future could be gained by monitoring the loss of orthogonality
//! associated with folding-in and correlating it to the number of
//! relevant documents returned within particular cosine thresholds."
//!
//! Protocol: build an LSI model on half of a synthetic collection, then
//! grow it to full size in batches — once by folding-in, once by
//! SVD-updating. After each batch, record the document-factor
//! orthogonality defect and the retrieval quality (mean 3-pt average
//! precision over queries whose relevant documents span both halves).

use std::collections::HashSet;

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_eval::metrics::average_precision_3pt;
use lsi_text::{Corpus, ParsingRules, TermWeighting};

/// One step of the growth curve.
#[derive(Debug, Clone, Copy)]
pub struct GrowthPoint {
    /// Documents added so far.
    pub added: usize,
    /// `‖V̂ᵀV̂ − I‖₂`.
    pub doc_defect: f64,
    /// Mean 3-pt average precision at this point.
    pub avg_precision: f64,
}

/// The two growth curves.
pub struct OrthoRetrieval {
    /// Folding-in curve.
    pub fold: Vec<GrowthPoint>,
    /// SVD-updating curve.
    pub update: Vec<GrowthPoint>,
    /// Pearson correlation between defect and (negated) precision along
    /// the folding curve — the quantity the paper asked about.
    pub fold_correlation: f64,
}

fn mean_ap(model: &LsiModel, gen: &SyntheticCorpus) -> f64 {
    // Relevance is defined over the documents currently in the model:
    // map generator doc ids to model rows where present.
    let mut total = 0.0;
    let mut n = 0usize;
    for q in &gen.queries {
        let relevant: HashSet<usize> = q
            .relevant
            .iter()
            .filter_map(|&d| model.doc_index(&gen.corpus.docs[d].id))
            .collect();
        if relevant.is_empty() {
            continue;
        }
        let ranking: Vec<usize> = model
            .query(&q.text)
            .expect("query runs")
            .matches
            .iter()
            .map(|m| m.doc)
            .collect();
        total += average_precision_3pt(&ranking, &relevant);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Run the experiment: grow from `n/2` to `n` documents in `batches`.
pub fn run(seed: u64, k: usize, batches: usize) -> OrthoRetrieval {
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 6,
        docs_per_topic: 16,
        synonyms_per_concept: 4,
        queries_per_topic: 3,
        seed,
        ..Default::default()
    });
    let n = gen.n_docs();
    // The base model sees only the first half of the *topics*; the
    // growth phase introduces entirely new subject matter. This is the
    // regime where folding-in must fail (it can only project new
    // documents onto the old topics' axes) while SVD-updating absorbs
    // the new structure — the same contrast as the paper's M15/M16
    // example, at scale.
    let base_docs: Vec<usize> = (0..n).filter(|&d| gen.doc_topics[d] < 3).collect();
    let grow_docs: Vec<usize> = (0..n).filter(|&d| gen.doc_topics[d] >= 3).collect();

    let base_corpus = Corpus {
        docs: base_docs.iter().map(|&d| gen.corpus.docs[d].clone()).collect(),
    };
    // The vocabulary covers the full collection (the rows exist from
    // the start; only the base *documents* are decomposed), and raw
    // counts are used: global weights computed on the base matrix would
    // zero out words that have not occurred yet, blinding both methods
    // equally and hiding the contrast under study.
    let rules = ParsingRules {
        min_df: 2,
        ..Default::default()
    };
    let vocab = lsi_text::Vocabulary::build(&gen.corpus, &rules);
    let base_counts = vocab.count_matrix(&base_corpus);
    let base_ids: Vec<String> = base_corpus.docs.iter().map(|d| d.id.clone()).collect();
    let options = LsiOptions {
        k,
        rules,
        weighting: TermWeighting::none(),
        svd_seed: 71,
    };
    let (base, _) =
        LsiModel::from_counts(vocab, base_counts, base_ids, &options).expect("base model");

    let batch_size = grow_docs.len().div_ceil(batches);
    let run_growth = |use_update: bool| -> Vec<GrowthPoint> {
        let mut model = base.clone();
        let mut points = vec![GrowthPoint {
            added: 0,
            doc_defect: model.orthogonality_loss().unwrap().doc_defect,
            avg_precision: mean_ap(&model, &gen),
        }];
        for chunk in grow_docs.chunks(batch_size) {
            let corpus = Corpus {
                docs: chunk.iter().map(|&d| gen.corpus.docs[d].clone()).collect(),
            };
            if use_update {
                let d = model.vocabulary().count_matrix(&corpus);
                let ids: Vec<String> = corpus.docs.iter().map(|d| d.id.clone()).collect();
                model.svd_update_documents(&d, &ids).expect("update");
            } else {
                model.fold_in_documents(&corpus).expect("fold");
            }
            points.push(GrowthPoint {
                added: points.last().unwrap().added + chunk.len(),
                doc_defect: model.orthogonality_loss().unwrap().doc_defect,
                avg_precision: mean_ap(&model, &gen),
            });
        }
        points
    };

    let fold = run_growth(false);
    let update = run_growth(true);
    let defects: Vec<f64> = fold.iter().map(|p| p.doc_defect).collect();
    let precisions: Vec<f64> = fold.iter().map(|p| p.avg_precision).collect();
    OrthoRetrieval {
        fold_correlation: pearson(&defects, &precisions),
        fold,
        update,
    }
}

/// Render the experiment.
pub fn report(seed: u64) -> String {
    let r = run(seed, 12, 8);
    let mut out = String::from(
        "S4.3 (realized): orthogonality loss vs retrieval quality while growing the collection\n",
    );
    out.push_str("  added  fold: defect / 3-pt AP      update: defect / 3-pt AP\n");
    for (f, u) in r.fold.iter().zip(r.update.iter()) {
        out.push_str(&format!(
            "  {:>4}   {:.4} / {:.4}            {:.1e} / {:.4}\n",
            f.added, f.doc_defect, f.avg_precision, u.doc_defect, u.avg_precision
        ));
    }
    out.push_str(&format!(
        "  Pearson(defect, precision) along the folding curve: {:.3}\n  \
         (the paper conjectured this negative correlation; SVD-updating holds defect at ~0)\n",
        r.fold_correlation
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_defect_grows_and_correlates_negatively_with_precision() {
        let r = run(4242, 12, 6);
        let first = r.fold.first().unwrap();
        let last = r.fold.last().unwrap();
        assert!(first.doc_defect < 1e-9);
        assert!(last.doc_defect > 0.01, "defect {}", last.doc_defect);
        assert!(
            r.fold_correlation < -0.5,
            "defect should strongly anticorrelate with precision, r = {}",
            r.fold_correlation
        );
    }

    #[test]
    fn updating_keeps_defect_flat_and_precision_much_better() {
        let r = run(4242, 12, 6);
        for p in &r.update {
            assert!(p.doc_defect < 1e-8, "update defect {}", p.doc_defect);
        }
        let fold_final = r.fold.last().unwrap().avg_precision;
        let update_final = r.update.last().unwrap().avg_precision;
        assert!(
            update_final > fold_final + 0.2,
            "updating ({update_final:.4}) should retrieve far better than folding \
             ({fold_final:.4}) when growth brings new topics"
        );
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }
}
