//! The §3 worked example: Table 3, Figures 4–6, Table 4.

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::med::{self, MedExample};
use lsi_eval::LexicalMatcher;
use lsi_text::{Corpus, ParsingRules, TermWeighting};

/// Build the paper's example model at a given `k` ("For simplicity,
/// term weighting is not used in this example matrix").
pub fn med_model(k: usize) -> (MedExample, LsiModel) {
    let example = MedExample::build();
    let options = LsiOptions {
        k,
        rules: ParsingRules::paper_example(),
        weighting: TermWeighting::none(),
        svd_seed: 42,
    };
    let corpus = Corpus::from_pairs(med::TOPICS);
    let (model, _) = LsiModel::build(&corpus, &options).expect("example model builds");
    (example, model)
}

/// Table 3: the 18×14 term-document matrix.
pub fn table3() -> String {
    let example = MedExample::build();
    let mut out = String::from(
        "Table 3: term-document matrix of the medical topics (rows alphabetical)\n",
    );
    out.push_str(&format!("{:<15}", "Terms"));
    for j in 1..=14 {
        out.push_str(&format!("M{j:<3}"));
    }
    out.push('\n');
    for (i, term) in example.vocab.terms().iter().enumerate() {
        out.push_str(&format!("{term:<15}"));
        for j in 0..14 {
            out.push_str(&format!("{:<4}", example.matrix.get(i, j) as i64));
        }
        out.push('\n');
    }
    out
}

/// Figure 4/5 data: the k=2 coordinates of terms, documents, and the
/// example query, plus the two leading singular values.
pub struct Figure45 {
    /// Leading singular values (ours).
    pub sigma: [f64; 2],
    /// The paper's published singular values.
    pub paper_sigma: [f64; 2],
    /// Term coordinates, scaled by Σ (plot convention), term order as
    /// Table 3.
    pub term_coords: Vec<(String, [f64; 2])>,
    /// Document coordinates, scaled by Σ.
    pub doc_coords: Vec<(String, [f64; 2])>,
    /// Our U₂ rows (unscaled), for comparison with the published U₂.
    pub u2: Vec<[f64; 2]>,
    /// Projected query coordinates `q̂` (Eq. 6).
    pub query_coords: [f64; 2],
    /// The paper's published query coordinates.
    pub paper_query_coords: [f64; 2],
}

/// Compute the Figure 4/5 quantities.
pub fn figure45() -> Figure45 {
    let (example, model) = med_model(2);
    let term_coords = (0..model.n_terms())
        .map(|i| {
            let c = model.term_coords_scaled(i);
            (example.vocab.term(i).to_string(), [c[0], c[1]])
        })
        .collect();
    let doc_coords = (0..model.n_docs())
        .map(|j| {
            let c = model.doc_coords_scaled(j);
            (model.doc_ids()[j].to_string(), [c[0], c[1]])
        })
        .collect();
    let u2 = (0..model.n_terms())
        .map(|i| {
            let r = model.term_vector(i);
            [r[0], r[1]]
        })
        .collect();
    let q = model.project_text(med::QUERY).expect("query projects");
    Figure45 {
        sigma: [model.singular_values()[0], model.singular_values()[1]],
        paper_sigma: med::PAPER_SIGMA,
        term_coords,
        doc_coords,
        u2,
        query_coords: [q[0], q[1]],
        paper_query_coords: med::PAPER_QUERY_COORDS,
    }
}

/// Render Figures 4 and 5 as text.
pub fn figure45_report() -> String {
    let f = figure45();
    let mut out = String::from("Figure 4/5: two-dimensional LSI space of the medical topics\n");
    out.push_str(&format!(
        "  singular values: ({:.4}, {:.4})   published: ({:.4}, {:.4})\n",
        f.sigma[0], f.sigma[1], f.paper_sigma[0], f.paper_sigma[1]
    ));
    out.push_str("  terms (U2, unscaled)          ours            published\n");
    for (i, (name, _)) in f.term_coords.iter().enumerate() {
        out.push_str(&format!(
            "    {:<14} ({:>7.4}, {:>7.4})   ({:>7.4}, {:>7.4})\n",
            name,
            f.u2[i][0],
            f.u2[i][1],
            med::PAPER_U2[i][0],
            med::PAPER_U2[i][1]
        ));
    }
    out.push_str("  documents (V2 . Sigma, plot coordinates):\n");
    for (name, c) in &f.doc_coords {
        out.push_str(&format!("    {:<4} ({:>7.4}, {:>7.4})\n", name, c[0], c[1]));
    }
    out.push_str(&format!(
        "  query '{}' -> q^ = ({:.4}, {:.4})   published: ({:.4}, {:.4})\n",
        med::QUERY, f.query_coords[0], f.query_coords[1],
        f.paper_query_coords[0], f.paper_query_coords[1]
    ));
    out
}

/// Figure 6 / §3.2 data: threshold retrieval and the lexical baseline.
pub struct Figure6 {
    /// Documents with cosine ≥ 0.85 (the shaded region of Figure 6).
    pub above_085: Vec<String>,
    /// Documents with cosine ≥ 0.75.
    pub above_075: Vec<String>,
    /// What lexical matching returns (§3.2).
    pub lexical: Vec<String>,
    /// Rank of M9 in the LSI result (0 = top).
    pub m9_rank: usize,
}

/// Compute Figure 6 / the §3.2 comparison.
pub fn figure6() -> Figure6 {
    let (example, model) = med_model(2);
    let ranked = model.query(med::QUERY).expect("query runs");
    let above = |t: f64| -> Vec<String> {
        ranked
            .at_threshold(t)
            .matches
            .iter()
            .map(|m| m.id.to_string())
            .collect()
    };
    let lex = LexicalMatcher::build(&example.corpus, example.vocab.clone());
    let mut lexical: Vec<String> = lex
        .matching_docs(med::QUERY)
        .into_iter()
        .map(|d| example.corpus.docs[d].id.clone())
        .collect();
    lexical.sort_by_key(|id| id[1..].parse::<usize>().unwrap_or(0));
    Figure6 {
        above_085: above(0.85),
        above_075: above(0.75),
        lexical,
        m9_rank: ranked.rank_of("M9").expect("M9 is ranked"),
    }
}

/// Render Figure 6 as text.
pub fn figure6_report() -> String {
    let f = figure6();
    let mut out = String::from("Figure 6 / §3.2: query 'age of children with blood abnormalities'\n");
    out.push_str(&format!(
        "  LSI, cosine >= 0.85: {:?}   (paper: [M8, M9, M12])\n",
        f.above_085
    ));
    out.push_str(&format!(
        "  LSI, cosine >= 0.75: {:?}   (paper adds M7, M11)\n",
        f.above_075
    ));
    out.push_str(&format!(
        "  lexical match:       {:?}   (paper: [M1, M8, M10, M11, M12])\n",
        f.lexical
    ));
    out.push_str(&format!(
        "  M9 (the relevant doc lexical matching misses) ranks #{} for LSI\n",
        f.m9_rank + 1
    ));
    out
}

/// One Table 4 column: ranked `(doc id, cosine)` above threshold 0.40.
pub fn table4_column(k: usize) -> Vec<(String, f64)> {
    let (_, model) = med_model(k);
    let ranked = model.query(med::QUERY).expect("query runs");
    ranked
        .at_threshold(0.40)
        .matches
        .iter()
        .map(|m| (m.id.to_string(), m.cosine))
        .collect()
}

/// Render Table 4 (ours vs published).
pub fn table4_report() -> String {
    let mut out = String::from("Table 4: returned documents (cosine >= 0.40) by number of factors\n");
    let paper: [&[(&str, f64)]; 3] = [
        &med::PAPER_TABLE4_K2,
        &med::PAPER_TABLE4_K4,
        &med::PAPER_TABLE4_K8,
    ];
    for (ki, &k) in [2usize, 4, 8].iter().enumerate() {
        let ours = table4_column(k);
        let ours_s: Vec<String> = ours.iter().map(|(d, c)| format!("{d} {c:.2}")).collect();
        let paper_s: Vec<String> = paper[ki].iter().map(|(d, c)| format!("{d} {c:.2}")).collect();
        out.push_str(&format!("  k={k} ours : {}\n", ours_s.join(", ")));
        out.push_str(&format!("  k={k} paper: {}\n", paper_s.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_report_contains_all_terms() {
        let t = table3();
        for term in med::TERMS {
            assert!(t.contains(term), "missing {term}");
        }
    }

    #[test]
    fn figure5_magnitudes_track_published_values() {
        let f = figure45();
        // Sign conventions differ per column; compare magnitudes. The
        // source tables carry OCR damage, so the tolerance is loose
        // (see DESIGN.md / EXPERIMENTS.md).
        for i in 0..18 {
            for c in 0..2 {
                let got = f.u2[i][c].abs();
                let want = med::PAPER_U2[i][c].abs();
                assert!(
                    (got - want).abs() < 0.09,
                    "U2[{i}][{c}]: {got} vs published {want}"
                );
            }
        }
        assert!((f.query_coords[0].abs() - f.paper_query_coords[0].abs()).abs() < 0.03);
        assert!((f.query_coords[1].abs() - f.paper_query_coords[1].abs()).abs() < 0.03);
    }

    #[test]
    fn figure6_headline_results_hold() {
        let f = figure6();
        // The paper's central №1 claim: LSI retrieves M9 top-ranked.
        assert_eq!(f.m9_rank, 0, "M9 must be the top LSI match");
        // Lexical matching returns exactly the paper's set and misses M9.
        assert_eq!(f.lexical, vec!["M1", "M8", "M10", "M11", "M12"]);
        assert!(!f.lexical.contains(&"M9".to_string()));
        // The high-threshold LSI set is led by the paper's trio.
        assert!(f.above_085.contains(&"M9".to_string()));
        for d in &f.above_085 {
            assert!(
                ["M8", "M9", "M11", "M12"].contains(&d.as_str()),
                "unexpected doc {d} above 0.85"
            );
        }
        // At 0.75 the paper's additions appear.
        for d in ["M9", "M12", "M11", "M8"] {
            assert!(f.above_075.contains(&d.to_string()), "{d} missing at 0.75");
        }
    }

    #[test]
    fn table4_k2_shape_matches_paper() {
        let ours = table4_column(2);
        // Top document is M9 with cosine ~1.00 (paper: M9 1.00).
        assert_eq!(ours[0].0, "M9");
        assert!(ours[0].1 > 0.99);
        // The paper's k=2 return set is reproduced up to small cosine
        // shifts near the 0.40 threshold.
        let ours_ids: Vec<&str> = ours.iter().map(|(d, _)| d.as_str()).collect();
        for (d, _) in med::PAPER_TABLE4_K2 {
            assert!(ours_ids.contains(&d), "paper doc {d} missing from k=2 result");
        }
    }

    #[test]
    fn table4_higher_k_returns_fewer_docs() {
        // The paper's Table 4 shape: 11 docs at k=2, 5 at k=4, 4 at k=8
        // — cosines fall as factors sharpen the space.
        let k2 = table4_column(2).len();
        let k4 = table4_column(4).len();
        let k8 = table4_column(8).len();
        assert!(k2 > k4, "k=2 ({k2}) should return more than k=4 ({k4})");
        assert!(k4 >= k8, "k=4 ({k4}) should return at least as many as k=8 ({k8})");
    }

    #[test]
    fn table4_k4_and_k8_return_sets_match_paper_core() {
        // Exact per-document cosines at k=4/k=8 are sensitive to the
        // OCR-damaged source matrix; the stable reproduction targets
        // are the return *sets*: the paper's k=8 column is
        // {M8, M12, M10, M11} and ours reproduces {M8, M10, M12} with
        // M11 sitting at the paper's own 0.40 borderline.
        let k8: Vec<String> = table4_column(8).into_iter().map(|(d, _)| d).collect();
        for d in ["M8", "M10", "M12"] {
            assert!(k8.contains(&d.to_string()), "{d} missing at k=8");
        }
        for d in &k8 {
            assert!(
                ["M8", "M10", "M11", "M12"].contains(&d.as_str()),
                "unexpected {d} at k=8"
            );
        }
        // k=4: M8 in the top two; M2 and M10 in the set (paper: M8,
        // M9, M2, M10, M12).
        let k4 = table4_column(4);
        assert!(
            k4.iter().take(2).any(|(d, _)| d == "M8"),
            "M8 should lead the k=4 column: {k4:?}"
        );
        let k4_ids: Vec<&str> = k4.iter().map(|(d, _)| d.as_str()).collect();
        assert!(k4_ids.contains(&"M2"));
        assert!(k4_ids.contains(&"M10"));
    }
}
