//! §5.1: LSI vs the standard keyword vector method.
//!
//! "For several information science test collections, the average
//! precision using LSI ranged from comparable to 30% better than that
//! obtained using standard keyword vector methods. ... The LSI method
//! performs best relative to standard vector methods when the queries
//! and relevant documents do not share many words, and at high levels
//! of recall."

use std::collections::HashSet;

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_eval::metrics::{interpolated_precision_at, RetrievalScore};
use lsi_eval::{PrecisionRecallCurve, VectorSpaceModel};
use lsi_text::{ParsingRules, TermWeighting};

/// Result of the LSI-vs-keyword comparison on one corpus.
pub struct RetrievalComparison {
    /// LSI scores.
    pub lsi: RetrievalScore,
    /// Keyword vector (SMART-style) scores.
    pub keyword: RetrievalScore,
    /// Interpolated precision at high recall (0.75) for both systems.
    pub lsi_high_recall: f64,
    /// Keyword precision at recall 0.75.
    pub keyword_high_recall: f64,
}

impl RetrievalComparison {
    /// LSI's fractional advantage in 3-pt average precision.
    pub fn lsi_advantage(&self) -> f64 {
        self.lsi.improvement_over(&self.keyword)
    }
}

/// Standard experiment configuration: a synonym-rich corpus where
/// queries and relevant documents often use different surface words.
pub fn default_corpus(seed: u64) -> SyntheticCorpus {
    SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 8,
        docs_per_topic: 14,
        concepts_per_topic: 10,
        synonyms_per_concept: 4,
        doc_len: 40,
        background_vocab: 80,
        noise_fraction: 0.25,
        query_len: 8,
        queries_per_topic: 4,
        polysemy_fraction: 0.0,
        seed,
    })
}

/// Run the comparison at factor count `k`.
pub fn compare(gen: &SyntheticCorpus, k: usize) -> RetrievalComparison {
    let rules = ParsingRules {
        min_df: 2,
        ..Default::default()
    };
    let weighting = TermWeighting::log_entropy();
    let options = LsiOptions {
        k,
        rules: rules.clone(),
        weighting,
        svd_seed: 8,
    };
    let (lsi_model, _) = LsiModel::build(&gen.corpus, &options).expect("LSI builds");
    let vsm = VectorSpaceModel::build(
        &gen.corpus,
        lsi_model.vocabulary().clone(),
        weighting,
    );

    let mut lsi_runs: Vec<(Vec<usize>, HashSet<usize>)> = Vec::new();
    let mut vsm_runs: Vec<(Vec<usize>, HashSet<usize>)> = Vec::new();
    for q in &gen.queries {
        let relevant: HashSet<usize> = q.relevant.iter().copied().collect();
        let lsi_ranking: Vec<usize> = lsi_model
            .query(&q.text)
            .expect("query runs")
            .matches
            .iter()
            .map(|m| m.doc)
            .collect();
        let vsm_ranking = vsm.ranking(&q.text);
        lsi_runs.push((lsi_ranking, relevant.clone()));
        vsm_runs.push((vsm_ranking, relevant));
    }

    let lsi = RetrievalScore::over_queries(
        lsi_runs.iter().map(|(r, rel)| (r.as_slice(), rel)),
    );
    let keyword = RetrievalScore::over_queries(
        vsm_runs.iter().map(|(r, rel)| (r.as_slice(), rel)),
    );
    let mean_at = |runs: &[(Vec<usize>, HashSet<usize>)], level: f64| -> f64 {
        runs.iter()
            .map(|(r, rel)| interpolated_precision_at(r, rel, level))
            .sum::<f64>()
            / runs.len() as f64
    };
    RetrievalComparison {
        lsi,
        keyword,
        lsi_high_recall: mean_at(&lsi_runs, 0.75),
        keyword_high_recall: mean_at(&vsm_runs, 0.75),
    }
}

/// Mean 11-point precision-recall curves for both systems.
pub fn curves(gen: &SyntheticCorpus, k: usize) -> (PrecisionRecallCurve, PrecisionRecallCurve) {
    let rules = ParsingRules {
        min_df: 2,
        ..Default::default()
    };
    let weighting = TermWeighting::log_entropy();
    let options = LsiOptions {
        k,
        rules,
        weighting,
        svd_seed: 8,
    };
    let (lsi_model, _) = LsiModel::build(&gen.corpus, &options).expect("LSI builds");
    let vsm = VectorSpaceModel::build(&gen.corpus, lsi_model.vocabulary().clone(), weighting);
    let mut lsi_runs: Vec<(Vec<usize>, HashSet<usize>)> = Vec::new();
    let mut vsm_runs: Vec<(Vec<usize>, HashSet<usize>)> = Vec::new();
    for q in &gen.queries {
        let relevant: HashSet<usize> = q.relevant.iter().copied().collect();
        let lsi_ranking: Vec<usize> = lsi_model
            .query(&q.text)
            .expect("query runs")
            .matches
            .iter()
            .map(|m| m.doc)
            .collect();
        vsm_runs.push((vsm.ranking(&q.text), relevant.clone()));
        lsi_runs.push((lsi_ranking, relevant));
    }
    (
        PrecisionRecallCurve::mean_over(lsi_runs.iter().map(|(r, rel)| (r.as_slice(), rel))),
        PrecisionRecallCurve::mean_over(vsm_runs.iter().map(|(r, rel)| (r.as_slice(), rel))),
    )
}

/// Render the §5.1a experiment.
pub fn report(seed: u64, k: usize) -> String {
    let gen = default_corpus(seed);
    let c = compare(&gen, k);
    let (lsi_curve, vsm_curve) = curves(&gen, k);
    let mut out = format!(
        "S5.1: LSI vs keyword vector retrieval (synthetic synonym-structured corpus, k={k})\n  \
         LSI     3-pt avg precision: {:.4}\n  \
         keyword 3-pt avg precision: {:.4}\n  \
         LSI advantage: {:+.1}%   (paper: comparable to +30%)\n  \
         precision at recall 0.75: LSI {:.4} vs keyword {:.4}   (paper: LSI best at high recall)\n",
        c.lsi.avg_precision_3pt,
        c.keyword.avg_precision_3pt,
        c.lsi_advantage() * 100.0,
        c.lsi_high_recall,
        c.keyword_high_recall
    );
    out.push_str("  mean 11-pt precision-recall, LSI:\n");
    out.push_str(&lsi_curve.render());
    out.push_str("  mean 11-pt precision-recall, keyword vector:\n");
    out.push_str(&vsm_curve.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsi_beats_keyword_on_synonym_structured_corpus() {
        let gen = default_corpus(2024);
        let c = compare(&gen, 16);
        assert!(
            c.lsi_advantage() > 0.05,
            "LSI should beat keyword matching by a clear margin, got {:+.1}%",
            c.lsi_advantage() * 100.0
        );
        // The paper's band: comparable to 30 % better. Allow a generous
        // synthetic-data band but require the *shape*.
        assert!(
            c.lsi_advantage() < 2.0,
            "advantage {:.2} suspiciously large — check the baseline",
            c.lsi_advantage()
        );
    }

    #[test]
    fn lsi_advantage_is_largest_at_high_recall() {
        let gen = default_corpus(55);
        let c = compare(&gen, 16);
        let high_gap = c.lsi_high_recall - c.keyword_high_recall;
        assert!(
            high_gap > 0.0,
            "LSI should lead at recall 0.75: {} vs {}",
            c.lsi_high_recall,
            c.keyword_high_recall
        );
    }

    #[test]
    fn both_systems_beat_random_ordering() {
        let gen = default_corpus(7);
        let c = compare(&gen, 16);
        // 14 relevant of 112 docs -> random precision ~0.125.
        assert!(c.lsi.avg_precision_3pt > 0.4);
        assert!(c.keyword.avg_precision_3pt > 0.2);
    }
}
