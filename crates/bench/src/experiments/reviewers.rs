//! §5.4 reviewer-assignment experiment wrapper.

use lsi_apps::reviewers::ReviewerMatcher;
use lsi_core::LsiOptions;
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_text::{ParsingRules, TermWeighting};

/// Assignment quality summary.
pub struct ReviewerResult {
    /// Papers assigned.
    pub papers: usize,
    /// Reviews per paper (p).
    pub p: usize,
    /// Max papers per reviewer (r).
    pub r: usize,
    /// Fraction of assignments whose reviewer shares the paper's topic.
    pub topical_fraction: f64,
    /// Maximum reviewer load observed.
    pub max_load: usize,
}

/// Run the assignment experiment.
pub fn run(seed: u64, p: usize, r: usize) -> ReviewerResult {
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 5,
        docs_per_topic: 8,
        queries_per_topic: 3,
        seed,
        ..Default::default()
    });
    let options = LsiOptions {
        k: 10,
        rules: ParsingRules { min_df: 2, ..Default::default() },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 47,
    };
    let matcher = ReviewerMatcher::build(&gen.corpus, &options).expect("matcher builds");
    let papers: Vec<String> = gen.queries.iter().map(|q| q.text.clone()).collect();
    let assignment = matcher.assign(&papers, p, r).expect("assignment feasible");

    let mut topical = 0usize;
    let mut total = 0usize;
    for (pi, reviewers) in assignment.reviewers_of.iter().enumerate() {
        for &ri in reviewers {
            total += 1;
            if gen.doc_topics[ri] == gen.queries[pi].topic {
                topical += 1;
            }
        }
    }
    ReviewerResult {
        papers: papers.len(),
        p,
        r,
        topical_fraction: topical as f64 / total as f64,
        max_load: assignment.load.iter().copied().max().unwrap_or(0),
    }
}

/// Render the experiment.
pub fn report(seed: u64) -> String {
    let r = run(seed, 3, 3);
    format!(
        "S5.4: reviewer assignment ({} papers, p={} reviews each, <= {} papers per reviewer)\n  \
         topical assignments: {:.1}%\n  \
         max reviewer load  : {}\n  \
         (paper: automatic LSI assignments were as good as human experts')\n",
        r.papers, r.p, r.r,
        r.topical_fraction * 100.0,
        r.max_load
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignments_are_mostly_topical_and_feasible() {
        let r = run(606, 3, 3);
        assert!(r.topical_fraction >= 0.6, "topical {:.2}", r.topical_fraction);
        assert!(r.max_load <= 3);
    }
}
