//! The experiments, keyed to the paper's tables and figures.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`med`] | Table 3, Figures 4–6, Table 4 (the §3 worked example) |
//! | [`updating`] | Table 5, Figures 7–9 (§3.3/§4.4), §4.3 orthogonality |
//! | [`table7`] | Table 7 flop counts |
//! | [`retrieval`] | §5.1 LSI vs keyword-vector comparison |
//! | [`weighting`] | §5.1 log×entropy vs raw (five collections) |
//! | [`feedback`] | §5.1 relevance feedback (+33 % / +67 %) |
//! | [`ksweep`] | §5.2 choosing the number of factors |
//! | [`filtering`] | §5.3 information filtering (12–23 %) |
//! | [`treclike`] | §5.3 TREC-scale Lanczos cost |
//! | [`crosslang`] | §5.4 cross-language retrieval |
//! | [`synonym`] | §5.4 TOEFL synonym test (64 % vs 33 %) |
//! | [`noisy`] | §5.4 noisy input (8.8 % WER) |
//! | [`spelling`] | §5.4 spelling correction |
//! | [`reviewers`] | §5.4 reviewer assignment |

pub mod crosslang;
pub mod feedback;
pub mod filtering;
pub mod ksweep;
pub mod med;
pub mod noisy;
pub mod ortho_retrieval;
pub mod plots;
pub mod polysemy;
pub mod retrieval;
pub mod reviewers;
pub mod scorecard;
pub mod spelling;
pub mod synonym;
pub mod table7;
pub mod treclike;
pub mod updating;
pub mod weighting;
