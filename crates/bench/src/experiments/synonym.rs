//! §5.4 TOEFL synonym test experiment wrapper.

use lsi_apps::synonym::{run_lsi, SynonymScore, WordOverlapBaseline};
use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::synonyms::{SynonymTest, TOEFL_ITEMS};
use lsi_corpora::SyntheticOptions;
use lsi_text::{ParsingRules, TermWeighting};

/// LSI vs word-overlap on the generated 80-item test.
pub struct SynonymResult {
    /// LSI score.
    pub lsi: SynonymScore,
    /// Word-overlap baseline score.
    pub overlap: SynonymScore,
}

/// Run the test.
pub fn run(seed: u64, k: usize) -> SynonymResult {
    let options = SyntheticOptions {
        n_topics: 8,
        docs_per_topic: 24,
        concepts_per_topic: 8,
        synonyms_per_concept: 3,
        doc_len: 60,
        noise_fraction: 0.10,
        seed,
        ..Default::default()
    };
    let test = SynonymTest::generate(&options, TOEFL_ITEMS, seed + 7);
    let lsi_options = LsiOptions {
        k,
        rules: ParsingRules { min_df: 2, ..Default::default() },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 37,
    };
    let (model, _) = LsiModel::build(&test.corpus.corpus, &lsi_options).expect("model builds");
    let lsi = run_lsi(&model, &test);
    let overlap = WordOverlapBaseline::build(&test.corpus.corpus).run(&test);
    SynonymResult { lsi, overlap }
}

/// Render the experiment.
pub fn report(seed: u64, k: usize) -> String {
    let r = run(seed, k);
    format!(
        "S5.4: TOEFL-style synonym test ({} items, k={k})\n  \
         LSI          : {}/{} = {:.1}%   (paper: 64%)\n  \
         word overlap : {}/{} = {:.1}%   (paper: 33%; chance 25%)\n",
        r.lsi.total,
        r.lsi.correct, r.lsi.total, r.lsi.accuracy() * 100.0,
        r.overlap.correct, r.overlap.total, r.overlap.accuracy() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsi_beats_overlap_and_chance_like_the_paper() {
        let r = run(9090, 16);
        assert!(r.lsi.accuracy() > 0.55, "LSI {:.2}", r.lsi.accuracy());
        assert!(
            r.lsi.accuracy() > r.overlap.accuracy() + 0.1,
            "LSI {:.2} should clearly beat overlap {:.2}",
            r.lsi.accuracy(),
            r.overlap.accuracy()
        );
    }
}
