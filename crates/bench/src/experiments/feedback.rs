//! §5.1 relevance feedback: "+33 %" (first relevant) and "+67 %" (mean
//! of the first three relevant documents).

use std::collections::HashSet;

use lsi_apps::feedback::{query_with_feedback, FeedbackPolicy};
use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_eval::metrics::average_precision_3pt;
use lsi_text::{ParsingRules, TermWeighting};

/// Mean 3-pt average precision per policy.
pub struct FeedbackResult {
    /// No feedback.
    pub none: f64,
    /// First relevant document replaces the query.
    pub first: f64,
    /// Mean of the first three relevant documents.
    pub mean3: f64,
}

impl FeedbackResult {
    /// Improvement of the single-document policy over no feedback.
    pub fn first_gain(&self) -> f64 {
        (self.first - self.none) / self.none
    }

    /// Improvement of the three-document policy over no feedback.
    pub fn mean3_gain(&self) -> f64 {
        (self.mean3 - self.none) / self.none
    }
}

/// Run the feedback comparison.
pub fn run(seed: u64, k: usize) -> FeedbackResult {
    // Short, impoverished queries — the regime where the paper says
    // feedback helps ("many words ... augment the initial query which
    // is usually quite impoverished").
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 7,
        docs_per_topic: 12,
        synonyms_per_concept: 5,
        query_len: 3,
        queries_per_topic: 4,
        noise_fraction: 0.40,
        seed,
        ..Default::default()
    });
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 31,
    };
    let (model, _) = LsiModel::build(&gen.corpus, &options).expect("model builds");

    let mut sums = [0.0f64; 3];
    for q in &gen.queries {
        let relevant: HashSet<usize> = q.relevant.iter().copied().collect();
        for (i, policy) in [
            FeedbackPolicy::None,
            FeedbackPolicy::FirstRelevant,
            FeedbackPolicy::MeanOfFirstRelevant(3),
        ]
        .into_iter()
        .enumerate()
        {
            let ranking = query_with_feedback(&model, &q.text, &relevant, policy)
                .expect("feedback query runs");
            sums[i] += average_precision_3pt(&ranking, &relevant);
        }
    }
    let n = gen.queries.len() as f64;
    FeedbackResult {
        none: sums[0] / n,
        first: sums[1] / n,
        mean3: sums[2] / n,
    }
}

/// Render the feedback experiment.
pub fn report(seed: u64, k: usize) -> String {
    let r = run(seed, k);
    format!(
        "S5.1: relevance feedback (3-pt avg precision)\n  \
         no feedback      : {:.4}\n  \
         first relevant   : {:.4}  ({:+.1}%)   (paper: +33%)\n  \
         mean of first 3  : {:.4}  ({:+.1}%)   (paper: +67%)\n",
        r.none,
        r.first,
        r.first_gain() * 100.0,
        r.mean3,
        r.mean3_gain() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_ordering_matches_paper() {
        let r = run(99, 14);
        assert!(r.first > r.none, "first {:.4} > none {:.4}", r.first, r.none);
        assert!(
            r.mean3 >= r.first - 0.01,
            "mean3 {:.4} should be at least first {:.4}",
            r.mean3,
            r.first
        );
        assert!(r.first_gain() > 0.03, "gain {:.3}", r.first_gain());
    }
}
