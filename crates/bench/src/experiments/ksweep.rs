//! §5.2 choosing the number of factors.
//!
//! "LSI performance can improve considerably after 10 or 20 dimensions,
//! peaks between 70 and 100 dimensions, and then begins to diminish
//! slowly. ... Eventually performance must approach the level of
//! performance attained by standard vector methods, since with k = n
//! factors A_k will exactly reconstruct the original term by document
//! matrix."

use std::collections::HashSet;

use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_eval::metrics::RetrievalScore;
use lsi_eval::VectorSpaceModel;
use lsi_text::{ParsingRules, TermWeighting};

/// The sweep result: `(k, mean 3-pt average precision)` plus the
/// word-based (full-space) reference level.
pub struct KSweep {
    /// Performance per factor count.
    pub series: Vec<(usize, f64)>,
    /// The keyword-vector reference ("word-based performance").
    pub keyword_level: f64,
    /// The latent dimensionality of the generator (number of topics ×
    /// concepts — where performance should saturate).
    pub latent_dim: usize,
}

/// Run the sweep over `ks`.
pub fn run(ks: &[usize], seed: u64) -> KSweep {
    let opts = SyntheticOptions {
        n_topics: 8,
        docs_per_topic: 14,
        concepts_per_topic: 8,
        synonyms_per_concept: 4,
        doc_len: 40,
        noise_fraction: 0.3,
        query_len: 6,
        queries_per_topic: 4,
        seed,
        ..Default::default()
    };
    let gen = SyntheticCorpus::generate(&opts);
    let rules = ParsingRules {
        min_df: 2,
        ..Default::default()
    };
    let weighting = TermWeighting::log_entropy();

    let score_of = |model: &LsiModel| -> f64 {
        let runs: Vec<(Vec<usize>, HashSet<usize>)> = gen
            .queries
            .iter()
            .map(|q| {
                let ranking: Vec<usize> = model
                    .query(&q.text)
                    .expect("query runs")
                    .matches
                    .iter()
                    .map(|m| m.doc)
                    .collect();
                (ranking, q.relevant.iter().copied().collect())
            })
            .collect();
        RetrievalScore::over_queries(runs.iter().map(|(r, rel)| (r.as_slice(), rel)))
            .avg_precision_3pt
    };

    let mut series = Vec::with_capacity(ks.len());
    for &k in ks {
        let options = LsiOptions {
            k,
            rules: rules.clone(),
            weighting,
            svd_seed: 17,
        };
        let (model, _) = LsiModel::build(&gen.corpus, &options).expect("model builds");
        series.push((k, score_of(&model)));
    }

    // Keyword reference.
    let (any_model, _) = LsiModel::build(
        &gen.corpus,
        &LsiOptions {
            k: 2,
            rules: rules.clone(),
            weighting,
            svd_seed: 17,
        },
    )
    .expect("model builds");
    let vsm = VectorSpaceModel::build(&gen.corpus, any_model.vocabulary().clone(), weighting);
    let vsm_runs: Vec<(Vec<usize>, HashSet<usize>)> = gen
        .queries
        .iter()
        .map(|q| (vsm.ranking(&q.text), q.relevant.iter().copied().collect()))
        .collect();
    let keyword_level =
        RetrievalScore::over_queries(vsm_runs.iter().map(|(r, rel)| (r.as_slice(), rel)))
            .avg_precision_3pt;

    KSweep {
        series,
        keyword_level,
        latent_dim: opts.n_topics * opts.concepts_per_topic,
    }
}

/// Default sweep grid.
pub fn default_ks() -> Vec<usize> {
    vec![1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96]
}

/// Render the §5.2 sweep.
pub fn report(seed: u64) -> String {
    let sweep = run(&default_ks(), seed);
    let mut out = String::from(
        "S5.2: retrieval performance vs number of factors k (3-pt avg precision)\n",
    );
    for (k, score) in &sweep.series {
        let bar: String = std::iter::repeat_n('#', (score * 40.0) as usize)
            .collect();
        out.push_str(&format!("  k={k:<4} {score:.4} {bar}\n"));
    }
    out.push_str(&format!(
        "  keyword-vector reference: {:.4}\n  (paper: sharp rise by 10-20 factors, peak, slow decline toward the word-based level)\n",
        sweep.keyword_level
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_rise_peak_and_decline_shape() {
        let sweep = run(&[1, 2, 4, 8, 16, 32, 64, 96], 1212);
        let scores: Vec<f64> = sweep.series.iter().map(|(_, s)| *s).collect();
        let peak = scores.iter().cloned().fold(0.0f64, f64::max);
        let peak_idx = scores.iter().position(|&s| s == peak).unwrap();
        // Rise: the peak clearly beats k=1.
        assert!(
            peak > scores[0] + 0.05,
            "peak {peak:.4} should clearly beat k=1 ({:.4})",
            scores[0]
        );
        // Peak is at an intermediate k, not at the largest.
        assert!(
            peak_idx < scores.len() - 1,
            "peak should come before the largest k"
        );
        // Decline: the largest k is at or below the peak.
        assert!(*scores.last().unwrap() <= peak + 1e-12);
    }

    #[test]
    fn large_k_approaches_keyword_level() {
        let sweep = run(&[96], 13);
        let (_, at_96) = sweep.series[0];
        // Within a band of the word-based level (the paper's limiting
        // argument; exact equality needs k = rank).
        assert!(
            (at_96 - sweep.keyword_level).abs() < 0.2,
            "k=96 score {at_96:.4} should approach keyword level {:.4}",
            sweep.keyword_level
        );
    }
}
