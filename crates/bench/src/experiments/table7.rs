//! Table 7: analytic flop counts plus measured wall-clock for the
//! updating methods, swept over the update size.

use std::time::Instant;

use lsi_core::complexity::CostParams;
use lsi_core::{LsiModel, LsiOptions};
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};

/// One sweep row.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Documents added.
    pub p: usize,
    /// Analytic flops: folding-in.
    pub fold_flops: u64,
    /// Analytic flops: SVD-updating.
    pub update_flops: u64,
    /// Analytic flops: recomputing.
    pub recompute_flops: u64,
    /// Measured seconds: folding-in.
    pub fold_seconds: f64,
    /// Measured seconds: SVD-updating.
    pub update_seconds: f64,
    /// Measured seconds: recomputing.
    pub recompute_seconds: f64,
}

/// Build a base model and run the three methods for each update size.
pub fn run(ps: &[usize], k: usize, seed: u64) -> Vec<Table7Row> {
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 8,
        docs_per_topic: 25,
        doc_len: 30,
        queries_per_topic: 1,
        seed,
        ..Default::default()
    });
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 23,
    };
    let (base, report) = LsiModel::build(&gen.corpus, &options).expect("base model");
    let mut params = CostParams::with_defaults(base.n_terms(), base.n_docs(), base.k());
    params.lanczos_iters = report.steps;
    params.triplets = base.k();

    // New documents: re-generated from the same distribution.
    let extra = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 8,
        docs_per_topic: 30,
        doc_len: 30,
        queries_per_topic: 1,
        seed: seed + 13,
        ..Default::default()
    });

    let mut rows = Vec::with_capacity(ps.len());
    for &p in ps {
        let new_docs = Corpus {
            docs: extra.corpus.docs[..p]
                .iter()
                .map(|d| Document::new(format!("new-{}", d.id), d.text.clone()))
                .collect(),
        };
        let d_counts = base.vocabulary().count_matrix(&new_docs);
        let nnz_d = d_counts.nnz();
        let ids: Vec<String> = new_docs.docs.iter().map(|d| d.id.clone()).collect();

        // Measured: folding-in.
        let mut fold_model = base.clone();
        let t0 = Instant::now();
        fold_model.fold_in_documents(&new_docs).expect("fold");
        let fold_seconds = t0.elapsed().as_secs_f64();

        // Measured: SVD-updating.
        let mut update_model = base.clone();
        let t0 = Instant::now();
        update_model
            .svd_update_documents(&d_counts, &ids)
            .expect("update");
        let update_seconds = t0.elapsed().as_secs_f64();

        // Measured: recomputing on the extended matrix.
        let mut recompute_model = update_model.clone();
        let t0 = Instant::now();
        recompute_model.recompute(k).expect("recompute");
        let recompute_seconds = t0.elapsed().as_secs_f64();

        rows.push(Table7Row {
            p,
            fold_flops: params.fold_in_documents(p),
            update_flops: params.svd_update_documents(p, nnz_d),
            recompute_flops: params
                .recompute(0, p, base.weighted_matrix().nnz() + nnz_d),
            fold_seconds,
            update_seconds,
            recompute_seconds,
        });
    }
    rows
}

/// Render Table 7.
pub fn report(ps: &[usize], k: usize) -> String {
    let rows = run(ps, k, 808);
    let mut out = format!(
        "Table 7: updating-method cost, analytic flops and measured seconds (k={k})\n"
    );
    out.push_str("  p     fold(flops)  update(flops)  recompute(flops) | fold(s)    update(s)  recompute(s)\n");
    for r in &rows {
        out.push_str(&format!(
            "  {:<5} {:<12} {:<14} {:<16} | {:.6}  {:.6}  {:.6}\n",
            r.p, r.fold_flops, r.update_flops, r.recompute_flops,
            r.fold_seconds, r.update_seconds, r.recompute_seconds
        ));
    }
    out.push_str("  (paper: folding-in 2mkp << SVD-updating << recomputing, for p << n)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ordering_matches_the_papers_claim() {
        // fold-in cheapest, recompute most expensive, for small p.
        let rows = run(&[4], 16, 5);
        let r = &rows[0];
        assert!(
            r.fold_seconds < r.update_seconds,
            "fold {} should be under update {}",
            r.fold_seconds,
            r.update_seconds
        );
        assert!(
            r.update_seconds < r.recompute_seconds * 2.0,
            "update {} should not dwarf recompute {}",
            r.update_seconds,
            r.recompute_seconds
        );
        assert!(
            r.fold_seconds < r.recompute_seconds,
            "fold {} should be under recompute {}",
            r.fold_seconds,
            r.recompute_seconds
        );
    }

    #[test]
    fn analytic_ordering_matches_for_small_p() {
        let rows = run(&[2, 8], 16, 6);
        for r in &rows {
            assert!(r.fold_flops < r.update_flops);
            assert!(r.update_flops < r.recompute_flops);
        }
    }

    #[test]
    fn costs_increase_with_p() {
        let rows = run(&[2, 10], 12, 7);
        assert!(rows[0].fold_flops < rows[1].fold_flops);
        assert!(rows[0].update_flops < rows[1].update_flops);
    }
}
