//! §5.4 noisy-input experiment wrapper: retrieval at the paper's 8.8 %
//! word error rate and a sweep of rates.

use lsi_apps::noisy::{compare_clean_vs_noisy, NoisyResult};
use lsi_core::LsiOptions;
use lsi_corpora::noise::PAPER_WORD_ERROR_RATE;
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};
use lsi_text::{ParsingRules, TermWeighting};

fn setup(seed: u64, k: usize) -> (SyntheticCorpus, LsiOptions) {
    let gen = SyntheticCorpus::generate(&SyntheticOptions {
        n_topics: 6,
        docs_per_topic: 12,
        doc_len: 50,
        seed,
        ..Default::default()
    });
    let options = LsiOptions {
        k,
        rules: ParsingRules { min_df: 2, ..Default::default() },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 41,
    };
    (gen, options)
}

/// Run the sweep over word error rates (always including the paper's
/// 8.8 %).
pub fn run(seed: u64, k: usize, rates: &[f64]) -> Vec<NoisyResult> {
    let (gen, options) = setup(seed, k);
    rates
        .iter()
        .map(|&r| compare_clean_vs_noisy(&gen, &options, r, seed + 1).expect("comparison runs"))
        .collect()
}

/// Default rate grid.
pub fn default_rates() -> Vec<f64> {
    vec![0.0, 0.05, PAPER_WORD_ERROR_RATE, 0.2, 0.4, 0.8]
}

/// Render the experiment.
pub fn report(seed: u64, k: usize) -> String {
    let results = run(seed, k, &default_rates());
    let mut out = String::from(
        "S5.4: retrieval from noisy input (3-pt avg precision, clean queries)\n",
    );
    for r in &results {
        out.push_str(&format!(
            "  WER {:>5.1}%: clean {:.4} -> noisy {:.4}  ({:+.1}% change)\n",
            r.word_error_rate * 100.0,
            r.clean_ap,
            r.noisy_ap,
            -r.degradation() * 100.0
        ));
    }
    out.push_str("  (paper: 8.8% word errors did not disrupt LSI retrieval)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_barely_degrades_but_extreme_noise_does() {
        let results = run(321, 12, &[PAPER_WORD_ERROR_RATE, 0.8]);
        assert!(
            results[0].degradation() < 0.15,
            "8.8% WER degradation {:.3}",
            results[0].degradation()
        );
        assert!(
            results[1].noisy_ap < results[0].noisy_ap,
            "80% WER should hurt more than 8.8%"
        );
    }
}
