//! Render the paper's scatter figures (4, 6, 7, 8, 9) as SVG files.

use std::path::Path;

use lsi_core::LsiModel;
use lsi_corpora::med;

use crate::svg::ScatterPlot;

use super::med::med_model;
use super::updating::updated_models;

/// Plot the terms and documents of a model (scaled coordinates, the
/// paper's plotting convention), highlighting `highlight` doc ids.
fn plot_model(title: &str, model: &LsiModel, highlight: &[&str]) -> ScatterPlot {
    let mut plot = ScatterPlot::new(title);
    for i in 0..model.n_terms() {
        let c = model.term_coords_scaled(i);
        let name = model
            .vocabulary()
            .terms()
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("t{i}"));
        plot.term(c[0], c[1], name);
    }
    for j in 0..model.n_docs() {
        let c = model.doc_coords_scaled(j);
        let id = model.doc_ids()[j].to_string();
        if highlight.contains(&id.as_str()) {
            plot.doc_highlight(c[0], c[1], id);
        } else {
            plot.doc(c[0], c[1], id);
        }
    }
    plot
}

/// Build all five figures.
pub fn figures() -> Vec<(&'static str, ScatterPlot)> {
    let (_, base) = med_model(2);
    let mut fig4 = plot_model(
        "Figure 4: terms and documents of the 18x14 example (k=2)",
        &base,
        &[],
    );
    let mut fig6 = plot_model(
        "Figure 6: query 'age blood abnormalities' in the k=2 space",
        &base,
        &["M8", "M9", "M12"],
    );
    let q = base.project_text(med::QUERY).expect("query projects");
    // Plot the query direction scaled like the documents.
    let s = base.singular_values();
    fig6.query(q[0] * s[0], q[1] * s[1], "QUERY");
    let _ = &mut fig4;

    let models = updated_models();
    let fig7 = plot_model(
        "Figure 7: M15/M16 folded in (original positions frozen)",
        &models.folded,
        &["M15", "M16"],
    );
    let fig8 = plot_model(
        "Figure 8: SVD recomputed on the 18x16 matrix",
        &models.recomputed,
        &["M15", "M16"],
    );
    let fig9 = plot_model(
        "Figure 9: SVD-updating with B = (A_2 | D)",
        &models.updated,
        &["M15", "M16"],
    );

    vec![
        ("figure4.svg", fig4),
        ("figure6.svg", fig6),
        ("figure7.svg", fig7),
        ("figure8.svg", fig8),
        ("figure9.svg", fig9),
    ]
}

/// Write the figures into `dir`, returning a report of what was
/// written.
pub fn write_figures(dir: &Path) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut out = String::from("SVG figures written:\n");
    for (name, plot) in figures() {
        let path = dir.join(name);
        std::fs::write(&path, plot.render())?;
        out.push_str(&format!("  {}\n", path.display()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_figures_are_produced() {
        let figs = figures();
        assert_eq!(figs.len(), 5);
        for (name, plot) in &figs {
            let svg = plot.render();
            assert!(svg.contains("</svg>"), "{name} incomplete");
            // Every figure shows all 18 terms.
            assert!(
                svg.matches("<circle").count() >= 18,
                "{name} should plot the terms"
            );
        }
    }

    #[test]
    fn update_figures_highlight_new_topics() {
        for (name, plot) in figures() {
            if name == "figure7.svg" || name == "figure9.svg" {
                let svg = plot.render();
                assert!(svg.contains("M15"), "{name} must label M15");
                assert!(svg.contains("M16"), "{name} must label M16");
            }
        }
    }

    #[test]
    fn figures_write_to_disk() {
        let dir = std::env::temp_dir().join(format!("lsi-figs-{}", std::process::id()));
        let report = write_figures(&dir).unwrap();
        assert!(report.contains("figure4.svg"));
        for name in ["figure4.svg", "figure6.svg", "figure7.svg", "figure8.svg", "figure9.svg"] {
            assert!(dir.join(name).exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
