//! Self-verifying scorecard: every reproduction claim checked
//! programmatically, one PASS/FAIL line each.
//!
//! `repro --scorecard` is the one-command answer to "does this
//! repository still reproduce the paper?" — it re-runs the experiment
//! battery and evaluates the acceptance bands recorded in
//! EXPERIMENTS.md.

use lsi_corpora::med as paper;

use super::*;

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Check {
    /// Short claim identifier ("T4/k2", "S5.1/weighting"...).
    pub id: &'static str,
    /// Did the measured value fall inside the acceptance band?
    pub passed: bool,
    /// Measured-vs-expected detail.
    pub detail: String,
}

fn check(id: &'static str, passed: bool, detail: String) -> Check {
    Check { id, passed, detail }
}

/// Run the full battery.
pub fn run() -> Vec<Check> {
    let mut checks = Vec::new();

    // --- The §3 example ---
    let (example, _) = paper::MedExample::build().matrix.shape();
    checks.push(check(
        "T3/shape",
        example == 18,
        format!("term-document matrix has {example} rows (want 18)"),
    ));
    let ex = paper::MedExample::build();
    let vocab_ok = ex.vocab.terms().iter().map(|s| s.as_str()).eq(paper::TERMS);
    checks.push(check(
        "T3/vocabulary",
        vocab_ok,
        "parsing rules reproduce the 18 published keywords".to_string(),
    ));

    let fig = med::figure45();
    let sig_ok = (fig.sigma[0] - fig.paper_sigma[0]).abs() / fig.paper_sigma[0] < 0.03
        && (fig.sigma[1] - fig.paper_sigma[1]).abs() / fig.paper_sigma[1] < 0.03;
    checks.push(check(
        "F5/sigma",
        sig_ok,
        format!(
            "sigma ({:.4}, {:.4}) vs published ({:.4}, {:.4}), band 3%",
            fig.sigma[0], fig.sigma[1], fig.paper_sigma[0], fig.paper_sigma[1]
        ),
    ));
    let q_ok = (fig.query_coords[0].abs() - fig.paper_query_coords[0].abs()).abs() < 0.03
        && (fig.query_coords[1].abs() - fig.paper_query_coords[1].abs()).abs() < 0.03;
    checks.push(check(
        "F5/query",
        q_ok,
        format!(
            "|q^| = ({:.4}, {:.4}) vs published ({:.4}, {:.4}), band 0.03",
            fig.query_coords[0].abs(),
            fig.query_coords[1].abs(),
            fig.paper_query_coords[0].abs(),
            fig.paper_query_coords[1].abs()
        ),
    ));

    let f6 = med::figure6();
    checks.push(check(
        "F6/lsi-top",
        f6.m9_rank == 0,
        format!("M9 ranks #{} for LSI (want #1)", f6.m9_rank + 1),
    ));
    let lex_ok = f6.lexical == paper::PAPER_LEXICAL_MATCHES;
    checks.push(check(
        "F6/lexical",
        lex_ok,
        format!("lexical match set {:?} (exact paper set)", f6.lexical),
    ));

    let t4 = med::table4_column(2);
    let t4_ids: Vec<&str> = t4.iter().map(|(d, _)| d.as_str()).collect();
    let coverage = paper::PAPER_TABLE4_K2
        .iter()
        .all(|(d, _)| t4_ids.contains(d));
    let mean_dev = paper::PAPER_TABLE4_K2
        .iter()
        .filter_map(|(d, want)| {
            t4.iter().find(|(id, _)| id == d).map(|(_, got)| (got - want).abs())
        })
        .sum::<f64>()
        / paper::PAPER_TABLE4_K2.len() as f64;
    checks.push(check(
        "T4/k2",
        coverage && mean_dev < 0.05,
        format!("all 11 paper docs returned: {coverage}; mean |dcos| = {mean_dev:.3} (band 0.05)"),
    ));

    // --- Updating (Figures 7-9, §4.3) ---
    let models = updating::updated_models();
    let fold = updating::rats_cluster_score(&models.folded);
    let rec = updating::rats_cluster_score(&models.recomputed);
    let upd = updating::rats_cluster_score(&models.updated);
    checks.push(check(
        "F7-9/cluster",
        fold < upd && upd <= rec + 0.02,
        format!("rats-cluster cosine: fold {fold:.3} < update {upd:.3} <= recompute {rec:.3}"),
    ));
    let ortho = updating::ortho_experiment(5);
    checks.push(check(
        "S4.3/defect",
        ortho.fold_series.last().unwrap().1 > 0.1 && ortho.update_defect < 1e-9,
        format!(
            "fold defect after 10 docs {:.3}; update defect {:.1e}",
            ortho.fold_series.last().unwrap().1,
            ortho.update_defect
        ),
    ));
    let growth = ortho_retrieval::run(4242, 12, 6);
    checks.push(check(
        "S4.3/correlation",
        growth.fold_correlation < -0.5,
        format!(
            "Pearson(defect, precision) = {:.3} along the folding curve (want < -0.5)",
            growth.fold_correlation
        ),
    ));

    // --- Table 7 ---
    let rows = table7::run(&[5], 16, 808);
    let r = &rows[0];
    checks.push(check(
        "T7/ordering",
        r.fold_flops < r.update_flops && r.update_flops < r.recompute_flops,
        format!(
            "flops fold {} < update {} < recompute {}",
            r.fold_flops, r.update_flops, r.recompute_flops
        ),
    ));

    // --- §5.1 ---
    let gen = retrieval::default_corpus(2024);
    let cmp = retrieval::compare(&gen, 16);
    checks.push(check(
        "S5.1/lsi-vs-keyword",
        cmp.lsi_advantage() > 0.05 && cmp.lsi_high_recall > cmp.keyword_high_recall,
        format!(
            "LSI {:+.1}% overall; at recall 0.75: {:.3} vs {:.3}",
            cmp.lsi_advantage() * 100.0,
            cmp.lsi_high_recall,
            cmp.keyword_high_recall
        ),
    ));

    let w = weighting::run(12);
    let raw = w.iter().find(|(n, _)| *n == "raw").unwrap().1;
    let le = w.iter().find(|(n, _)| *n == "log.entropy").unwrap().1;
    let best = w.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
    checks.push(check(
        "S5.1/weighting",
        le > raw * 1.15 && le >= best - 0.03,
        format!(
            "log.entropy {:+.1}% vs raw (paper ~ +40%); within 0.03 of best",
            (le - raw) / raw * 100.0
        ),
    ));

    let fb = feedback::run(99, 14);
    checks.push(check(
        "S5.1/feedback",
        fb.first > fb.none && fb.mean3 >= fb.first - 0.01,
        format!(
            "first {:+.1}% (paper +33%), mean-of-3 {:+.1}% (paper +67%)",
            fb.first_gain() * 100.0,
            fb.mean3_gain() * 100.0
        ),
    ));

    // --- §5.2 k sweep ---
    let sweep = ksweep::run(&[1, 2, 4, 8, 16, 32, 96], 1212);
    let scores: Vec<f64> = sweep.series.iter().map(|(_, s)| *s).collect();
    let peak = scores.iter().cloned().fold(0.0f64, f64::max);
    let peak_idx = scores.iter().position(|&s| s == peak).unwrap();
    checks.push(check(
        "S5.2/ksweep",
        peak > scores[0] + 0.05 && peak_idx < scores.len() - 1,
        format!(
            "rise {:.2} -> peak {:.2} at k={} -> tail {:.2}",
            scores[0], peak, sweep.series[peak_idx].0, scores[scores.len() - 1]
        ),
    ));

    // --- §5.3 ---
    let filt = filtering::run(13, 12);
    let adv = (filt.lsi_text_profile - filt.keyword_profile) / filt.keyword_profile;
    checks.push(check(
        "S5.3/filtering",
        adv > 0.05 && filt.lsi_doc_profile >= filt.lsi_text_profile - 0.05,
        format!(
            "LSI {:+.1}% vs keyword (paper 12-23%); doc profiles {:.3}",
            adv * 100.0,
            filt.lsi_doc_profile
        ),
    ));

    // --- §5.4 ---
    let syn = synonym::run(9090, 16);
    checks.push(check(
        "S5.4/synonym",
        syn.lsi.accuracy() > 0.55 && syn.lsi.accuracy() > syn.overlap.accuracy() + 0.1,
        format!(
            "LSI {:.1}% (paper 64%), overlap {:.1}% (paper 33%)",
            syn.lsi.accuracy() * 100.0,
            syn.overlap.accuracy() * 100.0
        ),
    ));

    let noisy_results = noisy::run(321, 12, &[lsi_corpora::noise::PAPER_WORD_ERROR_RATE]);
    checks.push(check(
        "S5.4/noisy",
        noisy_results[0].degradation() < 0.15,
        format!(
            "8.8% WER changes AP by {:+.1}% (band: |x| < 15%)",
            -noisy_results[0].degradation() * 100.0
        ),
    ));

    let sp = spelling::run(40, 60, 17);
    checks.push(check(
        "S5.4/spelling",
        sp.lsi_accuracy >= 0.7,
        format!("LSI corrector {:.1}% on single-edit misspellings", sp.lsi_accuracy * 100.0),
    ));

    let rev = reviewers::run(606, 3, 3);
    checks.push(check(
        "S5.4/reviewers",
        rev.topical_fraction >= 0.6 && rev.max_load <= 3,
        format!(
            "{:.0}% topical assignments, max load {} (cap 3)",
            rev.topical_fraction * 100.0,
            rev.max_load
        ),
    ));

    let cl = crosslang::run(515);
    checks.push(check(
        "S5.4/crosslang",
        cl.cross_en_to_fr >= 0.8 && cl.cross_fr_to_en >= 0.8,
        format!(
            "en->fr {:.2}, fr->en {:.2}, translate baseline {:.2}",
            cl.cross_en_to_fr, cl.cross_fr_to_en, cl.translated_baseline
        ),
    ));

    let poly = polysemy::run(&[0.0, 0.5], 808, 16);
    checks.push(check(
        "S1/polysemy",
        poly[1].lsi > poly[1].keyword,
        format!(
            "at 50% polysemy: LSI {:.3} vs keyword {:.3}",
            poly[1].lsi, poly[1].keyword
        ),
    ));

    checks
}

/// Render the scorecard.
pub fn report() -> String {
    let checks = run();
    let passed = checks.iter().filter(|c| c.passed).count();
    let mut out = format!(
        "Scorecard: {passed}/{} reproduction claims inside their acceptance bands\n",
        checks.len()
    );
    for c in &checks {
        out.push_str(&format!(
            "  [{}] {:<18} {}\n",
            if c.passed { "PASS" } else { "FAIL" },
            c.id,
            c.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorecard_passes_every_claim() {
        // The full battery (tens of seconds): this is the repository's
        // own acceptance test.
        let checks = run();
        let failures: Vec<&Check> = checks.iter().filter(|c| !c.passed).collect();
        assert!(
            failures.is_empty(),
            "failed claims: {:#?}",
            failures
        );
        assert!(checks.len() >= 18, "expected a full battery, got {}", checks.len());
    }
}
