//! Polysemy stress test.
//!
//! §1 of the paper: "most words have multiple meanings (polysemy), so
//! terms in a user's query will literally match terms in irrelevant
//! documents." The §3 example shows LSI separating the two senses of
//! *culture*/*discharge* in M1 vs M2. This experiment sweeps the
//! fraction of polysemous vocabulary and measures how far each system
//! degrades: keyword matching takes the full hit (a literal match is a
//! match, sense notwithstanding); LSI discounts a polysemous word by
//! its cross-topic context.

use super::retrieval::compare;
use lsi_corpora::{SyntheticCorpus, SyntheticOptions};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct PolysemyPoint {
    /// Fraction of polysemous concepts per topic.
    pub fraction: f64,
    /// LSI mean 3-pt average precision.
    pub lsi: f64,
    /// Keyword-vector mean 3-pt average precision.
    pub keyword: f64,
}

/// Run the sweep.
pub fn run(fractions: &[f64], seed: u64, k: usize) -> Vec<PolysemyPoint> {
    fractions
        .iter()
        .map(|&fraction| {
            let gen = SyntheticCorpus::generate(&SyntheticOptions {
                n_topics: 8,
                docs_per_topic: 14,
                concepts_per_topic: 10,
                synonyms_per_concept: 4,
                doc_len: 40,
                background_vocab: 80,
                noise_fraction: 0.25,
                query_len: 8,
                queries_per_topic: 4,
                polysemy_fraction: fraction,
                seed,
            });
            let c = compare(&gen, k);
            PolysemyPoint {
                fraction,
                lsi: c.lsi.avg_precision_3pt,
                keyword: c.keyword.avg_precision_3pt,
            }
        })
        .collect()
}

/// Render the sweep.
pub fn report(seed: u64, k: usize) -> String {
    let points = run(&[0.0, 0.2, 0.4, 0.6], seed, k);
    let mut out = String::from(
        "S1/S3: polysemy stress (3-pt avg precision vs fraction of polysemous concepts)\n",
    );
    out.push_str("  polysemy  LSI     keyword  LSI advantage\n");
    for p in &points {
        out.push_str(&format!(
            "  {:.1}       {:.4}  {:.4}   {:+.1}%\n",
            p.fraction,
            p.lsi,
            p.keyword,
            (p.lsi - p.keyword) / p.keyword * 100.0
        ));
    }
    out.push_str(
        "  (paper S3.2: literal matching cannot resolve sense; LSI separates contexts)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polysemy_hurts_keyword_matching_more_than_lsi() {
        let points = run(&[0.0, 0.5], 808, 16);
        let clean = &points[0];
        let poly = &points[1];
        // Both systems degrade...
        assert!(poly.keyword < clean.keyword, "keyword should degrade");
        // ...but LSI keeps an advantage under heavy polysemy.
        assert!(
            poly.lsi > poly.keyword,
            "LSI {:.4} should stay above keyword {:.4} at 50% polysemy",
            poly.lsi,
            poly.keyword
        );
        // And LSI's drop is no worse than keyword's drop.
        let lsi_drop = clean.lsi - poly.lsi;
        let kw_drop = clean.keyword - poly.keyword;
        assert!(
            lsi_drop <= kw_drop + 0.05,
            "LSI drop {lsi_drop:.4} vs keyword drop {kw_drop:.4}"
        );
    }
}
