//! §5.3 TREC scale: "a sample of about 70,000 documents and 90,000
//! terms ... matrices ... containing only .001-.002% non-zero entries.
//! Computing A_200 ... by a single-vector Lanczos algorithm required
//! about 18 hours of CPU time on a SUN SPARCstation 10."
//!
//! The experiment runs the same computation at a sweep of scale factors
//! and reports wall-clock, iteration counts, and the measured sparse
//! flops (the §4.2 cost terms), so the full-scale cost can be
//! extrapolated on current hardware.

use std::time::Instant;

use lsi_corpora::treclike::{describe, trec_like, TREC_K};
use lsi_sparse::ops::DualFormat;
use lsi_svd::{lanczos_svd, CountingOperator, LanczosOptions};

/// One row of the scale sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Scale divisor (1 = the paper's full 90k×70k).
    pub scale: usize,
    /// Matrix shape.
    pub shape: (usize, usize),
    /// Stored nonzeros.
    pub nnz: usize,
    /// Density as a percentage (paper phrasing).
    pub density_percent: f64,
    /// Factors computed.
    pub k: usize,
    /// Lanczos iterations used.
    pub iterations: usize,
    /// Sparse products performed (forward + transposed).
    pub products: u64,
    /// Estimated sparse flops.
    pub flops: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Run the Lanczos truncated SVD at one scale.
pub fn run_scale(scale: usize, k: usize, seed: u64) -> ScalePoint {
    let matrix = trec_like(scale, seed);
    let stats = describe(&matrix);
    let dual = DualFormat::from_csc(matrix);
    let counter = CountingOperator::new(&dual);
    let start = Instant::now();
    let k_eff = k.min(stats.nrows.min(stats.ncols) / 2).max(1);
    let (svd, rep) = lanczos_svd(
        &counter,
        k_eff,
        &LanczosOptions {
            seed,
            ..Default::default()
        },
    )
    .expect("Lanczos runs");
    let seconds = start.elapsed().as_secs_f64();
    ScalePoint {
        scale,
        shape: (stats.nrows, stats.ncols),
        nnz: stats.nnz,
        density_percent: stats.density_percent(),
        k: svd.s.len(),
        iterations: rep.steps,
        products: counter.apply_count() + counter.apply_t_count(),
        flops: counter.flops(),
        seconds,
    }
}

/// Render the scale sweep.
pub fn report(scales: &[usize], k: usize) -> String {
    let mut out = format!(
        "S5.3: TREC-shaped Lanczos cost sweep (target k={k}; paper computed k={TREC_K} on 90000x70000 at .001-.002% density)\n"
    );
    out.push_str("  scale  shape          nnz      density%  k    iters  products  flops        seconds\n");
    for &s in scales {
        let p = run_scale(s, k, 7);
        out.push_str(&format!(
            "  1/{:<4} {}x{:<7} {:<8} {:.4}    {:<4} {:<6} {:<9} {:<12} {:.3}\n",
            p.scale, p.shape.0, p.shape.1, p.nnz, p.density_percent, p.k, p.iterations,
            p.products, p.flops, p.seconds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_run_completes_with_converged_factors() {
        let p = run_scale(100, 20, 3);
        assert_eq!(p.shape, (900, 700));
        assert!(p.k >= 10, "expected at least 10 factors, got {}", p.k);
        assert!(p.iterations >= p.k);
        assert!(p.products > 0);
        assert!(p.seconds >= 0.0);
    }

    #[test]
    fn density_tracks_paper_band_times_scale() {
        let p = run_scale(100, 10, 3);
        // 0.002% x 100 = 0.2%, duplicates shave a little off.
        assert!(
            p.density_percent > 0.1 && p.density_percent < 0.25,
            "density {}",
            p.density_percent
        );
    }

    #[test]
    fn flops_grow_with_scale() {
        let small = run_scale(200, 10, 3);
        let large = run_scale(100, 10, 3);
        assert!(
            large.flops > small.flops,
            "larger instance should cost more: {} vs {}",
            large.flops,
            small.flops
        );
    }
}
