//! `lsi serve` — a query-serving daemon over a persistent in-memory
//! [`lsi_core::LsiModel`].
//!
//! The CLI's one-shot `lsi query` pays model load (mmap-free full
//! deserialize) per invocation; the daemon amortizes it across a
//! process lifetime and coalesces concurrent queries into one scoring
//! batch ([`lsi_core::LsiModel::query_top_batch`]), so the document
//! sweep runs as a GEMM instead of one GEMV per request (DESIGN.md
//! §3i).
//!
//! The transport is a hand-rolled bounded HTTP/1.1 server over
//! `std::net` — no async runtime, no external dependencies. Robustness
//! is the design center, in four layers:
//!
//! 1. **Bounded queues + load shedding.** The accept→worker handoff
//!    and the scoring queue are both bounded; past either bound the
//!    server answers a typed `503` with `Retry-After` instead of
//!    queueing unboundedly.
//! 2. **Deadlines.** Every request carries a deadline
//!    (`?timeout_ms=`, capped by the server max). Requests that
//!    expire while queued are dropped *before* scoring and answered
//!    `504`; slow clients are bounded by read/write socket timeouts.
//! 3. **Graceful degradation.** Under sustained queue pressure the
//!    batcher walks a ladder — exact coalesced GEMM → cluster-pruned
//!    probes → compressed f32 sweep → narrowed probes — trading recall
//!    for latency *before* shedding (see [`batcher`]).
//! 4. **Containment.** Each connection is served under
//!    `catch_unwind`: a panic (e.g. the `serve.batch` failpoint)
//!    answers `500` and the worker keeps serving. SIGTERM/SIGINT stop
//!    the accept loop, drain in-flight requests, and emit a final
//!    [`lsi_obs::RunReport`].

use std::sync::atomic::{AtomicBool, Ordering};

mod batcher;
mod http;
mod server;

pub use server::{ServeConfig, Server, Stats};

/// Process-wide stop flag, set by the signal handlers installed with
/// [`install_signal_handlers`] (and settable by tests or embedders).
/// Every [`Server`] polls it alongside its own per-instance handle.
static STOP: AtomicBool = AtomicBool::new(false);

/// Whether a process-wide stop (SIGTERM/SIGINT) has been requested.
pub fn stop_requested() -> bool {
    // Relaxed: a standalone flag — no other memory is published
    // through it; the accept loop merely needs to observe it soon.
    STOP.load(Ordering::Relaxed)
}

/// Request a process-wide stop, as the signal handlers do. Exposed so
/// tests and embedders can trigger a drain without raising a signal.
pub fn request_stop() {
    // Relaxed: see stop_requested().
    STOP.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::Ordering;

    // signal(2) from the C library, which is always linked on unix
    // targets. The handler is passed as a raw function address
    // (`sighandler_t`), so `usize` is ABI-compatible here.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe by construction: a single lock-free atomic
        // store, no allocation, no locks, no I/O.
        // Relaxed: see stop_requested().
        super::STOP.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        let handler: extern "C" fn(i32) = on_signal;
        // SAFETY: `signal` is the C library's signal(2) with the
        // documented signature; `on_signal` is `extern "C"` with the
        // handler ABI and is async-signal-safe (single atomic store).
        // Replacing the default handlers for SIGINT/SIGTERM is the
        // entire point of this call.
        unsafe {
            signal(SIGINT, handler as usize);
            signal(SIGTERM, handler as usize);
        }
    }
}

/// Install SIGTERM/SIGINT handlers that set the process-wide stop
/// flag, turning either signal into a graceful drain. No-op on
/// non-unix targets.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sig::install();
}
