//! The scoring heart of the daemon: a bounded job queue drained by a
//! single batcher thread that owns the [`LsiModel`].
//!
//! One thread owning the model means scoring needs no model lock:
//! workers enqueue jobs, the batcher pops up to `max_batch` at a
//! time, drops any whose deadline already passed, and scores the rest
//! in one call. Batches form naturally under load — while one batch
//! scores, new jobs accumulate — so there is no artificial gather
//! delay on the latency path.
//!
//! # Degradation ladder
//!
//! Under sustained backlog the batcher trades recall for latency
//! *before* the server starts shedding (levels are driven by queue
//! depth as a fraction of capacity; escalation is immediate,
//! de-escalation waits out a cooldown so the precision store is not
//! rebuilt on every oscillation — a flip costs an O(n·k) store
//! rebuild):
//!
//! | level | trigger      | scoring path                               |
//! |-------|--------------|--------------------------------------------|
//! | 0     | depth < 50%  | exact, coalesced GEMM                      |
//! | 1     | depth ≥ 50%  | cluster-pruned probes (base `nprobe`)      |
//! | 2     | depth ≥ 75%  | + compressed f32 sweep                     |
//! | 3     | depth ≥ 90%  | probes narrowed to half the base `nprobe`  |

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use lsi_core::{
    BatchQuery, IndexPolicy, LsiModel, Precision, RankedList, RequestCtx, DEFAULT_NPROBE,
};

use crate::server::Stats;

/// Queue-depth fractions that trigger each ladder level. Calibration:
/// the serve load harness (`perf_kernels --serve`) sheds at depth 1.0,
/// so the ladder must engage strictly below it with room to act.
const DEGRADE_L1_FRACTION: f64 = 0.50;
const DEGRADE_L2_FRACTION: f64 = 0.75;
const DEGRADE_L3_FRACTION: f64 = 0.90;

/// De-escalation cooldown: the backlog must stay below a level's
/// trigger this long before the ladder steps down, because stepping
/// down from level 2 rebuilds the precision store (O(n·k)).
const DEGRADE_COOLDOWN: Duration = Duration::from_secs(2);

/// One enqueued query.
pub(crate) struct Job {
    pub text: String,
    pub z: usize,
    /// Server request id, threaded into the query log's `trace_id`.
    pub trace_id: String,
    pub enqueued: Instant,
    pub deadline: Instant,
    /// Rendezvous back to the connection handler. Capacity 1, so the
    /// batcher's send never blocks even if the handler gave up.
    pub reply: SyncSender<Result<RankedList, String>>,
}

struct Inner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded MPSC job queue (many workers push, the batcher pops).
pub(crate) struct Queue {
    inner: Mutex<Inner>,
    nonempty: Condvar,
    depth: usize,
}

impl Queue {
    pub(crate) fn new(depth: usize) -> Queue {
        Queue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            depth,
        }
    }

    /// Enqueue, or hand the job back when the queue is at capacity or
    /// closed (the caller sheds with a 503).
    pub(crate) fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.closed || g.jobs.len() >= self.depth {
            return Err(job);
        }
        g.jobs.push_back(job);
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Current backlog.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).jobs.len()
    }

    /// Close the queue: pushes fail from now on; the batcher drains
    /// what remains, then its pop returns `None` and it exits.
    pub(crate) fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.nonempty.notify_all();
    }

    /// Pop up to `max` jobs, blocking while empty. Returns the batch
    /// plus the backlog left behind; `None` once closed and drained.
    fn pop_batch(&self, max: usize) -> Option<(Vec<Job>, usize)> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !g.jobs.is_empty() {
                let take = g.jobs.len().min(max);
                let batch: Vec<Job> = g.jobs.drain(..take).collect();
                let backlog = g.jobs.len();
                return Some((batch, backlog));
            }
            if g.closed {
                return None;
            }
            // Timed wait only so a racing close() can never strand the
            // batcher; the common wake path is the notify in try_push.
            let (ng, _) = self
                .nonempty
                .wait_timeout(g, Duration::from_millis(100))
                .unwrap_or_else(|p| p.into_inner());
            g = ng;
        }
    }
}

/// Ladder state carried across batches.
struct Ladder {
    level: u8,
    /// Precision the server was started with; level 2 only compresses
    /// when this is `Exact`, and de-escalation restores it.
    base_precision: Precision,
    /// Probe depth the index was configured with (policy nprobe, or
    /// the default when the policy is exact scan).
    base_nprobe: usize,
    /// When the backlog first dropped below the current level's
    /// trigger; de-escalation fires once this ages past the cooldown.
    below_since: Option<Instant>,
    enabled: bool,
}

impl Ladder {
    fn new(model: &LsiModel, enabled: bool) -> Ladder {
        let base_nprobe = match model.index_policy() {
            IndexPolicy::Pruned { nprobe } => nprobe,
            IndexPolicy::Exact => DEFAULT_NPROBE,
        };
        Ladder {
            level: 0,
            base_precision: model.precision(),
            base_nprobe,
            below_since: None,
            enabled,
        }
    }

    /// Advance the ladder for the observed backlog fraction and apply
    /// any precision change to the model.
    fn step(&mut self, model: &mut LsiModel, backlog: usize, depth: usize) {
        if !self.enabled || depth == 0 {
            return;
        }
        let frac = backlog as f64 / depth as f64;
        let target: u8 = if frac >= DEGRADE_L3_FRACTION {
            3
        } else if frac >= DEGRADE_L2_FRACTION {
            2
        } else if frac >= DEGRADE_L1_FRACTION {
            1
        } else {
            0
        };
        if target > self.level {
            // Escalate immediately: the backlog is growing now.
            self.level = target;
            self.below_since = None;
            self.apply_precision(model);
            lsi_obs::count("serve.degrade.count", 1);
        } else if target < self.level {
            let since = *self.below_since.get_or_insert_with(Instant::now);
            if since.elapsed() >= DEGRADE_COOLDOWN {
                self.level = target;
                self.below_since = None;
                self.apply_precision(model);
            }
        } else {
            self.below_since = None;
        }
        lsi_obs::gauge_set("serve.degrade.level", self.level as f64);
    }

    fn apply_precision(&self, model: &mut LsiModel) {
        if !matches!(self.base_precision, Precision::Exact) {
            return; // the operator chose a compressed baseline; keep it
        }
        let want_compressed = self.level >= 2;
        let is_compressed = !matches!(model.precision(), Precision::Exact);
        if want_compressed && !is_compressed {
            model.set_precision(Precision::F32);
        } else if !want_compressed && is_compressed {
            model.set_precision(Precision::Exact);
        }
    }

    /// Probe-depth override for the current level: `None` at level 0
    /// (exact coalesced path), the base depth at 1–2, half of it
    /// (floor 1) at 3.
    fn nprobe_override(&self) -> Option<usize> {
        match self.level {
            0 => None,
            1 | 2 => Some(self.base_nprobe),
            _ => Some((self.base_nprobe / 2).max(1)),
        }
    }

    fn level(&self) -> u8 {
        self.level
    }
}

/// Batcher main loop: owns the model until the queue closes.
pub(crate) fn run(model: &mut LsiModel, queue: &Queue, max_batch: usize, stats: &Stats, degrade: bool) {
    let mut ladder = Ladder::new(model, degrade);
    while let Some((batch, backlog)) = queue.pop_batch(max_batch) {
        lsi_obs::gauge_set("serve.queue.depth", backlog as f64);
        let now = Instant::now();
        let mut live: Vec<Job> = Vec::with_capacity(batch.len());
        for job in batch {
            if job.deadline <= now {
                // Expired while queued: dropping the reply sender makes
                // the handler's recv see Disconnected and answer 504
                // without the sweep ever running.
                stats.add_timeout();
                lsi_obs::count("serve.timeout.count", 1);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        ladder.step(model, backlog, queue.depth);
        stats.record_batch(live.len() as u64, ladder.level());
        lsi_obs::observe("serve.batch.size", live.len() as f64);
        for job in &live {
            lsi_obs::observe(
                "serve.queue.wait.us",
                job.enqueued.elapsed().as_secs_f64() * 1e6,
            );
        }

        score_batch(model, live, ladder.nprobe_override(), stats);
    }
}

/// Score one batch, containing panics so the batcher thread survives
/// (e.g. the `serve.batch` failpoint armed with `panic`).
fn score_batch(model: &mut LsiModel, live: Vec<Job>, nprobe: Option<usize>, stats: &Stats) {
    let mut replies: Vec<SyncSender<Result<RankedList, String>>> =
        Vec::with_capacity(live.len());
    let mut queries: Vec<BatchQuery> = Vec::with_capacity(live.len());
    let mut overrides: Vec<(String, usize, RequestCtx)> = Vec::new();
    let now = Instant::now();
    for job in live {
        let ctx = RequestCtx {
            trace_id: job.trace_id,
            wait_us: now.saturating_duration_since(job.enqueued).as_secs_f64() * 1e6,
        };
        replies.push(job.reply);
        if nprobe.is_some() {
            overrides.push((job.text, job.z, ctx));
        } else {
            queries.push(BatchQuery {
                text: job.text,
                z: job.z,
                ctx: Some(ctx),
            });
        }
    }
    let n_live = replies.len();
    let results = catch_unwind(AssertUnwindSafe(|| {
        // The failpoint is evaluated inside the unwind boundary so its
        // `panic` action exercises exactly the containment this
        // function promises (and `delay-ms` stalls the whole batch,
        // exercising per-request deadlines).
        match lsi_fault::eval(lsi_fault::points::SERVE_BATCH) {
            Some(lsi_fault::Fired::ReturnErr) => {
                let msg = format!(
                    "fault injected at failpoint `{}`",
                    lsi_fault::points::SERVE_BATCH
                );
                return (0..n_live).map(|_| Err(msg.clone())).collect();
            }
            // No data to poison at this site.
            Some(lsi_fault::Fired::InjectNan) | None => {}
        }
        if let Some(n) = nprobe {
            overrides
                .into_iter()
                .map(|(text, z, ctx)| {
                    lsi_core::querylog::set_request_context(ctx);
                    model
                        .query_top_with(&text, z, Some(n))
                        .map_err(|e| e.to_string())
                })
                .collect::<Vec<Result<RankedList, String>>>()
        } else {
            model
                .query_top_batch(queries)
                .into_iter()
                .map(|r| r.map_err(|e| e.to_string()))
                .collect()
        }
    }));
    match results {
        Ok(results) => {
            for (reply, result) in replies.into_iter().zip(results) {
                // A send error means the handler already answered 504
                // and hung up; nothing to do.
                let _ = reply.try_send(result);
            }
        }
        Err(_) => {
            stats.add_panic();
            lsi_obs::count("serve.panic.count", 1);
            lsi_obs::error!("panic contained in batch scoring; batcher continues");
            for reply in replies {
                let _ = reply.try_send(Err(
                    "panic during batch scoring (contained; server still up)".to_string(),
                ));
            }
        }
    }
}
