//! Bounded HTTP/1.1 request parsing and response writing.
//!
//! Deliberately minimal: `GET`/`POST`, `Content-Length` bodies only
//! (no chunked transfer — rejecting it keeps the parser's memory
//! bound provable), keep-alive, and hard caps on head and body size.
//! Every malformed or oversized input maps to a typed status, never a
//! panic; every read is under a short poll timeout so a slow-loris
//! client costs one worker at most its idle budget.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on the request head (request line + headers). 8 KiB is
/// the conventional serverside default (Apache/nginx); our requests
/// are a short query string, so this is generous.
pub(crate) const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Hard cap on a request body (POST /query JSON). Far above any
/// realistic query payload, far below anything that could pressure
/// memory across `accept_depth` concurrent connections.
pub(crate) const MAX_BODY_BYTES: usize = 64 * 1024;

/// Cap on header count, to bound the parsed-header Vec.
const MAX_HEADERS: usize = 64;

/// Socket read-poll granularity. Reads block at most this long per
/// syscall so the loop can re-check the cumulative idle budget and
/// the drain flag between polls.
pub(crate) const READ_POLL: Duration = Duration::from_millis(50);

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    pub method: String,
    /// Raw request target (path plus optional `?query`).
    pub target: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub(crate) fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close after this response.
    pub(crate) fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Typed protocol violations, each with its response status.
#[derive(Debug)]
pub(crate) enum HttpError {
    /// Malformed request line, header, or body framing.
    Bad(&'static str),
    /// Head grew past [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Declared body larger than [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// POST without a `Content-Length` (chunked is unsupported).
    LengthRequired,
}

impl HttpError {
    pub(crate) fn status(&self) -> u16 {
        match self {
            HttpError::Bad(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
        }
    }

    pub(crate) fn message(&self) -> &'static str {
        match self {
            HttpError::Bad(m) => m,
            HttpError::HeadTooLarge => "request head exceeds 8 KiB",
            HttpError::BodyTooLarge => "request body exceeds 64 KiB",
            HttpError::LengthRequired => {
                "POST requires Content-Length (chunked transfer unsupported)"
            }
        }
    }
}

/// What one read attempt produced.
pub(crate) enum ReadOutcome {
    Request(Request),
    /// Clean EOF before any request bytes (client closed keep-alive).
    Closed,
    /// Protocol violation — answer `err.status()`, then close.
    Error(HttpError),
    /// Idle past the read budget — answer 408 best-effort, close.
    TimedOut,
    /// Idle between requests while the server drains — close quietly.
    Draining,
}

/// Read one request from `stream`. `carry` holds bytes read past the
/// previous request on this connection (keep-alive pipelining) and is
/// left holding any bytes past this one. The caller must have set the
/// stream's read timeout to [`READ_POLL`]; `idle_budget` bounds the
/// *cumulative* time spent waiting without receiving a byte.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    idle_budget: Duration,
    draining: &dyn Fn() -> bool,
) -> ReadOutcome {
    let mut buf = std::mem::take(carry);
    let start_len = buf.len();
    let mut idle = Duration::ZERO;
    let mut chunk = [0u8; 4096];
    // Hard wall-clock bound for the whole request: a slow-loris
    // client trickling one byte per poll resets the idle counter, so
    // idle time alone cannot bound it. 4x the idle budget is plenty
    // for any legitimate client of requests this small.
    let t_start = Instant::now();
    let total_budget = idle_budget.saturating_mul(4);

    // Phase 1: accumulate until the head terminator.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if !buf.is_empty() && t_start.elapsed() >= total_budget {
            return ReadOutcome::TimedOut;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Error(HttpError::HeadTooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Error(HttpError::Bad("truncated request head"))
                };
            }
            Ok(n) => {
                idle = Duration::ZERO;
                // A sane `Read` impl never returns n > chunk.len();
                // stay total anyway so the connection path cannot
                // index out of bounds on a misbehaving stream.
                buf.extend_from_slice(chunk.get(..n).unwrap_or(chunk.as_slice()));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if buf.len() == start_len && buf.is_empty() && draining() {
                    return ReadOutcome::Draining;
                }
                idle += READ_POLL;
                if idle >= idle_budget {
                    return if buf.is_empty() {
                        ReadOutcome::Draining
                    } else {
                        ReadOutcome::TimedOut
                    };
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    };

    if head_end.0 > MAX_HEAD_BYTES {
        // The terminator can arrive in the same burst as an oversized
        // head, so the in-loop cap alone is not enough.
        return ReadOutcome::Error(HttpError::HeadTooLarge);
    }
    // `find_head_end` guarantees `head_end.0 + head_end.1 <= buf.len()`;
    // use the total accessors anyway — this path must stay panic-free
    // whatever a future terminator scan returns.
    let (head, rest) = (
        buf.get(..head_end.0).unwrap_or_default(),
        buf.get(head_end.0 + head_end.1..).unwrap_or_default(),
    );
    let head = match std::str::from_utf8(head) {
        Ok(h) => h,
        Err(_) => return ReadOutcome::Error(HttpError::Bad("request head is not UTF-8")),
    };
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return ReadOutcome::Error(HttpError::Bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Error(HttpError::Bad("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return ReadOutcome::Error(HttpError::HeadTooLarge);
        }
        let Some((k, v)) = line.split_once(':') else {
            return ReadOutcome::Error(HttpError::Bad("malformed header line"));
        };
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    let mut req = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };

    // Phase 2: body framing.
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return ReadOutcome::Error(HttpError::Bad("chunked transfer unsupported"));
    }
    let content_length = match req.header("content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ReadOutcome::Error(HttpError::Bad("invalid Content-Length")),
        },
        None if req.method == "POST" => return ReadOutcome::Error(HttpError::LengthRequired),
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return ReadOutcome::Error(HttpError::BodyTooLarge);
    }
    let mut body = rest.to_vec();
    let mut idle = Duration::ZERO;
    while body.len() < content_length {
        if t_start.elapsed() >= total_budget {
            return ReadOutcome::TimedOut;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Error(HttpError::Bad("truncated request body")),
            Ok(n) => {
                idle = Duration::ZERO;
                body.extend_from_slice(chunk.get(..n).unwrap_or(chunk.as_slice()));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += READ_POLL;
                if idle >= idle_budget {
                    return ReadOutcome::TimedOut;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    *carry = body.split_off(content_length);
    req.body = body;
    ReadOutcome::Request(req)
}

/// Find the end of the head: byte offset of the terminator and its
/// length (supports both `\r\n\r\n` and bare `\n\n`).
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l + 1 < c => Some((l, 2)),
        (Some(c), _) => Some((c, 4)),
        (None, Some(l)) => Some((l, 2)),
        (None, None) => None,
    }
}

/// One response to write.
pub(crate) struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`, `X-Request-Id`).
    pub extra: Vec<(&'static str, String)>,
    pub close: bool,
}

impl Response {
    pub(crate) fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: Vec::new(),
            close: false,
        }
    }

    pub(crate) fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain",
            body: body.as_bytes().to_vec(),
            extra: Vec::new(),
            close: false,
        }
    }

    pub(crate) fn with(mut self, name: &'static str, value: String) -> Response {
        self.extra.push((name, value));
        self
    }

    pub(crate) fn closing(mut self) -> Response {
        self.close = true;
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Serialize and send `resp`. Write errors are returned for the
/// caller to drop the connection; they are never fatal to the worker.
pub(crate) fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (k, v) in &resp.extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if resp.close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    let mut out = head.into_bytes();
    out.extend_from_slice(&resp.body);
    stream.write_all(&out)?;
    stream.flush()
}

/// Split a request target into (path, query-string).
pub(crate) fn split_target(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    }
}

/// Extract and percent-decode one query-string parameter. Returns
/// `Some(Err(()))` for present-but-undecodable values so the caller
/// can answer 400 rather than silently dropping the parameter.
pub(crate) fn query_param(qs: &str, key: &str) -> Option<Result<String, ()>> {
    qs.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then(|| percent_decode(v).ok_or(()))
    })
}

/// Percent-decode, treating `+` as space. `None` on malformed escapes
/// or non-UTF-8 results.
pub(crate) fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        match byte {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_params() {
        let (p, q) = split_target("/query?q=car+engine&top=5");
        assert_eq!(p, "/query");
        assert_eq!(query_param(q, "q"), Some(Ok("car engine".to_string())));
        assert_eq!(query_param(q, "top"), Some(Ok("5".to_string())));
        assert_eq!(query_param(q, "missing"), None);
        assert_eq!(query_param("q=%zz", "q"), Some(Err(())));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b%2Bc"), Some("a b+c".to_string()));
        assert_eq!(percent_decode("caf%C3%A9"), Some("café".to_string()));
        assert_eq!(percent_decode("%4"), None);
        assert_eq!(percent_decode("%gg"), None);
        assert_eq!(percent_decode("%FF"), None); // invalid UTF-8
    }

    #[test]
    fn head_end_variants() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some((14, 4)));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some((14, 2)));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
