//! Accept loop, connection workers, endpoint routing, and drain.
//!
//! Thread layout: the caller's thread runs the accept loop; `threads`
//! workers each handle one connection at a time (keep-alive); one
//! batcher thread owns the model and scores. Connections hand off
//! through a bounded channel, queries through the bounded
//! [`batcher::Queue`] — every stage sheds instead of queueing
//! unboundedly.
//!
//! Endpoints:
//!
//! | route          | behavior                                        |
//! |----------------|-------------------------------------------------|
//! | `GET /query`   | `?q=` text, `&top=` count, `&timeout_ms=` cap   |
//! | `POST /query`  | JSON `{"q": ..., "top": ..., "timeout_ms": ...}`|
//! | `GET /healthz` | liveness: 200 while the process serves          |
//! | `GET /readyz`  | readiness: 503 once draining                    |
//! | `GET /stats`   | JSON counters (requests, shed, timeouts, …)     |

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use lsi_core::{LsiModel, RankedList};
use lsi_obs::{Histogram, Json, RunReport};

use crate::batcher::{self, Job, Queue};
use crate::http::{self, HttpError, ReadOutcome, Request, Response};

/// Server tuning knobs. Defaults favor a small-footprint daemon; the
/// CLI exposes the load-bearing ones.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1` unless told otherwise — this daemon
    /// has no auth, so binding wide is an explicit operator choice).
    pub addr: String,
    /// Bind port; 0 picks an ephemeral port (see [`Server::local_addr`]).
    pub port: u16,
    /// Connection-worker count.
    pub threads: usize,
    /// Scoring-queue bound; queries past it shed with 503.
    pub queue_depth: usize,
    /// Accept→worker handoff bound; connections past it shed with 503.
    pub accept_depth: usize,
    /// Max queries coalesced into one scoring batch.
    pub max_batch: usize,
    /// Deadline applied when a request names none.
    pub default_timeout_ms: u64,
    /// Hard cap on client-requested deadlines.
    pub max_timeout_ms: u64,
    /// Cumulative idle budget while reading one request.
    pub read_timeout_ms: u64,
    /// Socket write timeout.
    pub write_timeout_ms: u64,
    /// Result count when a request names none.
    pub default_top: usize,
    /// Requests served per connection before forcing a close.
    pub keep_alive_max: usize,
    /// Whether the batcher walks the degradation ladder under load.
    pub degrade: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1".to_string(),
            port: 0,
            threads: 4,
            queue_depth: 64,
            accept_depth: 128,
            max_batch: 32,
            default_timeout_ms: 2_000,
            max_timeout_ms: 30_000,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            default_top: 10,
            keep_alive_max: 10_000,
            degrade: true,
        }
    }
}

/// Monotonic serving counters, independent of whether the metrics
/// registry is enabled (they feed `/stats` and the final report).
/// All accesses are Relaxed: each counter is a standalone tally read
/// for reporting; no ordering with other memory is implied.
#[derive(Debug, Default)]
pub struct Stats {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub queries: AtomicU64,
    pub shed: AtomicU64,
    pub timeouts: AtomicU64,
    pub parse_errors: AtomicU64,
    pub panics: AtomicU64,
    pub accept_drops: AtomicU64,
    pub batches: AtomicU64,
    pub batched_queries: AtomicU64,
    pub max_batch_seen: AtomicU64,
    pub degrade_level: AtomicU64,
    /// End-to-end `/query` latency in microseconds for queries that
    /// entered the scoring queue (including timeouts; shed requests
    /// never wait and are excluded), log-bucketed so `/stats` can
    /// report p50/p90/p99 without sample storage.
    pub latency_us: Histogram,
}

impl Stats {
    pub(crate) fn add_timeout(&self) {
        // Relaxed: monitoring counter; no ordering with other state.
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_panic(&self) {
        // Relaxed: monitoring counter; no ordering with other state.
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: u64, level: u8) {
        // Relaxed: monitoring counters; readers only need eventual
        // values, never an ordering between them.
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(size, Ordering::Relaxed);
        self.max_batch_seen.fetch_max(size, Ordering::Relaxed);
        // Relaxed: monitoring gauge, same as the counters above.
        self.degrade_level.store(level as u64, Ordering::Relaxed);
    }

    fn latency_json(&self) -> Json {
        let snap = self.latency_us.snapshot();
        Json::obj(vec![
            ("count", Json::Num(snap.count as f64)),
            ("p50", Json::Num(snap.p50)),
            ("p90", Json::Num(snap.p90)),
            ("p99", Json::Num(snap.p99)),
            ("max", Json::Num(snap.max)),
        ])
    }

    fn to_json(&self, backlog: usize, draining: bool) -> Json {
        Json::obj(vec![
            ("connections", num(&self.connections)),
            ("requests", num(&self.requests)),
            ("queries", num(&self.queries)),
            ("shed", num(&self.shed)),
            ("timeouts", num(&self.timeouts)),
            ("parse_errors", num(&self.parse_errors)),
            ("panics", num(&self.panics)),
            ("accept_drops", num(&self.accept_drops)),
            ("batches", num(&self.batches)),
            ("batched_queries", num(&self.batched_queries)),
            ("max_batch_seen", num(&self.max_batch_seen)),
            ("degrade_level", num(&self.degrade_level)),
            ("queue_depth", Json::Num(backlog as f64)),
            ("draining", Json::Bool(draining)),
            ("latency_us", self.latency_json()),
        ])
    }
}

fn num(a: &AtomicU64) -> Json {
    // Relaxed: monitoring snapshot; tearing across counters is fine.
    Json::Num(a.load(Ordering::Relaxed) as f64)
}

/// Per-process request-id sequence (`r<pid>-<seq>`), echoed in
/// `X-Request-Id` and threaded into the query log's `trace_id`.
/// Relaxed: ids only need uniqueness.
static REQ_SEQ: AtomicU64 = AtomicU64::new(1);

fn next_request_id() -> String {
    format!(
        "r{}-{}",
        std::process::id(),
        // Relaxed: uniqueness comes from fetch_add itself.
        REQ_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// Extra slack past a request's deadline before the handler gives up
/// waiting on the batcher, covering reply-channel scheduling jitter.
const REPLY_SLACK: Duration = Duration::from_millis(50);

/// Advisory `Retry-After` (seconds) on shed responses.
const RETRY_AFTER_SECS: u32 = 1;

/// A bound listener, ready to serve one model.
pub struct Server {
    listener: TcpListener,
    local: SocketAddr,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<Stats>,
}

impl Server {
    /// Bind the configured address (port 0 = ephemeral).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((cfg.addr.as_str(), cfg.port))?;
        let local = listener.local_addr()?;
        Ok(Server {
            listener,
            local,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(Stats::default()),
        })
    }

    /// The actually-bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Handle that stops this server (tests, embedders). The process
    /// signal flag ([`crate::request_stop`]) is honored as well.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Shared counters, live while the server runs.
    pub fn stats(&self) -> Arc<Stats> {
        Arc::clone(&self.stats)
    }

    /// Serve until stopped, then drain and report. Blocks the calling
    /// thread (it becomes the accept loop).
    pub fn run(self, mut model: LsiModel) -> RunReport {
        let Server {
            listener,
            local,
            cfg,
            stop,
            stats,
        } = self;
        let t_start = Instant::now();
        if let Err(e) = listener.set_nonblocking(true) {
            lsi_obs::error!("serve: cannot set listener nonblocking: {e}");
        }
        let queue = Arc::new(Queue::new(cfg.queue_depth));
        let draining = Arc::new(AtomicBool::new(false));
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(cfg.accept_depth);
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut workers = Vec::with_capacity(cfg.threads);
        for w in 0..cfg.threads.max(1) {
            let conn_rx = Arc::clone(&conn_rx);
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let draining = Arc::clone(&draining);
            let cfg = cfg.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("lsi-serve-worker-{w}"))
                    .spawn(move || worker_loop(&conn_rx, &cfg, &queue, &stats, &draining)),
            );
        }
        let batcher = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let degrade = cfg.degrade;
            let max_batch = cfg.max_batch.max(1);
            std::thread::Builder::new()
                .name("lsi-serve-batcher".to_string())
                .spawn(move || {
                    batcher::run(&mut model, &queue, max_batch, &stats, degrade);
                })
        };

        // Accept loop.
        let write_timeout = Duration::from_millis(cfg.write_timeout_ms.max(1));
        // Relaxed: `stop`/`draining` are independent on/off gates and
        // the stats fields are monitoring counters; nothing below
        // requires an ordering between them.
        while !stop.load(Ordering::Relaxed) && !crate::stop_requested() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Relaxed: monitoring counter.
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    match lsi_fault::eval(lsi_fault::points::SERVE_ACCEPT) {
                        Some(lsi_fault::Fired::ReturnErr) => {
                            // Injected accept failure: the connection is
                            // dropped, the loop keeps accepting.
                            // Relaxed: monitoring counter.
                            stats.accept_drops.fetch_add(1, Ordering::Relaxed);
                            lsi_obs::count("serve.accept.drop.count", 1);
                            continue;
                        }
                        Some(lsi_fault::Fired::InjectNan) | None => {}
                    }
                    match conn_tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut stream)) => {
                            // Every worker busy and the handoff buffer
                            // full: shed at the door.
                            // Relaxed: monitoring counter.
                            stats.shed.fetch_add(1, Ordering::Relaxed);
                            lsi_obs::count("serve.shed.count", 1);
                            let _ = stream.set_write_timeout(Some(write_timeout));
                            let resp = overloaded_response("connection queue full").closing();
                            let _ = http::write_response(&mut stream, &resp);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    lsi_obs::warn!("serve: accept error: {e}");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }

        // Drain: stop accepting (done — the loop exited), tell workers
        // via the flag, let them finish in-flight requests, then shut
        // the scoring queue down and collect the final report.
        // Relaxed: the drain flag is an independent gate; workers
        // finishing in-flight requests synchronize via the queue mutex
        // and channel disconnects, not via this store.
        draining.store(true, Ordering::Relaxed);
        lsi_obs::info!("serve: draining");
        drop(conn_tx);
        for w in workers {
            match w {
                Ok(handle) => {
                    if handle.join().is_err() {
                        // Worker panics are contained per-connection;
                        // reaching here means containment itself failed.
                        stats.add_panic();
                    }
                }
                Err(e) => lsi_obs::error!("serve: worker spawn failed: {e}"),
            }
        }
        queue.close();
        match batcher {
            Ok(handle) => {
                if handle.join().is_err() {
                    stats.add_panic();
                }
            }
            Err(e) => lsi_obs::error!("serve: batcher spawn failed: {e}"),
        }

        let mut report = RunReport::new("lsi_serve")
            .meta("addr", Json::Str(local.to_string()))
            .meta("threads", Json::Num(cfg.threads as f64))
            .meta("queue_depth", Json::Num(cfg.queue_depth as f64))
            .meta("max_batch", Json::Num(cfg.max_batch as f64))
            .meta("degrade", Json::Bool(cfg.degrade));
        report.result("uptime_secs", Json::Num(t_start.elapsed().as_secs_f64()));
        report.result("connections", num(&stats.connections));
        report.result("requests", num(&stats.requests));
        report.result("queries", num(&stats.queries));
        report.result("shed", num(&stats.shed));
        report.result("timeouts", num(&stats.timeouts));
        report.result("parse_errors", num(&stats.parse_errors));
        report.result("panics", num(&stats.panics));
        report.result("accept_drops", num(&stats.accept_drops));
        report.result("batches", num(&stats.batches));
        report.result("batched_queries", num(&stats.batched_queries));
        report.result("max_batch_seen", num(&stats.max_batch_seen));
        report.result("latency_us", stats.latency_json());
        report
    }
}

fn overloaded_response(why: &str) -> Response {
    Response::json(
        503,
        Json::obj(vec![
            ("error", Json::Str("overloaded".to_string())),
            ("detail", Json::Str(why.to_string())),
        ])
        .to_string_compact(),
    )
    .with("Retry-After", RETRY_AFTER_SECS.to_string())
}

fn worker_loop(
    conn_rx: &Mutex<mpsc::Receiver<TcpStream>>,
    cfg: &ServeConfig,
    queue: &Queue,
    stats: &Stats,
    draining: &AtomicBool,
) {
    loop {
        // Hold the lock only for the blocking recv; handling happens
        // after release so other workers can take the next connection.
        let conn = {
            let rx = conn_rx.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv()
        };
        let Ok(mut stream) = conn else {
            return; // accept loop hung up: drain complete for this worker
        };
        // Contain per-connection panics: answer 500 and keep serving.
        let result = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(&mut stream, cfg, queue, stats, draining);
        }));
        if result.is_err() {
            stats.add_panic();
            lsi_obs::count("serve.panic.count", 1);
            lsi_obs::error!("panic contained in connection handler; worker continues");
            let resp = Response::json(
                500,
                Json::obj(vec![(
                    "error",
                    Json::Str("internal error (contained)".to_string()),
                )])
                .to_string_compact(),
            )
            .closing();
            let _ = http::write_response(&mut stream, &resp);
        }
    }
}

fn handle_connection(
    stream: &mut TcpStream,
    cfg: &ServeConfig,
    queue: &Queue,
    stats: &Stats,
    draining: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(http::READ_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))));
    let idle_budget = Duration::from_millis(cfg.read_timeout_ms.max(1));
    let mut carry = Vec::new();
    // Relaxed: drain flag is an advisory gate, re-checked per request.
    let is_draining = || draining.load(Ordering::Relaxed);

    for served in 0..cfg.keep_alive_max.max(1) {
        let outcome = http::read_request(stream, &mut carry, idle_budget, &is_draining);
        let req = match outcome {
            ReadOutcome::Request(req) => req,
            ReadOutcome::Closed | ReadOutcome::Draining => return,
            ReadOutcome::TimedOut => {
                let resp = Response::text(408, "request read timed out\n").closing();
                let _ = http::write_response(stream, &resp);
                return;
            }
            ReadOutcome::Error(err) => {
                // Relaxed: monitoring counter.
                stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                lsi_obs::count("serve.parse.error.count", 1);
                let resp = error_response(&err).closing();
                let _ = http::write_response(stream, &resp);
                return;
            }
        };
        // Relaxed: monitoring counter.
        stats.requests.fetch_add(1, Ordering::Relaxed);
        lsi_obs::count("serve.requests.count", 1);
        let mut resp = route(&req, cfg, queue, stats, draining);
        let last = req.wants_close()
            || is_draining()
            || served + 1 == cfg.keep_alive_max.max(1);
        if last {
            resp.close = true;
        }
        if http::write_response(stream, &resp).is_err() || resp.close {
            return;
        }
    }
}

fn error_response(err: &HttpError) -> Response {
    Response::json(
        err.status(),
        Json::obj(vec![("error", Json::Str(err.message().to_string()))]).to_string_compact(),
    )
}

fn bad_request(msg: &str) -> Response {
    Response::json(
        400,
        Json::obj(vec![("error", Json::Str(msg.to_string()))]).to_string_compact(),
    )
}

fn route(
    req: &Request,
    cfg: &ServeConfig,
    queue: &Queue,
    stats: &Stats,
    draining: &AtomicBool,
) -> Response {
    // The serve.parse failpoint models a request that defeats routing
    // validation: a typed 400, never a crash.
    match lsi_fault::eval(lsi_fault::points::SERVE_PARSE) {
        Some(lsi_fault::Fired::ReturnErr) => {
            // Relaxed: monitoring counter.
            stats.parse_errors.fetch_add(1, Ordering::Relaxed);
            lsi_obs::count("serve.parse.error.count", 1);
            return bad_request(&format!(
                "fault injected at failpoint `{}`",
                lsi_fault::points::SERVE_PARSE
            ));
        }
        Some(lsi_fault::Fired::InjectNan) | None => {}
    }
    let (path, qs) = http::split_target(&req.target);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let _span = lsi_obs::span("serve.healthz");
            Response::text(200, "ok\n")
        }
        ("GET", "/readyz") => {
            let _span = lsi_obs::span("serve.readyz");
            // Relaxed: advisory drain gate; stale by a beat is fine.
            if draining.load(Ordering::Relaxed) {
                Response::text(503, "draining\n")
            } else if queue.len() >= cfg.queue_depth {
                Response::text(503, "overloaded\n")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/stats") => Response::json(
            200,
            stats
                // Relaxed: monitoring snapshot of an advisory flag.
                .to_json(queue.len(), draining.load(Ordering::Relaxed))
                .to_string_compact(),
        ),
        ("GET", "/query") => match parse_get_query(qs, cfg) {
            Ok(params) => run_query(params, queue, stats),
            Err(msg) => bad_request(msg),
        },
        ("POST", "/query") => match parse_post_query(&req.body, cfg) {
            Ok(params) => run_query(params, queue, stats),
            Err(msg) => bad_request(&msg),
        },
        (_, "/query") => Response::text(405, "use GET or POST\n").with("Allow", "GET, POST".to_string()),
        (_, "/healthz" | "/readyz" | "/stats") => {
            Response::text(405, "use GET\n").with("Allow", "GET".to_string())
        }
        _ => Response::text(404, "unknown path\n"),
    }
}

struct QueryParams {
    text: String,
    top: usize,
    timeout: Duration,
}

fn parse_get_query(qs: &str, cfg: &ServeConfig) -> Result<QueryParams, &'static str> {
    let text = match http::query_param(qs, "q") {
        Some(Ok(t)) if !t.trim().is_empty() => t,
        Some(Ok(_)) => return Err("empty `q` parameter"),
        Some(Err(())) => return Err("undecodable `q` parameter"),
        None => return Err("missing `q` parameter"),
    };
    let top = match http::query_param(qs, "top") {
        Some(Ok(v)) => v.parse::<usize>().map_err(|_| "invalid `top` parameter")?,
        Some(Err(())) => return Err("undecodable `top` parameter"),
        None => cfg.default_top,
    };
    let timeout_ms = match http::query_param(qs, "timeout_ms") {
        Some(Ok(v)) => v
            .parse::<u64>()
            .map_err(|_| "invalid `timeout_ms` parameter")?,
        Some(Err(())) => return Err("undecodable `timeout_ms` parameter"),
        None => cfg.default_timeout_ms,
    };
    Ok(make_params(text, top, timeout_ms, cfg))
}

fn parse_post_query(body: &[u8], cfg: &ServeConfig) -> Result<QueryParams, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let json = lsi_obs::parse_json(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    let q = json
        .get("q")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "body must be an object with a string `q`".to_string())?;
    if q.trim().is_empty() {
        return Err("empty `q`".to_string());
    }
    let top = match json.get("top") {
        Some(v) => as_count(v).ok_or_else(|| "invalid `top`".to_string())?,
        None => cfg.default_top,
    };
    let timeout_ms = match json.get("timeout_ms") {
        Some(v) => as_count(v).ok_or_else(|| "invalid `timeout_ms`".to_string())? as u64,
        None => cfg.default_timeout_ms,
    };
    Ok(make_params(q.to_string(), top, timeout_ms, cfg))
}

/// A JSON number usable as a count: finite, non-negative, integral.
fn as_count(v: &Json) -> Option<usize> {
    let n = v.as_f64()?;
    // lsi-analyze: allow(float-safety) — exact integrality test behind an is_finite guard; NaN already rejected.
    (n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64).then_some(n as usize)
}

fn make_params(text: String, top: usize, timeout_ms: u64, cfg: &ServeConfig) -> QueryParams {
    let capped = timeout_ms.clamp(1, cfg.max_timeout_ms.max(1));
    QueryParams {
        text,
        top: top.max(1),
        timeout: Duration::from_millis(capped),
    }
}

fn run_query(params: QueryParams, queue: &Queue, stats: &Stats) -> Response {
    let _span = lsi_obs::span("serve.query");
    let id = next_request_id();
    let t0 = Instant::now();
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Result<RankedList, String>>(1);
    let job = Job {
        text: params.text,
        z: params.top,
        trace_id: id.clone(),
        enqueued: t0,
        deadline: t0 + params.timeout,
        reply: reply_tx,
    };
    if queue.try_push(job).is_err() {
        // Relaxed: monitoring counter.
        stats.shed.fetch_add(1, Ordering::Relaxed);
        lsi_obs::count("serve.shed.count", 1);
        return overloaded_response("scoring queue full").with("X-Request-Id", id);
    }
    // Relaxed: monitoring counter.
    stats.queries.fetch_add(1, Ordering::Relaxed);
    let wait = params.timeout + REPLY_SLACK;
    let outcome = reply_rx.recv_timeout(wait);
    let elapsed_us = t0.elapsed().as_secs_f64() * 1e6;
    lsi_obs::observe("serve.query.us", elapsed_us);
    stats.latency_us.record(elapsed_us);
    match outcome {
        Ok(Ok(ranked)) => {
            let results: Vec<Json> = ranked
                .matches
                .iter()
                .map(|m| {
                    Json::obj(vec![
                        ("id", Json::Str(m.id.to_string())),
                        ("doc", Json::Num(m.doc as f64)),
                        ("score", Json::Num(m.cosine)),
                    ])
                })
                .collect();
            let body = Json::obj(vec![
                ("trace_id", Json::Str(id.clone())),
                ("results", Json::Arr(results)),
            ]);
            Response::json(200, body.to_string_compact()).with("X-Request-Id", id)
        }
        Ok(Err(msg)) => Response::json(
            500,
            Json::obj(vec![
                ("trace_id", Json::Str(id.clone())),
                ("error", Json::Str(msg)),
            ])
            .to_string_compact(),
        )
        .with("X-Request-Id", id),
        Err(RecvTimeoutError::Timeout) => {
            // Scored too late (the batcher may still answer into the
            // rendezvous buffer; that send is discarded harmlessly).
            stats.add_timeout();
            lsi_obs::count("serve.timeout.count", 1);
            deadline_response(&id)
        }
        Err(RecvTimeoutError::Disconnected) => {
            // The batcher dropped the job: expired while queued
            // (already counted there) or shutdown mid-flight.
            deadline_response(&id)
        }
    }
}

fn deadline_response(id: &str) -> Response {
    Response::json(
        504,
        Json::obj(vec![
            ("trace_id", Json::Str(id.to_string())),
            ("error", Json::Str("deadline exceeded".to_string())),
        ])
        .to_string_compact(),
    )
    .with("X-Request-Id", id.to_string())
}
