//! End-to-end daemon tests over real sockets: routing, batching,
//! shedding, deadlines, failpoint containment, and drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use lsi_core::{LsiModel, LsiOptions};
use lsi_obs::RunReport;
use lsi_serve::{ServeConfig, Server, Stats};
use lsi_text::{Corpus, ParsingRules, TermWeighting};

fn tiny_model() -> LsiModel {
    let corpus = Corpus::from_pairs([
        ("cars1", "car engine wheel motor car"),
        ("cars2", "automobile engine motor chassis"),
        ("cars3", "car automobile driver wheel"),
        ("zoo1", "elephant lion zebra elephant"),
        ("zoo2", "lion zebra giraffe elephant"),
        ("zoo3", "zebra giraffe lion safari"),
    ]);
    let options = LsiOptions {
        k: 2,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::none(),
        svd_seed: 3,
    };
    LsiModel::build(&corpus, &options).unwrap().0
}

struct Running {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<Stats>,
    handle: JoinHandle<RunReport>,
}

impl Running {
    fn start(cfg: ServeConfig) -> Running {
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr();
        let stop = server.stop_handle();
        let stats = server.stats();
        let model = tiny_model();
        let handle = std::thread::spawn(move || server.run(model));
        Running {
            addr,
            stop,
            stats,
            handle,
        }
    }

    fn finish(self) -> RunReport {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap()
    }
}

/// One-shot client: send raw bytes, read to EOF, return
/// (status, full response text). Status 0 means the connection was
/// dropped before any response bytes.
fn exchange(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(request.as_bytes()).unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    let status = out
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    (status, out)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

/// Failpoint state is process-global; serialize the tests that arm it.
fn fault_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[test]
fn endpoints_route_and_validate() {
    let srv = Running::start(ServeConfig::default());

    let (code, body) = get(srv.addr, "/healthz");
    assert_eq!((code, body.contains("ok")), (200, true));
    let (code, _) = get(srv.addr, "/readyz");
    assert_eq!(code, 200);

    let (code, body) = get(srv.addr, "/query?q=car+motor&top=2");
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("\"results\""), "{body}");
    assert!(body.contains("cars"), "{body}");
    assert!(body.contains("X-Request-Id: r"), "{body}");

    let post = "{\"q\": \"zebra lion\", \"top\": 3}";
    let (code, body) = exchange(
        srv.addr,
        &format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{post}",
            post.len()
        ),
    );
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("zoo"), "{body}");

    // Typed client errors, one per validation layer.
    assert_eq!(get(srv.addr, "/query").0, 400, "missing q");
    assert_eq!(get(srv.addr, "/query?q=car&top=xyz").0, 400, "bad top");
    assert_eq!(get(srv.addr, "/query?q=%zz").0, 400, "bad escape");
    assert_eq!(get(srv.addr, "/nope").0, 404);
    let (code, body) = exchange(
        srv.addr,
        "DELETE /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(code, 405);
    assert!(body.contains("Allow: GET, POST"), "{body}");
    let (code, _) = exchange(srv.addr, "garbage\r\n\r\n");
    assert_eq!(code, 400);
    let (code, _) = exchange(
        srv.addr,
        "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\nno-length",
    );
    assert_eq!(code, 411);

    let (code, body) = get(srv.addr, "/stats");
    assert_eq!(code, 200);
    assert!(body.contains("\"requests\""), "{body}");
    // Latency percentiles: queries ran above, so the histogram has
    // samples and a positive median.
    let json_start = body.find("{").expect("stats body has JSON");
    let stats = lsi_obs::parse_json(&body[json_start..]).expect("stats JSON parses");
    let lat = stats.get("latency_us").expect("latency_us block present");
    let count = lat.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0);
    assert!(count >= 2.0, "latency samples recorded: {body}");
    for key in ["p50", "p90", "p99", "max"] {
        let v = lat.get(key).and_then(|v| v.as_f64()).unwrap_or(-1.0);
        assert!(v > 0.0, "latency {key} positive: {body}");
    }

    let report = srv.finish();
    let json = report.to_json().to_string_compact();
    assert!(json.contains("\"lsi_serve\""), "{json}");
}

#[test]
fn concurrent_queries_all_answer_and_batches_form() {
    let srv = Running::start(ServeConfig {
        threads: 8,
        ..ServeConfig::default()
    });
    let addr = srv.addr;
    let mut clients = Vec::new();
    for c in 0..8 {
        clients.push(std::thread::spawn(move || {
            let mut codes = Vec::new();
            for i in 0..6 {
                let q = if (c + i) % 2 == 0 { "car+engine" } else { "lion+zebra" };
                codes.push(get(addr, &format!("/query?q={q}&top=2")).0);
            }
            codes
        }));
    }
    for client in clients {
        for code in client.join().unwrap() {
            assert_eq!(code, 200);
        }
    }
    assert_eq!(srv.stats.queries.load(Ordering::Relaxed), 48);
    assert_eq!(srv.stats.shed.load(Ordering::Relaxed), 0);
    let report = srv.finish();
    let json = report.to_json().to_string_compact();
    assert!(json.contains("\"queries\":48"), "{json}");
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let srv = Running::start(ServeConfig::default());
    let mut s = TcpStream::connect(srv.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for _ in 0..3 {
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = [0u8; 1024];
        let n = s.read(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..n]);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    }
    srv.finish();
}

#[test]
fn parse_failpoint_answers_400_then_recovers() {
    let _g = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
    let srv = Running::start(ServeConfig::default());
    lsi_fault::arm_from_spec("serve.parse=return-err:1").unwrap();
    let (code, body) = get(srv.addr, "/query?q=car");
    assert_eq!(code, 400, "{body}");
    assert!(body.contains("serve.parse"), "{body}");
    lsi_fault::clear();
    let (code, _) = get(srv.addr, "/query?q=car");
    assert_eq!(code, 200);
    srv.finish();
}

#[test]
fn batch_failpoint_errors_are_typed_and_panic_is_contained() {
    let _g = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
    let srv = Running::start(ServeConfig::default());

    lsi_fault::arm_from_spec("serve.batch=return-err:1").unwrap();
    let (code, body) = get(srv.addr, "/query?q=car");
    assert_eq!(code, 500, "{body}");
    assert!(body.contains("serve.batch"), "{body}");
    lsi_fault::clear();

    lsi_fault::arm_from_spec("serve.batch=panic:1").unwrap();
    let (code, body) = get(srv.addr, "/query?q=car");
    assert_eq!(code, 500, "{body}");
    assert!(body.contains("contained"), "{body}");
    lsi_fault::clear();

    // The batcher survived both injections.
    let (code, _) = get(srv.addr, "/query?q=car");
    assert_eq!(code, 200);
    assert_eq!(srv.stats.panics.load(Ordering::Relaxed), 1);
    srv.finish();
}

#[test]
fn accept_failpoint_drops_connection_and_keeps_accepting() {
    let _g = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
    let srv = Running::start(ServeConfig::default());
    lsi_fault::arm_from_spec("serve.accept=return-err:1").unwrap();
    let (code, _) = get(srv.addr, "/healthz");
    assert_eq!(code, 0, "dropped before any response");
    lsi_fault::clear();
    let (code, _) = get(srv.addr, "/healthz");
    assert_eq!(code, 200);
    assert_eq!(srv.stats.accept_drops.load(Ordering::Relaxed), 1);
    srv.finish();
}

#[test]
fn expired_deadline_answers_504_without_scoring() {
    let _g = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
    let srv = Running::start(ServeConfig::default());
    // Every batch stalls 150 ms; a 30 ms deadline expires while queued
    // or mid-stall either way.
    lsi_fault::arm_from_spec("serve.batch=delay-ms(150)").unwrap();
    let (code, body) = get(srv.addr, "/query?q=car&timeout_ms=30");
    lsi_fault::clear();
    assert_eq!(code, 504, "{body}");
    assert!(body.contains("deadline exceeded"), "{body}");
    assert!(srv.stats.timeouts.load(Ordering::Relaxed) >= 1);
    srv.finish();
}

#[test]
fn overload_sheds_with_retry_after_and_never_queues_unboundedly() {
    let _g = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
    let srv = Running::start(ServeConfig {
        threads: 8,
        queue_depth: 2,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let addr = srv.addr;
    // Stall scoring so the depth-2 queue cannot drain while 12
    // concurrent clients pile on.
    lsi_fault::arm_from_spec("serve.batch=delay-ms(100)").unwrap();
    let mut clients = Vec::new();
    for _ in 0..12 {
        clients.push(std::thread::spawn(move || {
            get(addr, "/query?q=car&timeout_ms=5000")
        }));
    }
    let mut shed = 0;
    for client in clients {
        let (code, body) = client.join().unwrap();
        match code {
            200 | 504 => {}
            503 => {
                shed += 1;
                assert!(body.contains("Retry-After: 1"), "{body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    lsi_fault::clear();
    assert!(shed >= 1, "queue bound was never enforced");
    assert_eq!(srv.stats.shed.load(Ordering::Relaxed), shed);
    srv.finish();
}

#[test]
fn stop_drains_in_flight_requests_before_reporting() {
    let _g = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
    let srv = Running::start(ServeConfig::default());
    let addr = srv.addr;
    // Slow scoring so the request is provably in flight when stop hits.
    lsi_fault::arm_from_spec("serve.batch=delay-ms(200)").unwrap();
    let inflight =
        std::thread::spawn(move || get(addr, "/query?q=car&timeout_ms=5000"));
    std::thread::sleep(Duration::from_millis(50));
    let report = srv.finish();
    lsi_fault::clear();
    let (code, body) = inflight.join().unwrap();
    assert_eq!(code, 200, "in-flight request dropped during drain: {body}");
    let json = report.to_json().to_string_compact();
    assert!(json.contains("\"queries\":1"), "{json}");
}
