//! Hostile-input property tests for the serve wire protocol: whatever
//! bytes arrive on the socket — truncations, bit flips, oversized
//! frames, or pure garbage — the server must answer a typed 4xx (or
//! close the connection), never panic, never wedge a worker, and
//! never stop serving well-formed requests.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

use lsi_core::{LsiModel, LsiOptions};
use lsi_serve::{ServeConfig, Server};
use lsi_text::{Corpus, ParsingRules, TermWeighting};
use proptest::prelude::*;

/// One long-lived server shared by every case (leaked on purpose: the
/// test process exits when proptest is done).
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let corpus = Corpus::from_pairs([
            ("cars1", "car engine wheel motor car"),
            ("cars2", "automobile engine motor chassis"),
            ("zoo1", "elephant lion zebra elephant"),
            ("zoo2", "lion zebra giraffe elephant"),
        ]);
        let options = LsiOptions {
            k: 2,
            rules: ParsingRules {
                min_df: 1,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 3,
        };
        let model = LsiModel::build(&corpus, &options).unwrap().0;
        let server = Server::bind(ServeConfig {
            threads: 4,
            // Short read budget so even inputs that stall the parser
            // resolve fast (the hard total budget is 4x this).
            read_timeout_ms: 250,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        std::thread::spawn(move || server.run(model));
        addr
    })
}

/// Deliver `bytes`, half-close the write side (so a headless parser
/// sees EOF instead of waiting out its idle budget), and read the full
/// response. A `None` means the server dropped the connection without
/// responding — acceptable for garbage; a hang is not (bounded by the
/// client read timeout + server budgets).
fn deliver(bytes: &[u8]) -> Option<String> {
    let mut s = TcpStream::connect(server_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(bytes).unwrap();
    let _ = s.shutdown(Shutdown::Write);
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    (!out.is_empty()).then_some(out)
}

/// The protocol contract for hostile bytes: any response is a
/// well-formed HTTP/1.1 status line and never a 5xx (no input should
/// reach — let alone break — the scoring path as a server error).
fn assert_typed(resp: Option<String>, input: &[u8]) {
    if let Some(resp) = resp {
        assert!(
            resp.starts_with("HTTP/1.1 "),
            "malformed response {resp:?} for input {input:?}"
        );
        let code: u16 = resp[9..12].parse().unwrap_or(0);
        assert!(
            (200..500).contains(&code),
            "status {code} for input {input:?}: {resp:?}"
        );
    }
}

/// After any hostile input, a fresh connection must still serve.
fn assert_still_serving() {
    let resp = deliver(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap_or_default();
    assert!(resp.starts_with("HTTP/1.1 200"), "server wedged: {resp:?}");
}

fn valid_request() -> Vec<u8> {
    b"GET /query?q=car+engine&top=2&timeout_ms=2000 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_requests_never_wedge(cut in 0usize..90) {
        let doc = valid_request();
        let cut = cut.min(doc.len());
        assert_typed(deliver(&doc[..cut]), &doc[..cut]);
    }

    #[test]
    fn byte_mutations_never_wedge(pos in 0usize..90, byte in 0u8..=255) {
        let mut doc = valid_request();
        let pos = pos % doc.len();
        doc[pos] = byte;
        assert_typed(deliver(&doc), &doc);
    }

    #[test]
    fn arbitrary_garbage_never_wedges(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        assert_typed(deliver(&bytes), &bytes);
    }

    #[test]
    fn hostile_bodies_get_typed_errors(
        length in prop::sample::select(vec![
            "0".to_string(), "7".to_string(), "65537".to_string(),
            "999999999999".to_string(), "-1".to_string(), "NaN".to_string(),
            "18446744073709551616".to_string(),
        ]),
        body in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let mut doc = format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {length}\r\nConnection: close\r\n\r\n"
        ).into_bytes();
        doc.extend_from_slice(&body);
        assert_typed(deliver(&doc), &doc);
    }
}

#[test]
fn oversized_head_is_rejected_as_431() {
    let mut doc = b"GET /query?q=".to_vec();
    doc.extend(std::iter::repeat_n(b'a', 10 * 1024));
    doc.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let resp = deliver(&doc).unwrap_or_default();
    assert!(resp.starts_with("HTTP/1.1 431"), "{resp:?}");
    assert_still_serving();
}

#[test]
fn oversized_declared_body_is_rejected_as_413() {
    let doc = b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 100000\r\n\r\n";
    let resp = deliver(doc).unwrap_or_default();
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");
    assert_still_serving();
}

#[test]
fn slowloris_is_bounded_by_the_read_budget() {
    // Trickle a request one fragment at a time, slower than the poll
    // interval but never finishing; the server must cut the connection
    // within its hard total budget instead of parking a worker.
    let mut s = TcpStream::connect(server_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let start = std::time::Instant::now();
    let mut closed = false;
    for _ in 0..40 {
        if s.write_all(b"G").is_err() {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(60));
        let mut buf = [0u8; 512];
        match s.read(&mut buf) {
            Ok(0) => {
                closed = true;
                break;
            }
            Ok(_) => {
                // 408 arrived; the connection is closing.
                closed = true;
                break;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                closed = true;
                break;
            }
        }
    }
    assert!(closed, "slow-loris connection was never cut");
    // 250 ms idle budget, 1 s hard cap, generous scheduling slack.
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "took {:?}",
        start.elapsed()
    );
    assert_still_serving();
}

#[test]
fn pipelined_requests_on_one_connection_all_answer() {
    // Two requests in one write: the carry buffer must frame them.
    let mut s = TcpStream::connect(server_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let _ = s.shutdown(Shutdown::Write);
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert_eq!(out.matches("HTTP/1.1 200").count(), 2, "{out:?}");
}
