//! Spelling-correction dataset.
//!
//! Substrate for Kukich's LSI spelling application (§5.4 of the paper):
//! a lexicon of correctly spelled words plus a generator of single-edit
//! misspellings with known ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A compact lexicon of IR/medical-flavoured words (the domains the
/// paper's examples come from). Large enough that bigram/trigram
/// profiles meaningfully overlap and collide.
pub const LEXICON: &[&str] = &[
    "abnormalities", "algebra", "analysis", "automatic", "behavior", "biomedicine", "blood",
    "children", "cholesterol", "christmas", "clinical", "collection", "computation", "computer",
    "concept", "conference", "correction", "cortisone", "culture", "database", "decomposition",
    "depressed", "diagnosis", "discharge", "disease", "doctor", "document", "documents",
    "elephant", "engine", "engineering", "entropy", "evaluation", "experiment", "factor",
    "fast", "feedback", "filtering", "frequency", "generation", "hospital", "indexing",
    "information", "insulin", "intelligence", "interface", "keyword", "kidney", "language",
    "latent", "lexical", "library", "linear", "matching", "mathematics", "matrix", "medical",
    "medicine", "memory", "method", "model", "network", "neural", "oestrogen", "orthogonal",
    "paper", "patient", "patients", "performance", "physician", "precision", "pressure",
    "procedure", "processing", "protein", "query", "ranking", "recall", "research", "retrieval",
    "science", "semantic", "similarity", "singular", "sparse", "spelling", "statistics",
    "structure", "surgery", "symptom", "synonym", "system", "technique", "text", "theorem",
    "treatment", "updating", "value", "vector", "vocabulary",
];

/// A misspelling with its ground-truth correction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misspelling {
    /// The corrupted form.
    pub written: String,
    /// The intended lexicon word.
    pub intended: String,
}

/// Generate `n` single-edit misspellings of random lexicon words.
///
/// Edits mimic typing/OCR errors: substitute, delete, insert, or
/// transpose one character. The generator rejects corruptions that
/// collide with another lexicon word (those are unanswerable).
pub fn generate_misspellings(n: usize, seed: u64) -> Vec<Misspelling> {
    let mut rng = StdRng::seed_from_u64(seed);
    let letters: Vec<char> = "abcdefghijklmnopqrstuvwxyz".chars().collect();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let word = LEXICON[rng.random_range(0..LEXICON.len())];
        let mut chars: Vec<char> = word.chars().collect();
        match rng.random_range(0..4u8) {
            0 => {
                let i = rng.random_range(0..chars.len());
                chars[i] = letters[rng.random_range(0..letters.len())];
            }
            1 => {
                if chars.len() > 2 {
                    let i = rng.random_range(0..chars.len());
                    chars.remove(i);
                }
            }
            2 => {
                let i = rng.random_range(0..=chars.len());
                chars.insert(i, letters[rng.random_range(0..letters.len())]);
            }
            _ => {
                if chars.len() > 1 {
                    let i = rng.random_range(0..chars.len() - 1);
                    chars.swap(i, i + 1);
                }
            }
        }
        let written: String = chars.into_iter().collect();
        if written == word || LEXICON.contains(&written.as_str()) {
            continue;
        }
        out.push(Misspelling {
            written,
            intended: word.to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_is_sorted_unique_lowercase() {
        for w in LEXICON.windows(2) {
            assert!(w[0] < w[1], "lexicon out of order near {:?}", w);
        }
        for w in LEXICON {
            assert_eq!(*w, w.to_lowercase());
        }
    }

    #[test]
    fn generates_requested_count() {
        let ms = generate_misspellings(25, 1);
        assert_eq!(ms.len(), 25);
    }

    #[test]
    fn misspellings_differ_from_lexicon() {
        for m in generate_misspellings(50, 2) {
            assert_ne!(m.written, m.intended);
            assert!(!LEXICON.contains(&m.written.as_str()));
            assert!(LEXICON.contains(&m.intended.as_str()));
        }
    }

    #[test]
    fn misspellings_are_single_edits() {
        for m in generate_misspellings(50, 3) {
            let len_diff =
                (m.written.chars().count() as i64 - m.intended.chars().count() as i64).abs();
            assert!(len_diff <= 1, "{} -> {}", m.intended, m.written);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(generate_misspellings(10, 9), generate_misspellings(10, 9));
    }
}
