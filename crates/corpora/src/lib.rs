//! Corpora for the LSI reproduction: the paper's own MED example
//! (embedded verbatim) and synthetic generators standing in for the
//! collections we cannot redistribute (MEDLINE, TREC, TOEFL, the
//! Bellcore French/English abstracts — see DESIGN.md's substitution
//! table).

pub mod bilingual;
pub mod med;
pub mod noise;
pub mod spelling;
pub mod synonyms;
pub mod synthetic;
pub mod treclike;

pub use med::MedExample;
pub use synthetic::{SyntheticCorpus, SyntheticOptions};
