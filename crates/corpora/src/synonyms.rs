//! TOEFL-style synonym test generator.
//!
//! §5.4 of the paper (Landauer & Dumais): 80 multiple-choice items, each
//! a stem word and four alternatives, exactly one a synonym; LSI scored
//! 64 % against 33 % for word-overlap methods. The ETS test itself is
//! proprietary, so items are generated against the synthetic corpus's
//! planted synonym structure: the stem and correct answer are two
//! surface forms of the same concept (they need never co-occur in one
//! document), distractors are words of other topics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::synthetic::{SyntheticCorpus, SyntheticOptions};

/// One multiple-choice item.
#[derive(Debug, Clone)]
pub struct SynonymItem {
    /// The stem word.
    pub stem: String,
    /// Four alternatives.
    pub alternatives: [String; 4],
    /// Index (0–3) of the correct alternative.
    pub correct: usize,
}

/// A complete synonym test plus the corpus it is answerable from.
#[derive(Debug, Clone)]
pub struct SynonymTest {
    /// The training corpus.
    pub corpus: SyntheticCorpus,
    /// The items.
    pub items: Vec<SynonymItem>,
}

/// Number of items in the real TOEFL test (§5.4).
pub const TOEFL_ITEMS: usize = 80;

impl SynonymTest {
    /// Generate a test with `n_items` items over a corpus built from
    /// `options`. Options should have `synonyms_per_concept >= 2`.
    pub fn generate(options: &SyntheticOptions, n_items: usize, seed: u64) -> SynonymTest {
        assert!(
            options.synonyms_per_concept >= 2,
            "synonym items need at least two surface forms per concept"
        );
        let corpus = SyntheticCorpus::generate(options);
        let mut rng = StdRng::seed_from_u64(seed);
        let o = &corpus.options;
        let total_concepts = o.n_topics * o.concepts_per_topic;

        let mut items = Vec::with_capacity(n_items);
        for _ in 0..n_items {
            let topic = rng.random_range(0..o.n_topics);
            let concept =
                topic * o.concepts_per_topic + rng.random_range(0..o.concepts_per_topic);
            let s_stem = rng.random_range(0..o.synonyms_per_concept);
            let mut s_ans = rng.random_range(0..o.synonyms_per_concept - 1);
            if s_ans >= s_stem {
                s_ans += 1;
            }
            let stem = format!("c{concept}syn{s_stem}");
            let answer = format!("c{concept}syn{s_ans}");

            // Distractors: concepts from *other* topics.
            let mut distractors = Vec::with_capacity(3);
            while distractors.len() < 3 {
                let c = rng.random_range(0..total_concepts);
                if c / o.concepts_per_topic == topic {
                    continue;
                }
                let s = rng.random_range(0..o.synonyms_per_concept);
                let w = format!("c{c}syn{s}");
                if !distractors.contains(&w) {
                    distractors.push(w);
                }
            }

            let correct = rng.random_range(0..4usize);
            let mut alternatives: Vec<String> = Vec::with_capacity(4);
            let mut d_iter = distractors.into_iter();
            for slot in 0..4 {
                if slot == correct {
                    alternatives.push(answer.clone());
                } else {
                    alternatives.push(d_iter.next().expect("three distractors"));
                }
            }
            items.push(SynonymItem {
                stem,
                alternatives: alternatives.try_into().expect("exactly four"),
                correct,
            });
        }

        SynonymTest { corpus, items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> SyntheticOptions {
        SyntheticOptions {
            synonyms_per_concept: 3,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_item_count() {
        let t = SynonymTest::generate(&options(), 20, 1);
        assert_eq!(t.items.len(), 20);
    }

    #[test]
    fn correct_answer_shares_concept_with_stem() {
        let t = SynonymTest::generate(&options(), 40, 2);
        for item in &t.items {
            let concept = |w: &str| -> usize {
                w.strip_prefix('c')
                    .and_then(|r| r.split("syn").next())
                    .and_then(|s| s.parse().ok())
                    .expect("token format")
            };
            let stem_c = concept(&item.stem);
            assert_eq!(concept(&item.alternatives[item.correct]), stem_c);
            // Stem and answer are different surface forms.
            assert_ne!(item.stem, item.alternatives[item.correct]);
            // Distractors are from other topics (hence other concepts).
            for (i, alt) in item.alternatives.iter().enumerate() {
                if i != item.correct {
                    assert_ne!(concept(alt), stem_c);
                }
            }
        }
    }

    #[test]
    fn correct_position_is_varied() {
        let t = SynonymTest::generate(&options(), 60, 3);
        let positions: std::collections::HashSet<usize> =
            t.items.iter().map(|i| i.correct).collect();
        assert!(positions.len() > 1, "answers should not all share a slot");
    }

    #[test]
    fn rejects_single_synonym_concepts() {
        let bad = SyntheticOptions {
            synonyms_per_concept: 1,
            ..Default::default()
        };
        let r = std::panic::catch_unwind(|| SynonymTest::generate(&bad, 5, 1));
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SynonymTest::generate(&options(), 10, 7);
        let b = SynonymTest::generate(&options(), 10, 7);
        for (x, y) in a.items.iter().zip(b.items.iter()) {
            assert_eq!(x.stem, y.stem);
            assert_eq!(x.correct, y.correct);
        }
    }
}
