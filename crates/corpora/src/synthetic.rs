//! Synthetic generative corpus with controlled latent structure.
//!
//! Stands in for the paper's MED/CISI-style test collections (DESIGN.md
//! substitution table). Documents are generated from explicit latent
//! topics; each *concept* has several interchangeable surface words
//! (synonyms). Queries sample the same concepts with independently
//! chosen synonyms, so query–document *word* overlap is low while
//! *concept* overlap is perfect — exactly the synonymy regime in which
//! the paper says "the LSI method performs best relative to standard
//! vector methods" (§5.1). Relevance judgments come free: a document is
//! relevant to a query iff they share the topic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsi_text::{Corpus, Document};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct SyntheticOptions {
    /// Number of latent topics.
    pub n_topics: usize,
    /// Documents generated per topic.
    pub docs_per_topic: usize,
    /// Concepts private to each topic.
    pub concepts_per_topic: usize,
    /// Surface words (synonyms) per concept.
    pub synonyms_per_concept: usize,
    /// Tokens per document.
    pub doc_len: usize,
    /// Size of the shared background vocabulary.
    pub background_vocab: usize,
    /// Probability a token is background noise rather than topical.
    pub noise_fraction: f64,
    /// Tokens per query.
    pub query_len: usize,
    /// Queries generated per topic.
    pub queries_per_topic: usize,
    /// Fraction of each topic's concepts that are *polysemous*: they
    /// reuse the surface words of the same-index concept of topic 0, so
    /// one word form carries different meanings in different topics —
    /// the "culture"/"discharge" situation of the paper's §3 example.
    /// 0.0 (default) disables polysemy.
    pub polysemy_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticOptions {
    fn default() -> Self {
        SyntheticOptions {
            n_topics: 8,
            docs_per_topic: 12,
            concepts_per_topic: 10,
            synonyms_per_concept: 3,
            doc_len: 40,
            background_vocab: 60,
            noise_fraction: 0.25,
            query_len: 6,
            queries_per_topic: 3,
            polysemy_fraction: 0.0,
            seed: 0x1517,
        }
    }
}

/// A query with its ground-truth relevant documents.
#[derive(Debug, Clone)]
pub struct SyntheticQuery {
    /// Query text (space-separated tokens).
    pub text: String,
    /// Topic the query was drawn from.
    pub topic: usize,
    /// Indices (columns) of relevant documents.
    pub relevant: Vec<usize>,
}

/// A generated corpus with ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// The documents, grouped by topic in column order.
    pub corpus: Corpus,
    /// Topic of each document.
    pub doc_topics: Vec<usize>,
    /// Queries with relevance judgments.
    pub queries: Vec<SyntheticQuery>,
    /// Options used.
    pub options: SyntheticOptions,
}

/// Surface word for synonym `s` of global concept `c`.
fn concept_word(c: usize, s: usize) -> String {
    format!("c{c}syn{s}")
}

/// Background word `w`.
fn background_word(w: usize) -> String {
    format!("bg{w}")
}

impl SyntheticCorpus {
    /// Generate a corpus under `options`.
    pub fn generate(options: &SyntheticOptions) -> SyntheticCorpus {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let o = options.clone();
        let mut corpus = Corpus::new();
        let mut doc_topics = Vec::new();

        // Each document (or query) speaks one "dialect": a fixed synonym
        // choice per concept, sampled once. Synonyms of the same concept
        // therefore never co-occur inside a document — the regime in
        // which the paper's LSI-vs-word-matching comparison is
        // interesting ("terms ... will be near each other in the
        // k-dimensional factor space even if they never co-occur in the
        // same document", §2.1).
        // Concepts with local index below this bound are polysemous:
        // every topic renders them with topic 0's surface words.
        let polysemous_below =
            (o.polysemy_fraction.clamp(0.0, 1.0) * o.concepts_per_topic as f64).round() as usize;
        let emit_tokens = |rng: &mut StdRng, topic: usize, len: usize| -> String {
            let dialect: Vec<usize> = (0..o.concepts_per_topic)
                .map(|_| rng.random_range(0..o.synonyms_per_concept))
                .collect();
            let mut tokens = Vec::with_capacity(len);
            for _ in 0..len {
                if o.background_vocab > 0 && rng.random::<f64>() < o.noise_fraction {
                    tokens.push(background_word(rng.random_range(0..o.background_vocab)));
                } else {
                    let local = rng.random_range(0..o.concepts_per_topic);
                    let surface_concept = if local < polysemous_below {
                        local // topic 0's concept: shared word forms
                    } else {
                        topic * o.concepts_per_topic + local
                    };
                    tokens.push(concept_word(surface_concept, dialect[local]));
                }
            }
            tokens.join(" ")
        };

        for topic in 0..o.n_topics {
            for d in 0..o.docs_per_topic {
                let text = emit_tokens(&mut rng, topic, o.doc_len);
                corpus.push(Document::new(format!("t{topic}d{d}"), text));
                doc_topics.push(topic);
            }
        }

        let mut queries = Vec::new();
        for topic in 0..o.n_topics {
            for _ in 0..o.queries_per_topic {
                let text = emit_tokens(&mut rng, topic, o.query_len);
                let relevant: Vec<usize> = doc_topics
                    .iter()
                    .enumerate()
                    .filter(|(_, &t)| t == topic)
                    .map(|(i, _)| i)
                    .collect();
                queries.push(SyntheticQuery {
                    text,
                    topic,
                    relevant,
                });
            }
        }

        SyntheticCorpus {
            corpus,
            doc_topics,
            queries,
            options: o,
        }
    }

    /// Total number of documents.
    pub fn n_docs(&self) -> usize {
        self.corpus.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_declared_counts() {
        let o = SyntheticOptions::default();
        let c = SyntheticCorpus::generate(&o);
        assert_eq!(c.n_docs(), o.n_topics * o.docs_per_topic);
        assert_eq!(c.queries.len(), o.n_topics * o.queries_per_topic);
        assert_eq!(c.doc_topics.len(), c.n_docs());
    }

    #[test]
    fn deterministic_in_seed() {
        let o = SyntheticOptions::default();
        let a = SyntheticCorpus::generate(&o);
        let b = SyntheticCorpus::generate(&o);
        assert_eq!(a.corpus, b.corpus);
        let o2 = SyntheticOptions { seed: 999, ..o };
        let c = SyntheticCorpus::generate(&o2);
        assert_ne!(a.corpus, c.corpus);
    }

    #[test]
    fn documents_have_declared_length() {
        let o = SyntheticOptions {
            doc_len: 25,
            ..Default::default()
        };
        let c = SyntheticCorpus::generate(&o);
        for doc in &c.corpus.docs {
            assert_eq!(doc.text.split_whitespace().count(), 25);
        }
    }

    #[test]
    fn relevance_sets_are_topic_blocks() {
        let o = SyntheticOptions::default();
        let c = SyntheticCorpus::generate(&o);
        for q in &c.queries {
            assert_eq!(q.relevant.len(), o.docs_per_topic);
            for &d in &q.relevant {
                assert_eq!(c.doc_topics[d], q.topic);
            }
        }
    }

    #[test]
    fn topical_words_stay_within_topic() {
        let o = SyntheticOptions {
            noise_fraction: 0.0,
            ..Default::default()
        };
        let c = SyntheticCorpus::generate(&o);
        for (j, doc) in c.corpus.docs.iter().enumerate() {
            let topic = c.doc_topics[j];
            let lo = topic * o.concepts_per_topic;
            let hi = lo + o.concepts_per_topic;
            for tok in doc.text.split_whitespace() {
                let c_id: usize = tok
                    .strip_prefix('c')
                    .and_then(|r| r.split("syn").next())
                    .and_then(|s| s.parse().ok())
                    .expect("topical token format");
                assert!(c_id >= lo && c_id < hi, "concept {c_id} outside topic {topic}");
            }
        }
    }

    #[test]
    fn polysemy_shares_surface_words_across_topics() {
        let o = SyntheticOptions {
            polysemy_fraction: 0.5,
            noise_fraction: 0.0,
            ..Default::default()
        };
        let c = SyntheticCorpus::generate(&o);
        // Collect the topic-0 surface concepts used by a topic-3 doc.
        let doc3 = c
            .doc_topics
            .iter()
            .position(|&t| t == 3)
            .expect("topic 3 exists");
        let concept_of = |tok: &str| -> usize {
            tok.strip_prefix('c')
                .and_then(|r| r.split("syn").next())
                .and_then(|x| x.parse().ok())
                .expect("token format")
        };
        let shared = c.corpus.docs[doc3]
            .text
            .split_whitespace()
            .filter(|t| concept_of(t) < o.concepts_per_topic)
            .count();
        assert!(shared > 0, "topic 3 should reuse topic-0 word forms");
        // And without polysemy it never does.
        let clean = SyntheticCorpus::generate(&SyntheticOptions {
            polysemy_fraction: 0.0,
            noise_fraction: 0.0,
            ..Default::default()
        });
        let doc3c = clean.doc_topics.iter().position(|&t| t == 3).unwrap();
        let leaked = clean.corpus.docs[doc3c]
            .text
            .split_whitespace()
            .filter(|t| concept_of(t) < o.concepts_per_topic)
            .count();
        assert_eq!(leaked, 0);
    }

    #[test]
    fn synonym_structure_reduces_surface_overlap() {
        // With many synonyms per concept, two docs from one topic share
        // concepts but not necessarily words; verify words differ while
        // concepts coincide for at least one pair.
        let o = SyntheticOptions {
            synonyms_per_concept: 6,
            noise_fraction: 0.0,
            doc_len: 8,
            ..Default::default()
        };
        let c = SyntheticCorpus::generate(&o);
        let words = |j: usize| -> std::collections::HashSet<&str> {
            c.corpus.docs[j].text.split_whitespace().collect()
        };
        // Documents 0 and 1 share a topic.
        let overlap = words(0).intersection(&words(1)).count();
        let total = words(0).len().min(words(1).len());
        assert!(
            overlap < total,
            "expected imperfect surface overlap, got {overlap}/{total}"
        );
    }
}
