//! TREC-shaped sparse matrix presets.
//!
//! §5.3 of the paper: "a sample of about 70,000 documents and 90,000
//! terms was used. Such term by document matrices (A) are quite sparse,
//! containing only .001–.002 % non-zero entries. Computing A_200 ... by
//! a single-vector Lanczos algorithm required about 18 hours of CPU time
//! on a SUN SPARCstation 10." These presets reproduce that *shape* at
//! configurable scale factors so the Lanczos cost curve can be measured
//! on current hardware.

use lsi_sparse::gen::{random_term_doc, RowProfile};
use lsi_sparse::stats::SparsityStats;
use lsi_sparse::CscMatrix;

/// The paper's TREC sample dimensions.
pub const TREC_TERMS: usize = 90_000;
/// The paper's TREC sample document count.
pub const TREC_DOCS: usize = 70_000;
/// The paper's reported density range (fraction, not percent).
pub const TREC_DENSITY: (f64, f64) = (0.001 / 100.0, 0.002 / 100.0);
/// The rank the paper computed for TREC.
pub const TREC_K: usize = 200;

/// A TREC-like matrix scaled down by `1/scale` in both dimensions.
///
/// Density is held at the paper's upper figure (0.002 %) scaled *up* by
/// `scale` so that the average number of terms per document stays
/// constant — otherwise small instances degenerate to empty columns.
/// `scale = 1` reproduces the full 90k×70k shape (allocate accordingly:
/// ~126k nonzeros at 0.002 %).
pub fn trec_like(scale: usize, seed: u64) -> CscMatrix {
    assert!(scale >= 1);
    let nrows = TREC_TERMS / scale;
    let ncols = TREC_DOCS / scale;
    let density = (TREC_DENSITY.1 * scale as f64).min(0.5);
    random_term_doc(nrows, ncols, density, RowProfile::Zipf { s: 1.0 }, 4, seed)
}

/// Summary statistics for reporting (density as a percentage, as the
/// paper phrases it).
pub fn describe(m: &CscMatrix) -> SparsityStats {
    SparsityStats::of(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_shape_matches_paper() {
        // Only check the arithmetic, not an actual 90k x 70k allocation.
        assert_eq!(TREC_TERMS, 90_000);
        assert_eq!(TREC_DOCS, 70_000);
    }

    #[test]
    fn scaled_instance_has_expected_shape_and_density() {
        let m = trec_like(100, 42);
        assert_eq!(m.shape(), (900, 700));
        let stats = describe(&m);
        // Density target: 0.002 % * 100 = 0.2 %; duplicates merge so
        // allow a tolerance band.
        assert!(
            stats.density > 0.001 && stats.density < 0.003,
            "density {}",
            stats.density
        );
    }

    #[test]
    fn terms_per_doc_is_scale_invariant() {
        let a = describe(&trec_like(100, 1));
        let b = describe(&trec_like(50, 1));
        let ratio = a.mean_col_nnz / b.mean_col_nnz;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "terms/doc should be roughly stable: {} vs {}",
            a.mean_col_nnz,
            b.mean_col_nnz
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(trec_like(200, 5), trec_like(200, 5));
    }
}
