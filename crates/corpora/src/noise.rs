//! Word-level noise channel simulating OCR / pen-machine input.
//!
//! §5.4 of the paper (Nielsen et al.): "Even though the error rates were
//! 8.8 % at the word level, information retrieval performance using LSI
//! was not disrupted." This channel corrupts a configurable fraction of
//! words by a single character edit, mimicking recognizer confusions
//! ("Dumais" → "Duniais").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsi_text::{Corpus, Document};

/// The paper's reported pen-machine word error rate.
pub const PAPER_WORD_ERROR_RATE: f64 = 0.088;

/// Kinds of single-character corruption applied to a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EditKind {
    Substitute,
    Delete,
    Insert,
    Transpose,
}

/// Corrupt a single word with one random character edit.
fn corrupt_word(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.is_empty() {
        return word.to_string();
    }
    let kind = match rng.random_range(0..4u8) {
        0 => EditKind::Substitute,
        1 => EditKind::Delete,
        2 => EditKind::Insert,
        _ => EditKind::Transpose,
    };
    let letters = "abcdefghijklmnopqrstuvwxyz";
    let rand_letter = |rng: &mut StdRng| {
        letters
            .chars()
            .nth(rng.random_range(0..letters.len()))
            .expect("index in range")
    };
    let mut out: Vec<char> = chars.clone();
    match kind {
        EditKind::Substitute => {
            let i = rng.random_range(0..out.len());
            out[i] = rand_letter(rng);
        }
        EditKind::Delete => {
            if out.len() > 1 {
                let i = rng.random_range(0..out.len());
                out.remove(i);
            } else {
                out[0] = rand_letter(rng);
            }
        }
        EditKind::Insert => {
            let i = rng.random_range(0..=out.len());
            out.insert(i, rand_letter(rng));
        }
        EditKind::Transpose => {
            if out.len() > 1 {
                let i = rng.random_range(0..out.len() - 1);
                out.swap(i, i + 1);
            } else {
                out[0] = rand_letter(rng);
            }
        }
    }
    out.into_iter().collect()
}

/// Corrupt each word of `text` independently with probability
/// `word_error_rate`.
pub fn corrupt_text(text: &str, word_error_rate: f64, rng: &mut StdRng) -> String {
    text.split_whitespace()
        .map(|w| {
            if rng.random::<f64>() < word_error_rate {
                corrupt_word(w, rng)
            } else {
                w.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Corrupt every document of a corpus; ids are preserved.
pub fn corrupt_corpus(corpus: &Corpus, word_error_rate: f64, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    Corpus {
        docs: corpus
            .docs
            .iter()
            .map(|d| Document::new(d.id.clone(), corrupt_text(&d.text, word_error_rate, &mut rng)))
            .collect(),
    }
}

/// Measured word error rate between an original and corrupted corpus
/// (fraction of word positions that differ).
pub fn measured_word_error_rate(original: &Corpus, corrupted: &Corpus) -> f64 {
    let mut total = 0usize;
    let mut errors = 0usize;
    for (o, c) in original.docs.iter().zip(corrupted.docs.iter()) {
        for (ow, cw) in o.text.split_whitespace().zip(c.text.split_whitespace()) {
            total += 1;
            if ow != cw {
                errors += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        errors as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Corpus {
        let text = "the quick brown fox jumps over the lazy dog again and again";
        Corpus {
            docs: (0..50)
                .map(|i| Document::new(format!("d{i}"), text))
                .collect(),
        }
    }

    #[test]
    fn zero_rate_is_identity() {
        let c = sample_corpus();
        let out = corrupt_corpus(&c, 0.0, 1);
        assert_eq!(c, out);
    }

    #[test]
    fn rate_one_corrupts_everything_measurably() {
        let c = sample_corpus();
        let out = corrupt_corpus(&c, 1.0, 1);
        let rate = measured_word_error_rate(&c, &out);
        // A transpose of identical letters can be a no-op, so allow a
        // little slack below 1.0.
        assert!(rate > 0.9, "rate {rate}");
    }

    #[test]
    fn paper_rate_is_approximately_honored() {
        let c = sample_corpus();
        let out = corrupt_corpus(&c, PAPER_WORD_ERROR_RATE, 7);
        let rate = measured_word_error_rate(&c, &out);
        assert!(
            (rate - PAPER_WORD_ERROR_RATE).abs() < 0.04,
            "measured {rate} vs nominal {PAPER_WORD_ERROR_RATE}"
        );
    }

    #[test]
    fn corruption_is_single_edit_distance() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let w = "information";
            let c = corrupt_word(w, &mut rng);
            let len_diff = (w.len() as i64 - c.len() as i64).abs();
            assert!(len_diff <= 1, "{w} -> {c}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let c = sample_corpus();
        assert_eq!(corrupt_corpus(&c, 0.3, 9), corrupt_corpus(&c, 0.3, 9));
    }

    #[test]
    fn word_count_is_preserved() {
        let c = sample_corpus();
        let out = corrupt_corpus(&c, 0.5, 11);
        for (o, n) in c.docs.iter().zip(out.docs.iter()) {
            assert_eq!(
                o.text.split_whitespace().count(),
                n.text.split_whitespace().count()
            );
        }
    }
}
