//! Dual-vocabulary bilingual corpus generator.
//!
//! Substitute for the Bellcore French/English abstract collection of the
//! paper's §5.4 cross-language experiment (Landauer & Littman). Each
//! underlying document has an "English" rendering and a "French"
//! rendering over disjoint vocabularies; the training corpus is the
//! concatenation of both renderings ("each abstract is treated as the
//! combination of its French-English versions"), and monolingual
//! renderings are held out for folding-in and querying.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsi_text::{Corpus, Document};

/// Generation parameters for the bilingual corpus.
#[derive(Debug, Clone)]
pub struct BilingualOptions {
    /// Number of latent topics.
    pub n_topics: usize,
    /// Dual-language training documents per topic.
    pub docs_per_topic: usize,
    /// Held-out monolingual documents per topic (per language).
    pub holdout_per_topic: usize,
    /// Concepts private to each topic.
    pub concepts_per_topic: usize,
    /// Tokens per rendering.
    pub doc_len: usize,
    /// Tokens per query.
    pub query_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BilingualOptions {
    fn default() -> Self {
        BilingualOptions {
            n_topics: 6,
            docs_per_topic: 10,
            holdout_per_topic: 4,
            concepts_per_topic: 8,
            doc_len: 30,
            query_len: 5,
            seed: 0xB111,
        }
    }
}

/// Which language a rendering uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// The `en…` vocabulary.
    English,
    /// The `fr…` vocabulary.
    French,
}

/// A generated bilingual collection.
#[derive(Debug, Clone)]
pub struct BilingualCorpus {
    /// Training corpus: combined English+French renderings.
    pub training: Corpus,
    /// Topic of each training document.
    pub training_topics: Vec<usize>,
    /// Held-out English-only documents.
    pub holdout_english: Corpus,
    /// Held-out French-only documents (parallel topics with
    /// `holdout_english` at the same index — they are translations).
    pub holdout_french: Corpus,
    /// Topic of each held-out document pair.
    pub holdout_topics: Vec<usize>,
    /// English queries, one per topic.
    pub queries_english: Vec<String>,
    /// French queries, one per topic (same topics in order).
    pub queries_french: Vec<String>,
}

fn word(lang: Language, concept: usize) -> String {
    match lang {
        Language::English => format!("en{concept}"),
        Language::French => format!("fr{concept}"),
    }
}

impl BilingualCorpus {
    /// Generate under `options`.
    pub fn generate(options: &BilingualOptions) -> BilingualCorpus {
        let o = options.clone();
        let mut rng = StdRng::seed_from_u64(o.seed);

        let concepts = |rng: &mut StdRng, topic: usize, len: usize| -> Vec<usize> {
            (0..len)
                .map(|_| topic * o.concepts_per_topic + rng.random_range(0..o.concepts_per_topic))
                .collect()
        };
        let render = |cs: &[usize], lang: Language| -> String {
            cs.iter()
                .map(|&c| word(lang, c))
                .collect::<Vec<_>>()
                .join(" ")
        };

        let mut training = Corpus::new();
        let mut training_topics = Vec::new();
        for topic in 0..o.n_topics {
            for d in 0..o.docs_per_topic {
                let cs = concepts(&mut rng, topic, o.doc_len);
                let combined = format!(
                    "{} {}",
                    render(&cs, Language::English),
                    render(&cs, Language::French)
                );
                training.push(Document::new(format!("t{topic}b{d}"), combined));
                training_topics.push(topic);
            }
        }

        let mut holdout_english = Corpus::new();
        let mut holdout_french = Corpus::new();
        let mut holdout_topics = Vec::new();
        for topic in 0..o.n_topics {
            for d in 0..o.holdout_per_topic {
                let cs = concepts(&mut rng, topic, o.doc_len);
                holdout_english.push(Document::new(
                    format!("t{topic}he{d}"),
                    render(&cs, Language::English),
                ));
                holdout_french.push(Document::new(
                    format!("t{topic}hf{d}"),
                    render(&cs, Language::French),
                ));
                holdout_topics.push(topic);
            }
        }

        let mut queries_english = Vec::new();
        let mut queries_french = Vec::new();
        for topic in 0..o.n_topics {
            let cs = concepts(&mut rng, topic, o.query_len);
            queries_english.push(render(&cs, Language::English));
            let cs = concepts(&mut rng, topic, o.query_len);
            queries_french.push(render(&cs, Language::French));
        }

        BilingualCorpus {
            training,
            training_topics,
            holdout_english,
            holdout_french,
            holdout_topics,
            queries_english,
            queries_french,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_docs_mix_both_vocabularies() {
        let b = BilingualCorpus::generate(&BilingualOptions::default());
        for doc in &b.training.docs {
            let has_en = doc.text.split_whitespace().any(|t| t.starts_with("en"));
            let has_fr = doc.text.split_whitespace().any(|t| t.starts_with("fr"));
            assert!(has_en && has_fr, "training doc must be combined");
        }
    }

    #[test]
    fn holdouts_are_monolingual_translations() {
        let b = BilingualCorpus::generate(&BilingualOptions::default());
        assert_eq!(b.holdout_english.len(), b.holdout_french.len());
        for (e, f) in b.holdout_english.docs.iter().zip(b.holdout_french.docs.iter()) {
            assert!(e.text.split_whitespace().all(|t| t.starts_with("en")));
            assert!(f.text.split_whitespace().all(|t| t.starts_with("fr")));
        }
    }

    #[test]
    fn queries_cover_all_topics_in_both_languages() {
        let o = BilingualOptions::default();
        let b = BilingualCorpus::generate(&o);
        assert_eq!(b.queries_english.len(), o.n_topics);
        assert_eq!(b.queries_french.len(), o.n_topics);
        for q in &b.queries_french {
            assert!(q.split_whitespace().all(|t| t.starts_with("fr")));
        }
    }

    #[test]
    fn counts_match_options() {
        let o = BilingualOptions::default();
        let b = BilingualCorpus::generate(&o);
        assert_eq!(b.training.len(), o.n_topics * o.docs_per_topic);
        assert_eq!(b.holdout_english.len(), o.n_topics * o.holdout_per_topic);
        assert_eq!(b.training_topics.len(), b.training.len());
    }

    #[test]
    fn deterministic_in_seed() {
        let o = BilingualOptions::default();
        assert_eq!(
            BilingualCorpus::generate(&o).training,
            BilingualCorpus::generate(&o).training
        );
    }
}
