//! The paper's §3 example database: 18 medical topics drawn from the
//! MEDLINE test collection (Tables 2 and 5), the derived 18×14
//! term-document matrix (Table 3), and the published query/SVD constants
//! (Figure 5, Table 4) used as reproduction targets.
//!
//! Provenance note: the machine-readable copy of the paper this
//! reproduction works from has OCR damage in Table 3 (at least the
//! *respect* row disagrees with the topic texts of Table 2). The matrix
//! embedded here is derived from the Table 2 *texts* under the paper's
//! stated parsing rule — keywords appear in more than one topic, stop
//! words removed, trivial plurals folded — which reproduces the
//! published vocabulary exactly and the published rankings closely (see
//! EXPERIMENTS.md for the per-value comparison).

use lsi_sparse::CscMatrix;
use lsi_text::{Corpus, ParsingRules, Vocabulary};

/// The 14 original medical topics of Table 2.
pub const TOPICS: [(&str, &str); 14] = [
    (
        "M1",
        "study of depressed patients after discharge with regard to age of onset and culture",
    ),
    (
        "M2",
        "culture of pleuropneumonia like organisms found in vaginal discharge of patients",
    ),
    (
        "M3",
        "study showed oestrogen production is depressed by ovarian irradiation",
    ),
    (
        "M4",
        "cortisone rapidly depressed the secondary rise in oestrogen output of patients",
    ),
    (
        "M5",
        "boys tend to react to death anxiety by acting out behavior while girls tended to become depressed",
    ),
    (
        "M6",
        "changes in children s behavior following hospitalization studied a week after discharge",
    ),
    ("M7", "surgical technique to close ventricular septal defects"),
    (
        "M8",
        "chromosomal abnormalities in blood cultures and bone marrow from leukaemic patients",
    ),
    (
        "M9",
        "study of christmas disease with respect to generation and culture",
    ),
    (
        "M10",
        "insulin not responsible for metabolic abnormalities accompanying a prolonged fast",
    ),
    (
        "M11",
        "close relationship between high blood pressure and vascular disease",
    ),
    (
        "M12",
        "mouse kidneys show a decline with respect to age in the ability to concentrate the urine during a water fast",
    ),
    ("M13", "fast cell generation in the eye lens epithelium of rats"),
    ("M14", "fast rise of cerebral oxygen pressure in rats"),
];

/// The two fictitious update topics of Table 5.
pub const UPDATE_TOPICS: [(&str, &str); 2] = [
    ("M15", "behavior of rats after detected rise in oestrogen"),
    ("M16", "depressed patients who feel the pressure to fast"),
];

/// The 18 indexed keywords, alphabetical — the row order of Table 3.
pub const TERMS: [&str; 18] = [
    "abnormalities",
    "age",
    "behavior",
    "blood",
    "close",
    "culture",
    "depressed",
    "discharge",
    "disease",
    "fast",
    "generation",
    "oestrogen",
    "patients",
    "pressure",
    "rats",
    "respect",
    "rise",
    "study",
];

/// The example query of §3.1 (before stop-word removal).
pub const QUERY: &str = "age of children with blood abnormalities";

/// Terms of the query that are indexed (after stop-word and
/// unknown-word removal): §3.1's "age blood abnormalities".
pub const QUERY_TERMS: [&str; 3] = ["age", "blood", "abnormalities"];

/// Paper constants (Figure 5): the two largest singular values of the
/// 18×14 matrix as published.
pub const PAPER_SIGMA: [f64; 2] = [3.5919, 2.6471];

/// Paper constants (Figure 5): the published query coordinates
/// `q̂ = qᵀ U₂ Σ₂⁻¹`.
pub const PAPER_QUERY_COORDS: [f64; 2] = [0.1491, -0.1199];

/// Paper constants (Figure 5): the published `U₂` (18×2), row order as
/// [`TERMS`].
pub const PAPER_U2: [[f64; 2]; 18] = [
    [0.1623, -0.1372],
    [0.2068, -0.0488],
    [0.0597, 0.0614],
    [0.1663, -0.1313],
    [0.0258, -0.1246],
    [0.4534, 0.0386],
    [0.3579, 0.1710],
    [0.2931, 0.1426],
    [0.0690, -0.1576],
    [0.0940, -0.6535],
    [0.0599, -0.2378],
    [0.1560, 0.0661],
    [0.4948, 0.1091],
    [0.0460, -0.3393],
    [0.0369, -0.4196],
    [0.1797, -0.1456],
    [0.1087, -0.2126],
    [0.3814, 0.0941],
];

/// Paper constants (Table 4): documents returned within cosine 0.40 of
/// the query, as `(doc id, cosine)`, for k = 2, 4, 8.
pub const PAPER_TABLE4_K2: [(&str, f64); 11] = [
    ("M9", 1.00),
    ("M12", 0.88),
    ("M8", 0.85),
    ("M11", 0.82),
    ("M10", 0.79),
    ("M7", 0.74),
    ("M14", 0.72),
    ("M13", 0.71),
    ("M4", 0.67),
    ("M1", 0.56),
    ("M2", 0.42),
];

/// Table 4, k = 4 column.
pub const PAPER_TABLE4_K4: [(&str, f64); 5] = [
    ("M8", 0.92),
    ("M9", 0.89),
    ("M2", 0.64),
    ("M10", 0.48),
    ("M12", 0.46),
];

/// Table 4, k = 8 column.
pub const PAPER_TABLE4_K8: [(&str, f64); 4] =
    [("M8", 0.67), ("M12", 0.55), ("M10", 0.54), ("M11", 0.40)];

/// Documents the paper reports lexical matching would return for the
/// query (§3.2), and the relevant document lexical matching misses.
pub const PAPER_LEXICAL_MATCHES: [&str; 5] = ["M1", "M8", "M10", "M11", "M12"];

/// §3.2: "topic M9 would be missed" by lexical matching; LSI retrieves
/// it top-ranked because "christmas disease is the name associated \[with\]
/// hemophilia in young children".
pub const PAPER_LEXICAL_MISS: &str = "M9";

/// The assembled example: corpus, vocabulary, count matrix.
#[derive(Debug, Clone)]
pub struct MedExample {
    /// The 14 original topics.
    pub corpus: Corpus,
    /// Vocabulary under the paper's parsing rules (18 terms).
    pub vocab: Vocabulary,
    /// The 18×14 raw count matrix (Table 3).
    pub matrix: CscMatrix,
}

impl MedExample {
    /// Build the example exactly as §3 describes.
    pub fn build() -> MedExample {
        let corpus = Corpus::from_pairs(TOPICS);
        let vocab = Vocabulary::build(&corpus, &ParsingRules::paper_example());
        let matrix = vocab.count_matrix(&corpus);
        MedExample {
            corpus,
            vocab,
            matrix,
        }
    }

    /// The corpus extended with the Table 5 update topics (16 docs) —
    /// the input to the §3.3/§4.4 updating experiments.
    pub fn extended_corpus() -> Corpus {
        let mut corpus = Corpus::from_pairs(TOPICS);
        for (id, text) in UPDATE_TOPICS {
            corpus.push(lsi_text::Document::new(id, text));
        }
        corpus
    }

    /// Count matrix of just the two new documents against the original
    /// vocabulary — the `D` of Eq. 10.
    pub fn update_documents_matrix(&self) -> CscMatrix {
        let update = Corpus::from_pairs(UPDATE_TOPICS);
        self.vocab.count_matrix(&update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_exactly_the_papers_18_terms() {
        let ex = MedExample::build();
        assert_eq!(ex.vocab.len(), 18);
        let terms: Vec<&str> = ex.vocab.terms().iter().map(|s| s.as_str()).collect();
        assert_eq!(terms, TERMS);
    }

    #[test]
    fn matrix_shape_is_18_by_14() {
        let ex = MedExample::build();
        assert_eq!(ex.matrix.shape(), (18, 14));
    }

    #[test]
    fn matrix_matches_table3_spot_checks() {
        // Spot-check cells the paper narrates: "in medical topic M2 ...
        // culture, discharge, and patients all occur once".
        let ex = MedExample::build();
        let m2 = 1; // column index of M2
        for term in ["culture", "discharge", "patients"] {
            let i = ex.vocab.index_of(term).unwrap();
            assert_eq!(ex.matrix.get(i, m2), 1.0, "{term} in M2");
        }
        // culture row: M1, M2, M8 ("cultures"), M9.
        let culture = ex.vocab.index_of("culture").unwrap();
        let expect = [1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        for (j, &want) in expect.iter().enumerate() {
            assert_eq!(ex.matrix.get(culture, j), want, "culture in doc {}", j + 1);
        }
        // fast row: M10, M12, M13, M14.
        let fast = ex.vocab.index_of("fast").unwrap();
        for (j, want) in [(9, 1.0), (11, 1.0), (12, 1.0), (13, 1.0), (0, 0.0)] {
            assert_eq!(ex.matrix.get(fast, j), want);
        }
    }

    #[test]
    fn every_term_occurs_in_more_than_one_topic() {
        // The paper's parsing rule, verified on the realized matrix.
        let ex = MedExample::build();
        let csr = ex.matrix.to_csr();
        for (i, term) in TERMS.iter().enumerate() {
            let (cols, _) = csr.row(i);
            assert!(cols.len() >= 2, "term {term} has df {}", cols.len());
        }
    }

    #[test]
    fn all_entries_are_zero_or_one() {
        // No keyword repeats within a single topic in this example.
        let ex = MedExample::build();
        for (_, _, v) in ex.matrix.iter() {
            assert!(v == 1.0, "unexpected count {v}");
        }
    }

    #[test]
    fn query_reduces_to_age_blood_abnormalities() {
        let ex = MedExample::build();
        let q = ex.vocab.count_vector(QUERY);
        let nonzero: Vec<&str> = (0..18).filter(|&i| q[i] != 0.0).map(|i| TERMS[i]).collect();
        let mut want = QUERY_TERMS.to_vec();
        want.sort();
        assert_eq!(nonzero, want);
    }

    #[test]
    fn update_topics_add_no_new_terms() {
        // §3.3: M15/M16 reuse existing keywords (all underlined words
        // appear across the 16 topics).
        let ex = MedExample::build();
        let d = ex.update_documents_matrix();
        assert_eq!(d.shape(), (18, 2));
        // M15: behavior, rats, rise, oestrogen.
        for term in ["behavior", "rats", "rise", "oestrogen"] {
            let i = ex.vocab.index_of(term).unwrap();
            assert_eq!(d.get(i, 0), 1.0, "{term} in M15");
        }
        // M16: depressed, patients, pressure, fast.
        for term in ["depressed", "patients", "pressure", "fast"] {
            let i = ex.vocab.index_of(term).unwrap();
            assert_eq!(d.get(i, 1), 1.0, "{term} in M16");
        }
        assert_eq!(d.nnz(), 8);
    }

    #[test]
    fn extended_corpus_has_16_docs() {
        assert_eq!(MedExample::extended_corpus().len(), 16);
    }

    #[test]
    fn singular_values_close_to_published() {
        let ex = MedExample::build();
        let svd = lsi_linalg::dense_svd(&ex.matrix.to_dense()).unwrap();
        // OCR damage in the source means we match to ~3 %, not to the
        // printed 4 decimals; see module docs.
        assert!((svd.s[0] - PAPER_SIGMA[0]).abs() / PAPER_SIGMA[0] < 0.03,
            "sigma_1 {} vs published {}", svd.s[0], PAPER_SIGMA[0]);
        assert!((svd.s[1] - PAPER_SIGMA[1]).abs() / PAPER_SIGMA[1] < 0.03,
            "sigma_2 {} vs published {}", svd.s[1], PAPER_SIGMA[1]);
    }
}
