//! Document and corpus types.

use serde::{Deserialize, Serialize};

/// A single text object (the paper's "document": an abstract, a title,
/// a paragraph — any descriptor-object unit, §5.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// Caller-chosen label ("M1", a filename, a DOI...).
    pub id: String,
    /// Raw text.
    pub text: String,
}

impl Document {
    /// Construct from anything string-like.
    pub fn new(id: impl Into<String>, text: impl Into<String>) -> Self {
        Document {
            id: id.into(),
            text: text.into(),
        }
    }
}

/// An ordered collection of documents. Order is significant: column `j`
/// of the term-document matrix is `docs[j]`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corpus {
    /// The documents, in matrix-column order.
    pub docs: Vec<Document>,
}

impl Corpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Build from `(id, text)` pairs.
    pub fn from_pairs<I, S1, S2>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S1, S2)>,
        S1: Into<String>,
        S2: Into<String>,
    {
        Corpus {
            docs: pairs
                .into_iter()
                .map(|(id, text)| Document::new(id, text))
                .collect(),
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the corpus empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Append a document.
    pub fn push(&mut self, doc: Document) {
        self.docs.push(doc);
    }

    /// Look up a document's column index by id (linear scan; corpora
    /// needing fast lookup keep their own map).
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.docs.iter().position(|d| d.id == id)
    }

    /// Iterate document texts in column order.
    pub fn texts(&self) -> impl Iterator<Item = &str> {
        self.docs.iter().map(|d| d.text.as_str())
    }

    /// Split one long text into paragraph documents (blank-line
    /// separated), ids `{prefix}-p1`, `{prefix}-p2`, ... — the paper's
    /// §5.4: "smaller, more topically coherent units of text (e.g.,
    /// paragraphs, sections) could be represented as well."
    pub fn from_paragraphs(prefix: &str, text: &str) -> Corpus {
        let mut docs = Vec::new();
        let mut current = String::new();
        let flush = |current: &mut String, docs: &mut Vec<Document>| {
            let trimmed = current.trim();
            if !trimmed.is_empty() {
                docs.push(Document::new(
                    format!("{prefix}-p{}", docs.len() + 1),
                    trimmed.to_string(),
                ));
            }
            current.clear();
        };
        for line in text.lines() {
            if line.trim().is_empty() {
                flush(&mut current, &mut docs);
            } else {
                current.push_str(line);
                current.push(' ');
            }
        }
        flush(&mut current, &mut docs);
        Corpus { docs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_preserves_order() {
        let c = Corpus::from_pairs([("M1", "alpha"), ("M2", "beta")]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.docs[0].id, "M1");
        assert_eq!(c.docs[1].text, "beta");
    }

    #[test]
    fn index_of_finds_documents() {
        let c = Corpus::from_pairs([("a", "x"), ("b", "y")]);
        assert_eq!(c.index_of("b"), Some(1));
        assert_eq!(c.index_of("zzz"), None);
    }

    #[test]
    fn from_paragraphs_splits_on_blank_lines() {
        let text = "first paragraph line one\nline two\n\n\nsecond paragraph\n\nthird";
        let c = Corpus::from_paragraphs("doc", text);
        assert_eq!(c.len(), 3);
        assert_eq!(c.docs[0].id, "doc-p1");
        assert_eq!(c.docs[0].text, "first paragraph line one line two");
        assert_eq!(c.docs[2].text, "third");
    }

    #[test]
    fn from_paragraphs_handles_edges() {
        assert!(Corpus::from_paragraphs("x", "").is_empty());
        assert!(Corpus::from_paragraphs("x", "\n \n\t\n").is_empty());
        let c = Corpus::from_paragraphs("x", "only one");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn push_and_texts() {
        let mut c = Corpus::new();
        assert!(c.is_empty());
        c.push(Document::new("d", "hello world"));
        let texts: Vec<&str> = c.texts().collect();
        assert_eq!(texts, vec!["hello world"]);
    }
}
