//! Surface-form normalization.
//!
//! The paper's large-scale runs use *no* stemming (§5.4: "doctor is
//! quite near doctors but not as similar to doctoral" — they remain
//! distinct terms). The hand-built MED example of §3, however, indexes
//! "blood cultures" under the keyword *culture*, i.e. trivial plurals
//! are folded. [`plural_key`] implements exactly that minimal fold —
//! strip one trailing `s` unless the word is short or ends in `ss` — and
//! nothing more ("studied" does not fold to "study", matching Table 3).

/// Equivalence key for plural folding: `cultures` and `culture` share a
/// key; `patients`/`patient` share a key; `class` keeps its `ss`.
///
/// Words of three characters or fewer are returned unchanged ("is",
/// "gas"-like tokens are too short to treat the `s` as a plural marker).
pub fn plural_key(token: &str) -> &str {
    let n = token.len();
    if n > 3 && token.ends_with('s') && !token.ends_with("ss") {
        &token[..n - 1]
    } else {
        token
    }
}

/// Identity key: the no-stemming behaviour of the paper's production
/// systems.
pub fn identity_key(token: &str) -> &str {
    token
}

/// How tokens are folded into vocabulary entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum TokenFold {
    /// No folding at all (paper §5.4 default for large collections).
    #[default]
    None,
    /// Trivial plural folding (paper §3 example behaviour).
    PluralFold,
}

impl TokenFold {
    /// The vocabulary key for `token` under this fold.
    pub fn key<'a>(&self, token: &'a str) -> &'a str {
        match self {
            TokenFold::None => identity_key(token),
            TokenFold::PluralFold => plural_key(token),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_fold_merges_trivial_plurals() {
        assert_eq!(plural_key("cultures"), "culture");
        assert_eq!(plural_key("patients"), "patient");
        assert_eq!(plural_key("rats"), "rat");
        assert_eq!(plural_key("kidneys"), "kidney");
    }

    #[test]
    fn plural_fold_keeps_non_plurals() {
        assert_eq!(plural_key("close"), "close");
        assert_eq!(plural_key("fast"), "fast");
        assert_eq!(plural_key("study"), "study");
        // "studied" must NOT fold to "study" (Table 3: M6 has no
        // "study" entry).
        assert_eq!(plural_key("studied"), "studied");
    }

    #[test]
    fn plural_fold_respects_ss_and_short_words() {
        assert_eq!(plural_key("class"), "class");
        assert_eq!(plural_key("press"), "press");
        assert_eq!(plural_key("is"), "is");
        assert_eq!(plural_key("gas"), "gas");
        assert_eq!(plural_key("s"), "s");
    }

    #[test]
    fn fold_modes_dispatch() {
        assert_eq!(TokenFold::None.key("cultures"), "cultures");
        assert_eq!(TokenFold::PluralFold.key("cultures"), "culture");
    }

    #[test]
    fn doctor_doctors_doctoral_example() {
        // §5.4: doctors ~ doctor, doctoral distinct.
        assert_eq!(plural_key("doctors"), "doctor");
        assert_ne!(plural_key("doctoral"), "doctor");
    }
}
