//! Local and global term weighting (Eq. 5 of the paper:
//! `a_ij = L(i, j) × G(i)`).
//!
//! §5.1 of the paper: "A log transformation of the local cell entries
//! combined with a global entropy weight for terms is the most effective
//! term-weighting scheme. Averaged over five test collections,
//! log × entropy weighting was 40% more effective than raw term
//! weighting." All schemes compared there are implemented here.

use serde::{Deserialize, Serialize};

use lsi_sparse::CscMatrix;

/// Local weighting `L(i, j)` applied to each cell's raw frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LocalWeight {
    /// Raw term frequency (the paper's unweighted baseline).
    #[default]
    RawTf,
    /// `log2(1 + tf)` — the paper's best local scheme.
    Log,
    /// `1` if the term occurs, else `0`.
    Binary,
}

impl LocalWeight {
    /// Apply to a raw frequency.
    pub fn apply(&self, tf: f64) -> f64 {
        match self {
            LocalWeight::RawTf => tf,
            LocalWeight::Log => (1.0 + tf).log2(),
            LocalWeight::Binary => {
                if tf > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Global weighting `G(i)`, one factor per term (matrix row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GlobalWeight {
    /// No global weighting.
    #[default]
    None,
    /// Inverse document frequency: `log2(n / df_i) + 1`.
    Idf,
    /// Entropy weighting — the paper's best global scheme:
    /// `1 + Σ_j (p_ij log2 p_ij) / log2 n`, `p_ij = tf_ij / gf_i`.
    Entropy,
    /// `gf_i / df_i` (global frequency over document frequency).
    GfIdf,
    /// `1 / sqrt(Σ_j tf_ij²)` — row normalization.
    Normal,
}

/// A complete weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TermWeighting {
    /// The local component.
    pub local: LocalWeight,
    /// The global component.
    pub global: GlobalWeight,
}

impl TermWeighting {
    /// Raw counts, no weighting (the §3 example: "For simplicity, term
    /// weighting is not used").
    pub fn none() -> Self {
        TermWeighting {
            local: LocalWeight::RawTf,
            global: GlobalWeight::None,
        }
    }

    /// The paper's recommended `log × entropy` scheme.
    pub fn log_entropy() -> Self {
        TermWeighting {
            local: LocalWeight::Log,
            global: GlobalWeight::Entropy,
        }
    }

    /// Classic `tf × idf`.
    pub fn tf_idf() -> Self {
        TermWeighting {
            local: LocalWeight::RawTf,
            global: GlobalWeight::Idf,
        }
    }

    /// Compute the per-term global weights for a raw count matrix.
    pub fn global_weights(&self, counts: &CscMatrix) -> Vec<f64> {
        let m = counts.nrows();
        let n = counts.ncols();
        let mut df = vec![0usize; m];
        let mut gf = vec![0.0f64; m];
        let mut sumsq = vec![0.0f64; m];
        for (r, _, v) in counts.iter() {
            if v != 0.0 {
                df[r] += 1;
                gf[r] += v;
                sumsq[r] += v * v;
            }
        }
        match self.global {
            GlobalWeight::None => vec![1.0; m],
            GlobalWeight::Idf => (0..m)
                .map(|i| {
                    if df[i] == 0 {
                        0.0
                    } else {
                        (n as f64 / df[i] as f64).log2() + 1.0
                    }
                })
                .collect(),
            GlobalWeight::GfIdf => (0..m)
                .map(|i| if df[i] == 0 { 0.0 } else { gf[i] / df[i] as f64 })
                .collect(),
            GlobalWeight::Normal => (0..m)
                .map(|i| {
                    let s = sumsq[i].sqrt();
                    if s == 0.0 {
                        0.0
                    } else {
                        1.0 / s
                    }
                })
                .collect(),
            GlobalWeight::Entropy => {
                let logn = (n as f64).log2();
                let mut entropy_sum = vec![0.0f64; m];
                for (r, _, v) in counts.iter() {
                    if v > 0.0 && gf[r] > 0.0 {
                        let p = v / gf[r];
                        entropy_sum[r] += p * p.log2();
                    }
                }
                (0..m)
                    .map(|i| {
                        if df[i] == 0 {
                            0.0
                        } else if logn == 0.0 {
                            1.0
                        } else {
                            1.0 + entropy_sum[i] / logn
                        }
                    })
                    .collect()
            }
        }
    }

    /// Weight a raw count matrix, returning the weighted matrix and the
    /// global weight vector (needed to weight queries consistently).
    pub fn apply(&self, counts: &CscMatrix) -> WeightedMatrix {
        lsi_obs::add_flops(2.0 * counts.nnz() as f64);
        lsi_obs::count("text.weighting.nnz.count", counts.nnz() as u64);
        let global = self.global_weights(counts);
        let mut weighted = counts.clone();
        let local = self.local;
        weighted.map_values(|v| local.apply(v));
        weighted
            .scale_rows(&global)
            .expect("global weight vector has one entry per row");
        WeightedMatrix {
            matrix: weighted,
            global,
            scheme: *self,
        }
    }

    /// Weight a query's raw term counts using stored global weights
    /// ("the vector of words in the user's query, multiplied by the
    /// appropriate term weights", §2.2).
    pub fn weight_query(&self, counts: &[f64], global: &[f64]) -> Vec<f64> {
        assert_eq!(counts.len(), global.len());
        counts
            .iter()
            .zip(global.iter())
            .map(|(&c, &g)| self.local.apply(c) * g)
            .collect()
    }
}

/// A weighted term-document matrix plus the reusable global weights.
#[derive(Debug, Clone)]
pub struct WeightedMatrix {
    /// The weighted matrix `A` of Eq. 5.
    pub matrix: CscMatrix,
    /// Per-term global weights `G(i)`.
    pub global: Vec<f64>,
    /// The scheme used.
    pub scheme: TermWeighting,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_sparse::CooMatrix;

    fn counts() -> CscMatrix {
        // term 0: [2, 0, 1]; term 1: [1, 1, 1]; term 2: [0, 4, 0]
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 2.0),
            (0, 2, 1.0),
            (1, 0, 1.0),
            (1, 1, 1.0),
            (1, 2, 1.0),
            (2, 1, 4.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn raw_none_is_identity() {
        let w = TermWeighting::none().apply(&counts());
        assert_eq!(w.matrix, counts());
        assert_eq!(w.global, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn log_local_transform() {
        let scheme = TermWeighting {
            local: LocalWeight::Log,
            global: GlobalWeight::None,
        };
        let w = scheme.apply(&counts());
        assert!((w.matrix.get(0, 0) - 3.0f64.log2()).abs() < 1e-12);
        assert!((w.matrix.get(2, 1) - 5.0f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn binary_local_transform() {
        let scheme = TermWeighting {
            local: LocalWeight::Binary,
            global: GlobalWeight::None,
        };
        let w = scheme.apply(&counts());
        assert_eq!(w.matrix.get(0, 0), 1.0);
        assert_eq!(w.matrix.get(2, 1), 1.0);
        assert_eq!(w.matrix.get(2, 0), 0.0);
    }

    #[test]
    fn idf_weights() {
        let scheme = TermWeighting::tf_idf();
        let g = scheme.global_weights(&counts());
        // term 0: df 2 -> log2(3/2)+1; term 1: df 3 -> log2(1)+1 = 1;
        // term 2: df 1 -> log2(3)+1.
        assert!((g[0] - (1.5f64.log2() + 1.0)).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12);
        assert!((g[2] - (3.0f64.log2() + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn entropy_weights_bounds_and_extremes() {
        let scheme = TermWeighting::log_entropy();
        let g = scheme.global_weights(&counts());
        // Term 2 occurs in exactly one document: maximally informative,
        // entropy weight 1.
        assert!((g[2] - 1.0).abs() < 1e-12);
        // Term 1 occurs evenly in all documents: minimally informative,
        // entropy weight 0.
        assert!(g[1].abs() < 1e-12);
        // All weights in [0, 1].
        for &w in &g {
            assert!((-1e-12..=1.0 + 1e-12).contains(&w));
        }
        // Term 0 is in between.
        assert!(g[0] > g[1] && g[0] < g[2]);
    }

    #[test]
    fn gfidf_weights() {
        let scheme = TermWeighting {
            local: LocalWeight::RawTf,
            global: GlobalWeight::GfIdf,
        };
        let g = scheme.global_weights(&counts());
        assert!((g[0] - 1.5).abs() < 1e-12); // gf 3 / df 2
        assert!((g[1] - 1.0).abs() < 1e-12); // gf 3 / df 3
        assert!((g[2] - 4.0).abs() < 1e-12); // gf 4 / df 1
    }

    #[test]
    fn normal_weights_normalize_rows() {
        let scheme = TermWeighting {
            local: LocalWeight::RawTf,
            global: GlobalWeight::Normal,
        };
        let w = scheme.apply(&counts());
        // Each nonzero row of the weighted matrix has unit 2-norm.
        let csr = w.matrix.to_csr();
        for r in 0..3 {
            let (_, vals) = csr.row(r);
            let norm: f64 = vals.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12, "row {r} norm {norm}");
        }
    }

    #[test]
    fn query_weighting_consistent_with_matrix() {
        let scheme = TermWeighting::log_entropy();
        let w = scheme.apply(&counts());
        let q = scheme.weight_query(&[1.0, 0.0, 2.0], &w.global);
        assert!((q[0] - 2.0f64.log2() * w.global[0]).abs() < 1e-12);
        assert_eq!(q[1], 0.0);
        assert!((q[2] - 3.0f64.log2() * w.global[2]).abs() < 1e-12);
    }

    #[test]
    fn empty_row_gets_zero_weight() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        let counts = coo.to_csc();
        for scheme in [
            TermWeighting::tf_idf(),
            TermWeighting::log_entropy(),
            TermWeighting {
                local: LocalWeight::RawTf,
                global: GlobalWeight::Normal,
            },
        ] {
            let g = scheme.global_weights(&counts);
            assert_eq!(g[1], 0.0, "scheme {scheme:?}");
        }
    }
}
