//! Tokenization.
//!
//! §5.4 of the paper: "Words are identified by looking for white spaces
//! and punctuation in ASCII text." Tokens are lowercased; no other
//! normalization happens here.

/// Split `text` into lowercase word tokens.
///
/// A token is a maximal run of alphanumeric characters; everything else
/// (whitespace, punctuation, symbols) is a separator. Numbers are kept
/// as tokens — they are ordinary vocabulary items to LSI.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenize and drop tokens shorter than `min_len` characters.
pub fn tokenize_min_len(text: &str, min_len: usize) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.chars().count() >= min_len)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(
            tokenize("study of depressed patients, after discharge!"),
            vec!["study", "of", "depressed", "patients", "after", "discharge"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("Latent Semantic INDEXING"), vec!["latent", "semantic", "indexing"]);
    }

    #[test]
    fn keeps_numbers() {
        assert_eq!(tokenize("TREC-2 has 1000000 docs"), vec!["trec", "2", "has", "1000000", "docs"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... --- !!!").is_empty());
    }

    #[test]
    fn splits_possessives() {
        // "children s behavior" in the MED topics comes from
        // "children's"; the apostrophe is a separator.
        assert_eq!(tokenize("children's behavior"), vec!["children", "s", "behavior"]);
    }

    #[test]
    fn unicode_is_handled() {
        assert_eq!(tokenize("naïve Σigma"), vec!["naïve", "σigma"]);
    }

    #[test]
    fn min_len_filter() {
        assert_eq!(tokenize_min_len("a bb ccc dddd", 3), vec!["ccc", "dddd"]);
    }
}
