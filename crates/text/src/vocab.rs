//! Vocabulary construction and term-document count matrices.
//!
//! Applies the paper's parsing rules: stop-word removal, an optional
//! plural fold, and the document-frequency threshold ("keywords appear
//! in more than one topic", §3). Terms are ordered alphabetically by
//! display form — the ordering Table 3 and Figure 5 of the paper use.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use lsi_sparse::{CooMatrix, CscMatrix};

use crate::corpus::Corpus;
use crate::normalize::TokenFold;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;

/// Rules governing which tokens become indexed terms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParsingRules {
    /// Minimum number of distinct documents a term must occur in.
    /// The §3 example uses 2 ("appear in more than one topic").
    pub min_df: usize,
    /// Maximum fraction of documents a term may occur in (1.0 disables
    /// the cap). Very common terms carry little signal.
    pub max_df_fraction: f64,
    /// Minimum token length in characters.
    pub min_token_len: usize,
    /// Whether the stop-word list applies.
    pub use_stopwords: bool,
    /// Token folding mode (plural equivalence for the MED example).
    pub fold: TokenFold,
    /// Highest order of word n-grams indexed as terms (1 = single
    /// words only; 2 adds adjacent word pairs — the paper's §5.4
    /// "phrases or n-grams could also be included as rows in the
    /// matrix"). Pairs are formed over the stop-word-filtered token
    /// stream and are subject to the same df window as words.
    pub word_ngrams: usize,
}

impl Default for ParsingRules {
    fn default() -> Self {
        ParsingRules {
            min_df: 2,
            max_df_fraction: 1.0,
            min_token_len: 1,
            use_stopwords: true,
            fold: TokenFold::None,
            word_ngrams: 1,
        }
    }
}

impl ParsingRules {
    /// The exact rules of the paper's §3 MED example.
    pub fn paper_example() -> Self {
        ParsingRules {
            min_df: 2,
            max_df_fraction: 1.0,
            min_token_len: 1,
            use_stopwords: true,
            fold: TokenFold::PluralFold,
            word_ngrams: 1,
        }
    }
}

/// An indexed vocabulary: term keys, display forms, and statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    rules: ParsingRules,
    /// Display form of each term, sorted ascending; row `i` of the
    /// term-document matrix is `displays[i]`.
    displays: Vec<String>,
    /// Fold-key of each term, parallel to `displays`.
    keys: Vec<String>,
    /// Map fold-key -> term index.
    index: HashMap<String, usize>,
    /// Document frequency of each term.
    doc_freq: Vec<usize>,
    /// Global (corpus-wide) frequency of each term.
    global_freq: Vec<usize>,
    /// Number of documents the vocabulary was built from.
    n_docs: usize,
}

impl Vocabulary {
    /// Build a vocabulary from a corpus under the given rules.
    pub fn build(corpus: &Corpus, rules: &ParsingRules) -> Vocabulary {
        // Pass 1: per-key stats and surface-form counts.
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut gf: HashMap<String, usize> = HashMap::new();
        let mut surface_counts: HashMap<String, HashMap<String, usize>> = HashMap::new();
        for doc in &corpus.docs {
            let mut seen_in_doc: HashMap<String, bool> = HashMap::new();
            for (surface, key) in Self::index_units(&doc.text, rules) {
                *gf.entry(key.clone()).or_insert(0) += 1;
                *surface_counts
                    .entry(key.clone())
                    .or_default()
                    .entry(surface)
                    .or_insert(0) += 1;
                seen_in_doc.entry(key).or_insert(true);
            }
            for key in seen_in_doc.into_keys() {
                *df.entry(key).or_insert(0) += 1;
            }
        }

        let n_docs = corpus.len();
        let max_df = if rules.max_df_fraction >= 1.0 {
            usize::MAX
        } else {
            (rules.max_df_fraction * n_docs as f64).floor() as usize
        };

        // Select keys passing the df window; pick the most frequent
        // surface form (ties: lexicographically first) as display.
        let mut entries: Vec<(String, String)> = df
            .iter()
            .filter(|(_, &d)| d >= rules.min_df && d <= max_df)
            .map(|(key, _)| {
                let surfaces = &surface_counts[key];
                let display = surfaces
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                    .map(|(s, _)| s.clone())
                    .expect("key has at least one surface form");
                (display, key.clone())
            })
            .collect();
        entries.sort();

        let displays: Vec<String> = entries.iter().map(|(d, _)| d.clone()).collect();
        let keys: Vec<String> = entries.iter().map(|(_, k)| k.clone()).collect();
        let index: HashMap<String, usize> =
            keys.iter().enumerate().map(|(i, k)| (k.clone(), i)).collect();
        let doc_freq: Vec<usize> = keys.iter().map(|k| df[k]).collect();
        let global_freq: Vec<usize> = keys.iter().map(|k| gf[k]).collect();

        lsi_obs::count("text.vocab.terms.count", keys.len() as u64);
        lsi_obs::count("text.vocab.docs.count", n_docs as u64);

        Vocabulary {
            rules: rules.clone(),
            displays,
            keys,
            index,
            doc_freq,
            global_freq,
            n_docs,
        }
    }

    /// Tokens of `text` that pass the token-level rules (length, stop
    /// words) — before df filtering.
    fn admissible_tokens(text: &str, rules: &ParsingRules) -> impl Iterator<Item = String> {
        let use_stop = rules.use_stopwords;
        let min_len = rules.min_token_len;
        tokenize(text).into_iter().filter(move |t| {
            t.chars().count() >= min_len && !(use_stop && is_stopword(t))
        })
    }

    /// The indexable units of `text` as `(surface, fold-key)` pairs:
    /// each admissible word, plus — when `rules.word_ngrams >= 2` —
    /// each pair of adjacent admissible words (a "phrase row" in the
    /// §5.4 sense), joined with a single space.
    fn index_units(text: &str, rules: &ParsingRules) -> Vec<(String, String)> {
        let toks: Vec<String> = Self::admissible_tokens(text, rules).collect();
        let mut units: Vec<(String, String)> = toks
            .iter()
            .map(|t| (t.clone(), rules.fold.key(t).to_string()))
            .collect();
        if rules.word_ngrams >= 2 {
            for w in toks.windows(2) {
                let surface = format!("{} {}", w[0], w[1]);
                let key = format!("{} {}", rules.fold.key(&w[0]), rules.fold.key(&w[1]));
                units.push((surface, key));
            }
        }
        units
    }

    /// Number of indexed terms (`m` of the paper).
    pub fn len(&self) -> usize {
        self.displays.len()
    }

    /// Is the vocabulary empty?
    pub fn is_empty(&self) -> bool {
        self.displays.is_empty()
    }

    /// Number of documents the vocabulary was built from.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Display form of term `i`.
    pub fn term(&self, i: usize) -> &str {
        &self.displays[i]
    }

    /// All display forms, in row order.
    pub fn terms(&self) -> &[String] {
        &self.displays
    }

    /// Row index of `token` (tokenizes/folds the input first), if
    /// indexed. Phrase terms are looked up by their space-separated
    /// form ("blood pressure").
    pub fn index_of(&self, token: &str) -> Option<usize> {
        let lowered = token.to_lowercase();
        let key: String = lowered
            .split_whitespace()
            .map(|w| self.rules.fold.key(w))
            .collect::<Vec<_>>()
            .join(" ");
        self.index.get(key.as_str()).copied()
    }

    /// Document frequency of term `i`.
    pub fn doc_freq(&self, i: usize) -> usize {
        self.doc_freq[i]
    }

    /// Corpus-wide frequency of term `i`.
    pub fn global_freq(&self, i: usize) -> usize {
        self.global_freq[i]
    }

    /// The parsing rules this vocabulary was built with.
    pub fn rules(&self) -> &ParsingRules {
        &self.rules
    }

    /// Count raw term frequencies of `text` against this vocabulary
    /// (the paper's query vector `q` before weighting).
    pub fn count_vector(&self, text: &str) -> Vec<f64> {
        let mut counts = vec![0.0; self.len()];
        for (_, key) in Self::index_units(text, &self.rules) {
            if let Some(&i) = self.index.get(&key) {
                counts[i] += 1.0;
            }
        }
        counts
    }

    /// Sparse version of [`Vocabulary::count_vector`]:
    /// `(indices, counts)` pairs sorted by index.
    pub fn sparse_count_vector(&self, text: &str) -> (Vec<usize>, Vec<f64>) {
        let dense = self.count_vector(text);
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (i, &c) in dense.iter().enumerate() {
            if c != 0.0 {
                idx.push(i);
                val.push(c);
            }
        }
        (idx, val)
    }

    /// Build the raw term-document *count* matrix for `corpus`
    /// (Eq. 4 of the paper: `a_ij` = frequency of term `i` in doc `j`).
    ///
    /// The corpus need not be the one the vocabulary was built from —
    /// that is exactly what folding-in new documents requires.
    pub fn count_matrix(&self, corpus: &Corpus) -> CscMatrix {
        let mut coo = CooMatrix::new(self.len(), corpus.len());
        for (j, doc) in corpus.docs.iter().enumerate() {
            for (_, key) in Self::index_units(&doc.text, &self.rules) {
                if let Some(&i) = self.index.get(&key) {
                    coo.push(i, j, 1.0).expect("indices within shape");
                }
            }
        }
        let csc = coo.to_csc();
        lsi_obs::count("text.count_matrix.nnz.count", csc.nnz() as u64);
        csc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        Corpus::from_pairs([
            ("d1", "the cat sat on the mat"),
            ("d2", "a cat and a dog"),
            ("d3", "the dog chased the cat"),
        ])
    }

    #[test]
    fn min_df_filters_rare_terms() {
        let v = Vocabulary::build(&tiny_corpus(), &ParsingRules::default());
        // cat (df 3) and dog (df 2) survive; sat/mat/chased (df 1) do
        // not; the/a/and/on are stop words.
        assert_eq!(v.terms(), &["cat", "dog"]);
        assert_eq!(v.doc_freq(0), 3);
        assert_eq!(v.doc_freq(1), 2);
    }

    #[test]
    fn terms_are_alphabetical() {
        let c = Corpus::from_pairs([("1", "zebra apple zebra"), ("2", "apple zebra mango")]);
        let v = Vocabulary::build(&c, &ParsingRules::default());
        assert_eq!(v.terms(), &["apple", "zebra"]);
    }

    #[test]
    fn min_df_one_keeps_everything_content() {
        let rules = ParsingRules {
            min_df: 1,
            ..Default::default()
        };
        let v = Vocabulary::build(&tiny_corpus(), &rules);
        assert!(v.terms().contains(&"sat".to_string()));
        assert!(!v.terms().contains(&"the".to_string()));
    }

    #[test]
    fn max_df_fraction_drops_ubiquitous_terms() {
        let rules = ParsingRules {
            min_df: 1,
            max_df_fraction: 0.67,
            ..Default::default()
        };
        let v = Vocabulary::build(&tiny_corpus(), &rules);
        // cat appears in all 3 docs (df fraction 1.0 > 0.67) -> dropped.
        assert!(!v.terms().contains(&"cat".to_string()));
        assert!(v.terms().contains(&"dog".to_string()));
    }

    #[test]
    fn plural_fold_merges_and_picks_majority_display() {
        let c = Corpus::from_pairs([
            ("1", "culture culture"),
            ("2", "cultures"),
            ("3", "culture"),
        ]);
        let rules = ParsingRules {
            fold: TokenFold::PluralFold,
            ..Default::default()
        };
        let v = Vocabulary::build(&c, &rules);
        assert_eq!(v.terms(), &["culture"]);
        assert_eq!(v.doc_freq(0), 3);
        assert_eq!(v.global_freq(0), 4);
        // Both surface forms resolve to the same row.
        assert_eq!(v.index_of("culture"), Some(0));
        assert_eq!(v.index_of("cultures"), Some(0));
    }

    #[test]
    fn count_matrix_matches_frequencies() {
        let c = Corpus::from_pairs([("1", "cat cat dog"), ("2", "dog cat")]);
        let rules = ParsingRules {
            min_df: 1,
            ..Default::default()
        };
        let v = Vocabulary::build(&c, &rules);
        let m = v.count_matrix(&c);
        assert_eq!(m.shape(), (2, 2));
        let cat = v.index_of("cat").unwrap();
        let dog = v.index_of("dog").unwrap();
        assert_eq!(m.get(cat, 0), 2.0);
        assert_eq!(m.get(dog, 0), 1.0);
        assert_eq!(m.get(cat, 1), 1.0);
    }

    #[test]
    fn count_vector_ignores_unknown_and_stop_words() {
        let v = Vocabulary::build(&tiny_corpus(), &ParsingRules::default());
        let q = v.count_vector("the cat saw another cat and a unicorn");
        let cat = v.index_of("cat").unwrap();
        assert_eq!(q[cat], 2.0);
        assert_eq!(q.iter().sum::<f64>(), 2.0);
    }

    #[test]
    fn sparse_count_vector_matches_dense() {
        let v = Vocabulary::build(&tiny_corpus(), &ParsingRules::default());
        let (idx, val) = v.sparse_count_vector("dog dog cat");
        let dense = v.count_vector("dog dog cat");
        for (i, &ix) in idx.iter().enumerate() {
            assert_eq!(dense[ix], val[i]);
        }
        assert_eq!(val.iter().sum::<f64>(), 3.0);
    }

    #[test]
    fn count_matrix_on_unseen_corpus() {
        // Folding-in: count a new document against an existing vocab.
        let v = Vocabulary::build(&tiny_corpus(), &ParsingRules::default());
        let new_corpus = Corpus::from_pairs([("new", "a cat a dog a zebra")]);
        let m = v.count_matrix(&new_corpus);
        assert_eq!(m.shape(), (2, 1));
        assert_eq!(m.get(0, 0), 1.0); // cat
        assert_eq!(m.get(1, 0), 1.0); // dog; zebra ignored
    }

    #[test]
    fn word_bigrams_become_phrase_terms() {
        let c = Corpus::from_pairs([
            ("1", "high blood pressure is dangerous"),
            ("2", "high blood pressure and heart disease"),
            ("3", "blood donation saves lives"),
        ]);
        let rules = ParsingRules {
            min_df: 2,
            word_ngrams: 2,
            ..Default::default()
        };
        let v = Vocabulary::build(&c, &rules);
        // Phrases appearing in >1 doc are indexed alongside words.
        assert!(v.index_of("blood pressure").is_some(), "terms: {:?}", v.terms());
        assert!(v.index_of("high blood").is_some());
        // A phrase occurring once is not.
        assert!(v.index_of("blood donation").is_none());
        // Its constituent word still is.
        assert!(v.index_of("blood").is_some());
    }

    #[test]
    fn phrase_counting_respects_adjacency() {
        let c = Corpus::from_pairs([
            ("1", "blood pressure blood pressure"),
            ("2", "blood pressure"),
            ("3", "pressure blood"), // reversed: a different phrase
        ]);
        let rules = ParsingRules {
            min_df: 2,
            word_ngrams: 2,
            ..Default::default()
        };
        let v = Vocabulary::build(&c, &rules);
        let bp = v.index_of("blood pressure").unwrap();
        let m = v.count_matrix(&c);
        assert_eq!(m.get(bp, 0), 2.0);
        assert_eq!(m.get(bp, 1), 1.0);
        assert_eq!(m.get(bp, 2), 0.0, "reversed pair is not the phrase");
        // "pressure blood" occurs in doc 0 (between the two phrase
        // copies) and doc 2, so it is indexed too.
        assert!(v.index_of("pressure blood").is_some());
    }

    #[test]
    fn phrase_query_vector_counts_phrases() {
        let c = Corpus::from_pairs([
            ("1", "machine learning rocks"),
            ("2", "machine learning wins"),
        ]);
        let rules = ParsingRules {
            min_df: 2,
            word_ngrams: 2,
            ..Default::default()
        };
        let v = Vocabulary::build(&c, &rules);
        let q = v.count_vector("machine learning");
        let ml = v.index_of("machine learning").unwrap();
        assert_eq!(q[ml], 1.0);
        // And the unigrams count too.
        assert_eq!(q[v.index_of("machine").unwrap()], 1.0);
        assert_eq!(q[v.index_of("learning").unwrap()], 1.0);
    }

    #[test]
    fn unigram_mode_indexes_no_phrases() {
        let c = Corpus::from_pairs([("1", "blood pressure"), ("2", "blood pressure")]);
        let v = Vocabulary::build(&c, &ParsingRules::default());
        assert!(v.index_of("blood pressure").is_none());
        assert!(v.index_of("blood").is_some());
    }

    #[test]
    fn index_of_handles_case() {
        let v = Vocabulary::build(&tiny_corpus(), &ParsingRules::default());
        assert_eq!(v.index_of("CAT"), v.index_of("cat"));
    }
}
