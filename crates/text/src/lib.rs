//! Text processing for LSI: tokenization, vocabulary construction, and
//! term weighting.
//!
//! The paper's pipeline (§1) starts with "parsing document texts,
//! creating a term by document matrix". Its conventions, which this
//! crate follows exactly:
//!
//! * words are "identified by looking for white spaces and punctuation"
//!   (§5.4) — [`tokenize()`],
//! * "no stemming is used" beyond surface-form identity (§5.4); the
//!   small MED example of §3 does fold trivial plurals ("blood
//!   *cultures*" indexes under *culture*), so an optional
//!   plural-equivalence fold is provided — [`normalize`],
//! * "the parsing rule ... required that keywords appear in more than
//!   one topic" (§3) — the `min_df` rule of [`vocab::ParsingRules`],
//! * stop words ("of", "children", "with" are dropped from the §3.1
//!   query because they are "not indexed terms") — [`stopwords`],
//! * cell values are term frequencies (Eq. 4) transformed by local and
//!   global weights (Eq. 5): `a_ij = L(i,j) × G(i)` — [`weighting`].

pub mod corpus;
pub mod ngram;
pub mod normalize;
pub mod stopwords;
pub mod tokenize;
pub mod vocab;
pub mod weighting;

pub use corpus::{Corpus, Document};
pub use tokenize::tokenize;
pub use vocab::{ParsingRules, Vocabulary};
pub use weighting::{GlobalWeight, LocalWeight, TermWeighting, WeightedMatrix};
