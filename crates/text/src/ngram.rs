//! Character n-gram extraction.
//!
//! Kukich's spelling-correction application of LSI (§5.4 of the paper)
//! builds a matrix whose *rows* are character unigrams/bigrams/trigrams
//! and whose *columns* are correctly spelled words; a query word "is
//! broken down into its bigrams and trigrams" and located at the
//! weighted vector sum of those elements.

/// Extract all character n-grams of length `n` from `word`, including
/// boundary-padded grams (`^wo`, `rd$`-style) when `pad` is true —
/// padding makes word-initial and word-final grams distinctive, which
/// helps short words.
pub fn char_ngrams(word: &str, n: usize, pad: bool) -> Vec<String> {
    assert!(n >= 1, "n-gram length must be at least 1");
    let mut chars: Vec<char> = Vec::new();
    if pad && n > 1 {
        chars.push('^');
    }
    chars.extend(word.chars());
    if pad && n > 1 {
        chars.push('$');
    }
    if chars.len() < n {
        return Vec::new();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// The union of bigrams and trigrams of `word` (Kukich's feature set).
pub fn bigrams_and_trigrams(word: &str, pad: bool) -> Vec<String> {
    let mut grams = char_ngrams(word, 2, pad);
    grams.extend(char_ngrams(word, 3, pad));
    grams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpadded_bigrams() {
        assert_eq!(char_ngrams("cat", 2, false), vec!["ca", "at"]);
    }

    #[test]
    fn padded_bigrams_mark_boundaries() {
        assert_eq!(char_ngrams("cat", 2, true), vec!["^c", "ca", "at", "t$"]);
    }

    #[test]
    fn trigrams() {
        assert_eq!(char_ngrams("word", 3, false), vec!["wor", "ord"]);
        assert_eq!(
            char_ngrams("word", 3, true),
            vec!["^wo", "wor", "ord", "rd$"]
        );
    }

    #[test]
    fn short_words_yield_empty_unpadded() {
        assert!(char_ngrams("a", 2, false).is_empty());
        // With padding, even one-letter words have boundary bigrams.
        assert_eq!(char_ngrams("a", 2, true), vec!["^a", "a$"]);
    }

    #[test]
    fn unigrams_never_pad() {
        assert_eq!(char_ngrams("ab", 1, true), vec!["a", "b"]);
    }

    #[test]
    fn combined_feature_set() {
        let grams = bigrams_and_trigrams("dumais", false);
        assert!(grams.contains(&"du".to_string()));
        assert!(grams.contains(&"ais".to_string()));
        assert_eq!(grams.len(), 5 + 4);
    }

    #[test]
    fn misspelling_shares_most_grams() {
        // The paper's OCR example: "Dumais" vs "Duniais" share many
        // n-grams, which is what makes LSI spelling correction work.
        let a = bigrams_and_trigrams("dumais", false);
        let b = bigrams_and_trigrams("duniais", false);
        let shared = a.iter().filter(|g| b.contains(g)).count();
        assert!(shared >= 3, "only {shared} shared grams");
    }
}
