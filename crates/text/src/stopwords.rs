//! Stop-word list.
//!
//! A compact English function-word list in the spirit of the SMART
//! system's (the paper's reference \[25\]); §3.1 of the paper drops "of",
//! "children", and "with" from the example query because they are "not
//! indexed terms" — function words land on this list, content words like
//! "children" are instead removed by the `min_df` parsing rule.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The embedded stop-word list, alphabetized.
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "across", "after", "again", "against", "all", "almost", "alone",
    "along", "already", "also", "although", "always", "am", "among", "an", "and", "another",
    "any", "anybody", "anyone", "anything", "anywhere", "are", "area", "around", "as", "ask",
    "at", "away", "back", "be", "became", "because", "become", "becomes", "been", "before",
    "behind", "being", "below", "between", "both", "but", "by", "came", "can", "cannot", "come",
    "could", "did", "do", "does", "done", "down", "during", "each", "either", "else", "enough",
    "even", "ever", "every", "everybody", "everyone", "everything", "everywhere", "few", "for",
    "from", "further", "gave", "get", "gets", "give", "given", "goes", "going", "got", "had",
    "has", "have", "having", "he", "her", "here", "hers", "herself", "him", "himself", "his",
    "how", "however", "i", "if", "in", "into", "is", "it", "its", "itself", "just", "keep",
    "kept", "knew", "know", "known", "last", "least", "less", "let", "like", "likely", "made",
    "make", "makes", "many", "may", "me", "might", "mine", "more", "most", "much", "must", "my",
    "myself", "near", "necessary", "need", "needs", "neither", "never", "next", "no", "nobody",
    "none", "nor", "not", "nothing", "now", "nowhere", "of", "off", "often", "on", "once", "one",
    "only", "onto", "or", "other", "others", "our", "ours", "ourselves", "out", "over", "own",
    "per", "perhaps", "put", "quite", "rather", "really", "s", "said", "same", "saw", "say",
    "says", "see", "seem", "seemed", "seeming", "seems", "seen", "several", "shall", "she",
    "should", "since", "so", "some", "somebody", "someone", "something", "somewhere", "still",
    "such", "take", "taken", "than", "that", "the", "their", "theirs", "them", "themselves",
    "then", "there", "therefore", "these", "they", "this", "those", "though", "through", "thus",
    "to", "together", "too", "toward", "towards", "under", "until", "up", "upon", "us", "use",
    "used", "uses", "very", "was", "we", "well", "went", "were", "what", "whatever", "when",
    "where", "whether", "which", "while", "who", "whole", "whom", "whose", "why", "will", "with",
    "within", "without", "would", "yet", "you", "your", "yours", "yourself", "yourselves",
];

fn stopword_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Is `token` (already lowercased) a stop word?
pub fn is_stopword(token: &str) -> bool {
    stopword_set().contains(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_words_are_stopped() {
        for w in ["of", "with", "the", "after", "and", "to", "by", "a", "in", "who", "s"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_not_stopped() {
        for w in [
            "children", "blood", "culture", "depressed", "fast", "oestrogen", "study",
            "patients", "pressure",
        ] {
            assert!(!is_stopword(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn list_is_sorted_and_unique() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "stop list out of order near {:?}", w);
        }
    }

    #[test]
    fn lookup_is_case_sensitive_lowercase_contract() {
        // Callers must lowercase first (the tokenizer does).
        assert!(!is_stopword("The"));
        assert!(is_stopword("the"));
    }
}
