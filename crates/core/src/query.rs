//! Query projection and cosine ranking.
//!
//! Eq. 6 of the paper: a query is "a vector of words ... multiplied by
//! the appropriate term weights", projected as `q̂ = qᵀ U_k Σ_k⁻¹`, then
//! "compared to all existing document vectors, and the documents ranked
//! by their similarity (nearness) to the query. One common measure of
//! similarity is the cosine ... Typically the z closest documents or all
//! documents exceeding some cosine threshold are returned."

use std::cmp::Ordering;
use std::sync::Arc;

use lsi_linalg::{ops, vecops, DenseMatrix};
use lsi_sparse::nnz_balanced_spans;
use rayon::prelude::*;

use crate::compressed::CompressedStore;
use crate::index::{ClusterIndex, IndexPolicy};
use crate::model::LsiModel;
use crate::querylog;
use crate::{Error, Result};

/// One retrieved document.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Row index in `V_k`.
    pub doc: usize,
    /// Document id (shared with the model — cloning a match is cheap).
    pub id: Arc<str>,
    /// Cosine similarity to the query.
    pub cosine: f64,
}

/// A ranked retrieval result.
#[derive(Debug, Clone, Default)]
pub struct RankedList {
    /// Matches, best first.
    pub matches: Vec<Match>,
}

impl RankedList {
    /// Keep only matches with cosine at or above `threshold` (the
    /// paper's Figure 6 uses 0.85, Table 4 uses 0.40).
    pub fn at_threshold(&self, threshold: f64) -> RankedList {
        RankedList {
            matches: self
                .matches
                .iter()
                .filter(|m| m.cosine >= threshold)
                .cloned()
                .collect(),
        }
    }

    /// Keep the top `z` matches.
    pub fn top(&self, z: usize) -> RankedList {
        RankedList {
            matches: self.matches.iter().take(z).cloned().collect(),
        }
    }

    /// Document ids in rank order.
    pub fn ids(&self) -> Vec<&str> {
        self.matches.iter().map(|m| m.id.as_ref()).collect()
    }

    /// Rank position (0-based) of a document id, if present.
    pub fn rank_of(&self, id: &str) -> Option<usize> {
        self.matches.iter().position(|m| m.id.as_ref() == id)
    }
}

/// Descending by score, ties broken by ascending document index — the
/// ordering every ranking entry point shares.
pub(crate) fn by_score_desc(scores: &[f64]) -> impl Fn(&usize, &usize) -> Ordering + '_ {
    // `unwrap_or(Equal)` instead of `expect`: scores are guarded at the
    // facet_cosines boundary, but a comparator must never panic — a NaN
    // that slips through degrades the ordering, not the process.
    move |&a: &usize, &b: &usize| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.cmp(&b))
    }
}

/// Order-reversing monotone map from an f64 score to a u64 sort key:
/// ascending key order is descending score order, with every distinct
/// bit pattern (including -0.0 vs +0.0) kept distinct. Branchless —
/// the key build runs once per document per query, and data-dependent
/// branches on scores are unpredictable there (every query is a fresh
/// pattern). Finiteness is guarded before every selection; a NaN that
/// slipped through would rank first, not panic.
#[inline]
pub(crate) fn desc_key_f64(s: f64) -> u64 {
    let b = s.to_bits();
    let mask = ((b as i64) >> 63) as u64;
    !(b ^ (mask | 0x8000_0000_0000_0000))
}

/// The f32 variant of [`desc_key_f64`] — the candidate sweep's key.
#[inline]
pub(crate) fn desc_key_f32(s: f32) -> u32 {
    let b = s.to_bits();
    let mask = ((b as i32) >> 31) as u32;
    !(b ^ (mask | 0x8000_0000))
}

/// Indices of the best `z` of `0..n` under `key_of` (ascending key =
/// better; ties broken by ascending index), sorted best-first. This is
/// the one selection implementation shared by the exact top-`z` path,
/// the compressed path's candidate pick, and the multi-facet top-`z` —
/// every ranking entry point sees identical tie handling.
///
/// The selection runs on plain integer (key, index) pairs via
/// `select_nth_unstable` rather than on an indirect score comparator:
/// branchless partitioning is immune to the branch-predictor misses
/// that dominate comparator-based selection here, where every query
/// presents a fresh, unlearnable comparison pattern (measured ~4x on
/// topic-clustered scores).
///
/// When `z` is much smaller than `n` (the serving case: top-10 of tens
/// of thousands), even one materialized `(key, index)` pair per
/// document costs more than the selection itself, so a bounded-scan
/// path keeps only the best `z` pairs seen so far and compares each new
/// key against the current worst. The replace branch is taken
/// ~`z·ln(n/z)` times in expectation (dozens, not thousands), so it
/// stays predictor-friendly despite being data-dependent. Both paths
/// order by the same `(key, index)` pairs, so results — including tie
/// handling — are identical.
pub(crate) fn select_top_by<K: Ord + Copy>(
    n: usize,
    z: usize,
    key_of: impl Fn(usize) -> K,
) -> Vec<usize> {
    let z = z.min(n);
    if z == 0 {
        return Vec::new();
    }
    // Threshold: the bounded scan's replace step is O(z), so it wins
    // while z stays a sliver of n; past that the partition amortizes
    // better. 1/32 keeps the worst-case replace traffic (n/32 · z)
    // at or under one full keyed materialization.
    if z <= 64 && n >= 32 * z {
        let mut kept: Vec<(K, u32)> = (0..z).map(|i| (key_of(i), i as u32)).collect();
        kept.sort_unstable();
        // `kept` stays sorted ascending; worst kept pair is last.
        for i in z..n {
            let key = key_of(i);
            // Scanning in ascending index order means a tie on key can
            // never displace an earlier index, so strict key comparison
            // against the worst kept pair is exactly pair comparison.
            if key < kept[z - 1].0 {
                let pair = (key, i as u32);
                let pos = kept.partition_point(|&p| p < pair);
                kept.pop();
                kept.insert(pos, pair);
            }
        }
        return kept.into_iter().map(|(_, i)| i as usize).collect();
    }
    let mut keyed: Vec<(K, u32)> = (0..n).map(|i| (key_of(i), i as u32)).collect();
    if z < n {
        keyed.select_nth_unstable(z - 1);
        keyed.truncate(z);
    }
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i as usize).collect()
}

impl LsiModel {
    /// Weight a raw term-count vector and project it into the factor
    /// space: `q̂ = qᵀ U_k Σ_k⁻¹` (Eq. 6). The counts must be over the
    /// model's *SVD-derived* term rows (folded-in terms participate via
    /// their rows of `U` as well — the vector length must equal
    /// [`LsiModel::n_terms`]).
    pub fn project_counts(&self, counts: &[f64]) -> Result<Vec<f64>> {
        if counts.len() != self.n_terms() {
            return Err(Error::Inconsistent {
                context: format!(
                    "query vector has {} entries but the model indexes {} terms",
                    counts.len(),
                    self.n_terms()
                ),
            });
        }
        lsi_obs::add_flops((2 * self.k() + 2) as f64 * counts.len() as f64);
        // Weight: local transform on counts, stored global weights.
        // Folded-in terms (if any) carry global weight 1.
        let mut weighted = Vec::with_capacity(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            let g = self.global_weights.get(i).copied().unwrap_or(1.0);
            weighted.push(self.weighting.local.apply(c) * g);
        }
        // q^T U_k (k independent vocabulary-length dots — matvec_t
        // splits them across the pool for large vocabularies), then
        // divide by sigma.
        let mut qhat = ops::matvec_t(&self.u, &weighted)?;
        for (q, &s) in qhat.iter_mut().zip(self.s.iter()) {
            if s > 0.0 {
                *q /= s;
            }
        }
        Ok(qhat)
    }

    /// Tokenize `text` against the vocabulary — including terms added
    /// later by folding-in or SVD-updating — and project it (Eq. 6).
    pub fn project_text(&self, text: &str) -> Result<Vec<f64>> {
        let mut counts = self.vocab.count_vector(text);
        counts.resize(self.n_terms(), 0.0);
        if !self.folded_terms.is_empty() {
            for tok in lsi_text::tokenize(text) {
                if self.vocab.index_of(&tok).is_none() {
                    if let Some(p) = self.folded_terms.iter().position(|t| *t == tok) {
                        counts[self.vocab.len() + p] += 1.0;
                    }
                }
            }
        }
        self.project_counts(&counts)
    }

    /// Cosine of every document against every facet, computed as one
    /// `V Q̂` matrix product (n_docs × n_facets) scaled by the
    /// precomputed document norms. Facets with no mass (or documents
    /// with a zero vector) score 0, matching [`vecops::cosine`].
    pub(crate) fn facet_cosines(&self, facets: &[&[f64]]) -> Result<DenseMatrix> {
        let k = self.k();
        let n = self.n_docs();
        for f in facets {
            if f.len() != k {
                return Err(Error::Inconsistent {
                    context: format!(
                        "projected query has {} dimensions but the model has {k} factors",
                        f.len()
                    ),
                });
            }
        }
        let nf = facets.len();
        if k == 0 || n == 0 {
            return Ok(DenseMatrix::zeros(n, nf));
        }
        // The V·Q̂ product plus the per-cell norm scaling.
        lsi_obs::add_flops(((2 * k + 3) * n * nf) as f64);
        lsi_obs::count("query.facets.count", nf as u64);
        let mut scores = if nf == 1 {
            // One facet is a GEMV: skip the GEMM's operand packing,
            // which would copy all of V for a single right-hand side.
            // The GEMV itself splits document rows across the pool for
            // large collections (single-query scoring hot path).
            DenseMatrix::from_col_major(n, 1, ops::matvec(&self.v, facets[0])?)?
        } else {
            let qdata: Vec<f64> = facets.iter().flat_map(|f| f.iter().copied()).collect();
            let qmat = DenseMatrix::from_col_major(k, nf, qdata)?;
            ops::matmul(&self.v, &qmat)?
        };
        for (f, facet) in facets.iter().enumerate() {
            let qnorm = vecops::nrm2(facet);
            let col = scores.col_mut(f);
            for (s, &dnorm) in col.iter_mut().zip(self.doc_norms.iter()) {
                *s = if qnorm > 0.0 && dnorm > 0.0 {
                    *s / (dnorm * qnorm)
                } else {
                    0.0
                };
            }
        }
        // Scoring boundary guard: everything downstream (sorting,
        // thresholding, CLI output) assumes finite cosines, so a NaN or
        // Inf produced here — by a corrupted model or an armed failpoint
        // — becomes a typed error instead of silently scrambled ranks.
        match lsi_fault::eval(lsi_fault::points::CORE_QUERY_SCORE) {
            Some(lsi_fault::Fired::ReturnErr) => {
                return Err(Error::Inconsistent {
                    context: format!(
                        "fault injected at failpoint `{}`",
                        lsi_fault::points::CORE_QUERY_SCORE
                    ),
                });
            }
            Some(lsi_fault::Fired::InjectNan) => {
                if let Some(first) = scores.data_mut().first_mut() {
                    *first = f64::NAN;
                }
            }
            None => {}
        }
        if !scores.data().iter().all(|s| s.is_finite()) {
            return Err(Error::NonFinite {
                context: "cosine scores (query scoring boundary)".into(),
            });
        }
        Ok(scores)
    }

    pub(crate) fn make_match(&self, j: usize, cosine: f64) -> Match {
        Match {
            doc: j,
            id: self.doc_ids[j].clone(),
            cosine,
        }
    }

    /// Rank all documents by cosine to the projected query vector.
    pub fn rank_projected(&self, qhat: &[f64]) -> Result<RankedList> {
        let scores = self.facet_cosines(&[qhat])?;
        let scores = scores.col(0);
        let mut order: Vec<usize> = (0..self.n_docs()).collect();
        order.sort_by(by_score_desc(scores));
        Ok(RankedList {
            matches: order
                .into_iter()
                .map(|j| self.make_match(j, scores[j]))
                .collect(),
        })
    }

    /// The `z` best documents for a projected query, without sorting
    /// the full collection. "Typically the z closest documents ... are
    /// returned" — this is the entry point for that typical case.
    ///
    /// With a reduced [`crate::compressed::Precision`] active, the
    /// scan runs two-phase: a compressed candidate sweep over all
    /// documents, then an exact f64 re-rank of the `max(4z, 64)`
    /// over-fetched candidates. For the f32 ladder a margin check
    /// certifies the result bit-identical to the exact scan, falling
    /// back to it whenever certification fails; the i8 ladder trades
    /// that certificate for an eighth of the bandwidth (the returned
    /// scores are still exact f64 cosines). [`Precision::Exact`]
    /// scores everything in f64 through the same shared selection.
    pub fn rank_projected_top(&self, qhat: &[f64], z: usize) -> Result<RankedList> {
        self.rank_projected_top_at(qhat, z, None)
    }

    /// [`LsiModel::rank_projected_top`] with a per-call probe-depth
    /// override: `Some(n)` routes through the trained cluster index at
    /// depth `n` regardless of the persisted [`IndexPolicy`] (the
    /// serve degradation ladder narrows probe depth under pressure
    /// without mutating the model), `None` follows the policy. An
    /// override with no trained index falls through to the policy
    /// path — [`LsiModel::train_index`] prepares the index up front.
    pub(crate) fn rank_projected_top_at(
        &self,
        qhat: &[f64],
        z: usize,
        nprobe_override: Option<usize>,
    ) -> Result<RankedList> {
        querylog::put_str("precision", self.precision().name());
        querylog::put_num("z", z as f64);
        let probe = match nprobe_override {
            Some(n) => self.index.as_ref().map(|ix| (ix, n)),
            None => match self.index_policy {
                IndexPolicy::Pruned { nprobe } => {
                    self.index.as_ref().map(|ix| (ix, nprobe))
                }
                IndexPolicy::Exact => None,
            },
        };
        if let Some((index, nprobe)) = probe {
            if let Some(ranked) = self.rank_top_pruned(index, nprobe, qhat, z)? {
                querylog::put_str("path", "pruned");
                return Ok(ranked);
            }
        }
        if let Some(store) = self.compressed.as_ref() {
            if let Some(ranked) = self.rank_top_compressed(store, qhat, z)? {
                querylog::put_str("path", "compressed");
                return Ok(ranked);
            }
            lsi_obs::count("score.rerank.fallback.count", 1);
            querylog::put_str("path", "fallback");
            let t = querylog::phase_timer();
            let ranked = self.rank_top_exact(qhat, z);
            querylog::phase_done(t, "fallback_us");
            return ranked;
        }
        querylog::put_str("path", "exact");
        self.rank_top_exact(qhat, z)
    }

    /// The classic exact top-`z`: one f64 GEMV over all documents plus
    /// the shared partition-and-sort selection.
    fn rank_top_exact(&self, qhat: &[f64], z: usize) -> Result<RankedList> {
        let scores = self.facet_cosines(&[qhat])?;
        let scores = scores.col(0);
        let order = select_top_by(self.n_docs(), z, |i| (desc_key_f64(scores[i]), i as u32));
        Ok(RankedList {
            matches: order
                .into_iter()
                .map(|j| self.make_match(j, scores[j]))
                .collect(),
        })
    }

    /// Exact f64 cosines for a batch of document rows against `qhat`,
    /// each bit-identical to the full sweep's score for that row: the
    /// column-outer subset GEMV ([`ops::matvec_rows`]) replays the
    /// span kernel's arithmetic per row, and the zero-norm guard
    /// matches `facet_cosines`. Sort `rows` ascending — the batched
    /// walk is prefetch-friendly in that order, where scattered
    /// single-row walks over a matrix the candidate sweep just
    /// evicted cost more than the sweep itself.
    pub(crate) fn exact_cosines_rows(
        &self,
        rows: &[usize],
        qhat: &[f64],
        qnorm: f64,
    ) -> Result<Vec<f64>> {
        let mut raws = ops::matvec_rows(&self.v, qhat, rows)?;
        for (raw, &j) in raws.iter_mut().zip(rows.iter()) {
            let dnorm = self.doc_norms[j];
            *raw = if qnorm > 0.0 && dnorm > 0.0 {
                *raw / (dnorm * qnorm)
            } else {
                0.0
            };
        }
        Ok(raws)
    }

    /// Two-phase compressed scan. Returns `Ok(None)` when the exact
    /// path should serve instead: trivial shapes, a non-finite
    /// compressed sweep (the failpoint's inject-nan lands here), or an
    /// uncertified f32 margin.
    fn rank_top_compressed(
        &self,
        store: &CompressedStore,
        qhat: &[f64],
        z: usize,
    ) -> Result<Option<RankedList>> {
        let k = self.k();
        let n = self.n_docs();
        if qhat.len() != k {
            return Err(Error::Inconsistent {
                context: format!(
                    "projected query has {} dimensions but the model has {k} factors",
                    qhat.len()
                ),
            });
        }
        if n == 0 || k == 0 || z == 0 {
            return Ok(None);
        }
        let qnorm = vecops::nrm2(qhat);
        let t_sweep = querylog::phase_timer();
        let approx = {
            let _span = lsi_obs::span("score.candidates");
            // The sweep streams the compressed replica once, plus the
            // projected query.
            lsi_obs::add_bytes((store.resident_bytes() + 8 * k) as f64);
            lsi_obs::add_flops((2 * k + 2) as f64 * n as f64);
            let mut approx = store.approx_scores(qhat, qnorm)?;
            // Same scoring-boundary failpoint as the exact path; the
            // compressed sweep differs in that inject-nan degrades
            // gracefully (non-finite guard → exact-scan fallback)
            // instead of erroring, because the exact path is still
            // available to serve the query.
            match lsi_fault::eval(lsi_fault::points::CORE_QUERY_SCORE) {
                Some(lsi_fault::Fired::ReturnErr) => {
                    return Err(Error::Inconsistent {
                        context: format!(
                            "fault injected at failpoint `{}`",
                            lsi_fault::points::CORE_QUERY_SCORE
                        ),
                    });
                }
                Some(lsi_fault::Fired::InjectNan) => {
                    if let Some(first) = approx.first_mut() {
                        *first = f32::NAN;
                    }
                }
                None => {}
            }
            approx
        };
        querylog::phase_done(t_sweep, "sweep_us");
        if !approx.iter().all(|s| s.is_finite()) {
            lsi_obs::warn!(
                "compressed candidate sweep produced non-finite scores; \
                 falling back to the exact f64 scan"
            );
            return Ok(None);
        }
        let z = z.min(n);
        let c = z
            .saturating_mul(crate::compressed::OVER_FETCH_FACTOR)
            .max(crate::compressed::OVER_FETCH_FLOOR)
            .min(n);
        let candidates =
            select_top_by(n, c, |i| ((desc_key_f32(approx[i]) as u64) << 32) | i as u64);
        lsi_obs::count("score.candidates.count", c as u64);
        querylog::put_num("candidates", c as f64);
        let t_rerank = querylog::phase_timer();
        let reranked = {
            let _span = lsi_obs::span("score.rerank");
            lsi_obs::add_bytes((c * k * 8) as f64);
            lsi_obs::add_flops(((2 * k + 3) * c) as f64);
            // Ascending row order keeps the batched kernel's column
            // walks prefetch-friendly; result order is irrelevant —
            // the exact selection below re-sorts by f64 score.
            let mut by_row = candidates.clone();
            by_row.sort_unstable();
            let cosines = self.exact_cosines_rows(&by_row, qhat, qnorm)?;
            by_row.into_iter().zip(cosines).collect::<Vec<(usize, f64)>>()
        };
        querylog::phase_done(t_rerank, "rerank_us");
        // The exact path's scoring-boundary guard, applied to the
        // re-ranked scores (the only f64 cosines this path computes).
        if !reranked.iter().all(|(_, s)| s.is_finite()) {
            return Err(Error::NonFinite {
                context: "cosine scores (query scoring boundary)".into(),
            });
        }
        lsi_obs::count("score.rerank.count", candidates.len() as u64);
        let exact_scores: Vec<f64> = reranked.iter().map(|&(_, s)| s).collect();
        let doc_of: Vec<usize> = reranked.iter().map(|&(j, _)| j).collect();
        // Tie-break by position == tie-break by document id: `reranked`
        // is built in ascending-row order, so `doc_of` is strictly
        // increasing in position.
        let order = select_top_by(reranked.len(), z, |i| {
            (desc_key_f64(exact_scores[i]), i as u32)
        });
        // Margin certificate (f32 only): every non-candidate document's
        // exact cosine is ≤ its approx score + bound ≤ cutoff + bound,
        // where the cutoff is the worst *selected* approx score (an
        // upper bound on every excluded one). If the z-th exact score
        // strictly clears that, no excluded document can belong in the
        // top-z, and within the candidates the re-rank is exact — the
        // result is bit-identical to the full f64 scan. Ties at the
        // boundary fail the strict test and fall back.
        if c < n {
            if let Some(bound) = store.rerank_margin(k) {
                let cutoff = candidates
                    .last()
                    .map(|&j| approx[j] as f64)
                    .unwrap_or(f64::NEG_INFINITY);
                let s_z = order
                    .last()
                    .map(|&i| exact_scores[i])
                    .unwrap_or(f64::NEG_INFINITY);
                if !(s_z > cutoff + bound) {
                    return Ok(None);
                }
            }
        }
        let out = Ok(Some(RankedList {
            matches: order
                .into_iter()
                .map(|i| self.make_match(doc_of[i], exact_scores[i]))
                .collect(),
        }));
        out
    }

    /// Cluster-pruned top-`z`: score the ~√n centroids instead of the
    /// `n` docs, probe the `nprobe` best lists, and sweep only the
    /// survivors. Returns `Ok(None)` when the exact machinery should
    /// serve instead (trivial shapes, a stale index, non-finite
    /// centroid scores, or empty probed lists).
    ///
    /// At `nprobe = n_lists` every doc survives, survivor scores are
    /// bit-identical per row to the full sweep, and ties break by doc
    /// id exactly as in [`LsiModel::rank_top_exact`] /
    /// [`LsiModel::rank_top_compressed`] — so the pruned result is
    /// bit-identical to the unpruned one, in every precision mode.
    fn rank_top_pruned(
        &self,
        index: &ClusterIndex,
        nprobe: usize,
        qhat: &[f64],
        z: usize,
    ) -> Result<Option<RankedList>> {
        let k = self.k();
        let n = self.n_docs();
        if qhat.len() != k {
            return Err(Error::Inconsistent {
                context: format!(
                    "projected query has {} dimensions but the model has {k} factors",
                    qhat.len()
                ),
            });
        }
        if n == 0 || k == 0 || z == 0 || index.k() != k {
            return Ok(None);
        }
        let n_lists = index.n_lists();
        querylog::put_num("nprobe", nprobe as f64);
        let nprobe = nprobe.clamp(1, n_lists);
        let t_probe = querylog::phase_timer();
        let (probed, survivors, indptr) = {
            let _span = lsi_obs::span("index.probe");
            // One dot per centroid list, plus the top-`nprobe` pick.
            lsi_obs::add_flops((2 * k + 1) as f64 * n_lists as f64);
            let cscores = index.centroid_scores(qhat)?;
            if !cscores.iter().all(|s| s.is_finite()) {
                // Degraded centroid math must not scramble ranks; the
                // exact scan (whose own boundary guard will fire if the
                // model itself is corrupt) serves instead.
                return Ok(None);
            }
            let mut probed =
                select_top_by(n_lists, nprobe, |l| (desc_key_f64(cscores[l]), l as u32));
            // Ascending list order keeps the concatenated survivor walk
            // as monotone as the partition allows; ranking is order-free
            // because every selection below ties-breaks on doc id.
            probed.sort_unstable();
            let mut survivors: Vec<u32> = Vec::new();
            let mut indptr = Vec::with_capacity(probed.len() + 1);
            indptr.push(0usize);
            for &l in &probed {
                survivors.extend_from_slice(index.list(l));
                indptr.push(survivors.len());
            }
            (probed, survivors, indptr)
        };
        querylog::phase_done(t_probe, "probe_us");
        lsi_obs::count("index.lists.count", probed.len() as u64);
        lsi_obs::count("index.survivors.count", survivors.len() as u64);
        querylog::put_num("lists_probed", probed.len() as f64);
        querylog::put_num("survivors", survivors.len() as f64);
        if survivors.is_empty() {
            return Ok(None);
        }
        let qnorm = vecops::nrm2(qhat);
        if let Some(store) = self.compressed.as_ref() {
            if let Some(ranked) =
                self.rank_pruned_compressed(store, qhat, qnorm, z, &survivors, &indptr)?
            {
                return Ok(Some(ranked));
            }
            // Degrade to the f64 survivor sweep, not the full scan: the
            // pruning decision stands, only the precision ladder failed.
            lsi_obs::count("score.rerank.fallback.count", 1);
        }
        let ranked = self.rank_pruned_exact(qhat, qnorm, z, &survivors, &indptr)?;
        Ok(Some(ranked))
    }

    /// Exact f64 cosines for every survivor, sharded across the pool in
    /// list-size-balanced spans ([`nnz_balanced_spans`] over the probed
    /// lists' prefix sums — the same quantile technique the sparse
    /// kernels use for nnz balancing). Bit-identical across thread
    /// counts: span boundaries move with the pool size, but each row's
    /// score is computed by the same per-row kernel arithmetic wherever
    /// it lands.
    fn survivor_cosines(
        &self,
        qhat: &[f64],
        qnorm: f64,
        survivors: &[u32],
        indptr: &[usize],
    ) -> Result<Vec<f64>> {
        lsi_obs::add_bytes((survivors.len() * self.k() * 8) as f64);
        lsi_obs::add_flops(((2 * self.k() + 3) * survivors.len()) as f64);
        // Two spans per worker: balanced by construction, cheap to
        // compute, and enough slack for the pool's chunker.
        let spans = nnz_balanced_spans(indptr, rayon::current_num_threads() * 2);
        let parts: Vec<Result<Vec<f64>>> = spans
            .into_par_iter()
            .map(|(l0, l1)| {
                let rows: Vec<usize> = survivors[indptr[l0]..indptr[l1]]
                    .iter()
                    .map(|&d| d as usize)
                    .collect();
                self.exact_cosines_rows(&rows, qhat, qnorm)
            })
            .collect();
        let mut scores = Vec::with_capacity(survivors.len());
        for part in parts {
            scores.extend(part?);
        }
        Ok(scores)
    }

    /// Pruned scan served entirely in f64: survivor sweep + shared
    /// selection, with the exact path's scoring-boundary guard.
    fn rank_pruned_exact(
        &self,
        qhat: &[f64],
        qnorm: f64,
        z: usize,
        survivors: &[u32],
        indptr: &[usize],
    ) -> Result<RankedList> {
        let t_sweep = querylog::phase_timer();
        let mut scores = {
            let _span = lsi_obs::span("index.survivors");
            self.survivor_cosines(qhat, qnorm, survivors, indptr)?
        };
        querylog::phase_done(t_sweep, "sweep_us");
        // Same scoring boundary as `facet_cosines`: a corrupted model or
        // an armed failpoint becomes a typed error, never silent ranks.
        match lsi_fault::eval(lsi_fault::points::CORE_QUERY_SCORE) {
            Some(lsi_fault::Fired::ReturnErr) => {
                return Err(Error::Inconsistent {
                    context: format!(
                        "fault injected at failpoint `{}`",
                        lsi_fault::points::CORE_QUERY_SCORE
                    ),
                });
            }
            Some(lsi_fault::Fired::InjectNan) => {
                if let Some(first) = scores.first_mut() {
                    *first = f64::NAN;
                }
            }
            None => {}
        }
        if !scores.iter().all(|s| s.is_finite()) {
            return Err(Error::NonFinite {
                context: "cosine scores (query scoring boundary)".into(),
            });
        }
        let order = select_top_by(survivors.len(), z, |i| {
            (desc_key_f64(scores[i]), survivors[i])
        });
        Ok(RankedList {
            matches: order
                .into_iter()
                .map(|i| self.make_match(survivors[i] as usize, scores[i]))
                .collect(),
        })
    }

    /// Pruned scan through the compressed ladder: survivor candidate
    /// sweep (sharded like [`LsiModel::survivor_cosines`]), exact f64
    /// re-rank of the over-fetched candidates, and — for f32 — the
    /// margin certificate against the survivor cutoff. `Ok(None)` means
    /// the caller should degrade to the f64 survivor sweep (non-finite
    /// sweep output or an uncertified margin); pruning itself is not
    /// revisited.
    fn rank_pruned_compressed(
        &self,
        store: &CompressedStore,
        qhat: &[f64],
        qnorm: f64,
        z: usize,
        survivors: &[u32],
        indptr: &[usize],
    ) -> Result<Option<RankedList>> {
        let k = self.k();
        let ns = survivors.len();
        let t_sweep = querylog::phase_timer();
        let approx = {
            let _span = lsi_obs::span("score.candidates");
            lsi_obs::add_bytes((ns * k * 4 + 8 * k) as f64);
            lsi_obs::add_flops((2 * k + 2) as f64 * ns as f64);
            let spans = nnz_balanced_spans(indptr, rayon::current_num_threads() * 2);
            let parts: Vec<lsi_linalg::Result<Vec<f32>>> = spans
                .into_par_iter()
                .map(|(l0, l1)| {
                    store.approx_scores_rows(qhat, qnorm, &survivors[indptr[l0]..indptr[l1]])
                })
                .collect();
            let mut approx = Vec::with_capacity(ns);
            for part in parts {
                approx.extend(part?);
            }
            // Same boundary failpoint as the unpruned compressed sweep:
            // inject-nan degrades (the f64 survivor sweep still serves
            // the query), return-err propagates.
            match lsi_fault::eval(lsi_fault::points::CORE_QUERY_SCORE) {
                Some(lsi_fault::Fired::ReturnErr) => {
                    return Err(Error::Inconsistent {
                        context: format!(
                            "fault injected at failpoint `{}`",
                            lsi_fault::points::CORE_QUERY_SCORE
                        ),
                    });
                }
                Some(lsi_fault::Fired::InjectNan) => {
                    if let Some(first) = approx.first_mut() {
                        *first = f32::NAN;
                    }
                }
                None => {}
            }
            approx
        };
        querylog::phase_done(t_sweep, "sweep_us");
        if !approx.iter().all(|s| s.is_finite()) {
            lsi_obs::warn!(
                "pruned candidate sweep produced non-finite scores; \
                 degrading to the f64 survivor sweep"
            );
            return Ok(None);
        }
        let z = z.min(ns);
        let c = z
            .saturating_mul(crate::compressed::OVER_FETCH_FACTOR)
            .max(crate::compressed::OVER_FETCH_FLOOR)
            .min(ns);
        // Tie-break by doc id (the survivor array is a permutation, so
        // position order is not id order here).
        let candidates = select_top_by(ns, c, |i| {
            ((desc_key_f32(approx[i]) as u64) << 32) | survivors[i] as u64
        });
        lsi_obs::count("score.candidates.count", c as u64);
        querylog::put_num("candidates", c as f64);
        let t_rerank = querylog::phase_timer();
        let (by_row, cosines) = {
            let _span = lsi_obs::span("score.rerank");
            lsi_obs::add_bytes((c * k * 8) as f64);
            lsi_obs::add_flops(((2 * k + 3) * c) as f64);
            let mut by_row: Vec<usize> =
                candidates.iter().map(|&i| survivors[i] as usize).collect();
            by_row.sort_unstable();
            let cosines = self.exact_cosines_rows(&by_row, qhat, qnorm)?;
            (by_row, cosines)
        };
        querylog::phase_done(t_rerank, "rerank_us");
        if !cosines.iter().all(|s| s.is_finite()) {
            return Err(Error::NonFinite {
                context: "cosine scores (query scoring boundary)".into(),
            });
        }
        lsi_obs::count("score.rerank.count", by_row.len() as u64);
        let order = select_top_by(by_row.len(), z, |i| {
            (desc_key_f64(cosines[i]), by_row[i] as u32)
        });
        // Margin certificate (f32 only), relative to the survivor set:
        // within the survivors the certified top-z is bit-identical to
        // the f64 survivor sweep's — which makes the whole pruned path
        // bit-identical to the exact scan when every doc survives.
        if c < ns {
            if let Some(bound) = store.rerank_margin(k) {
                let cutoff = candidates
                    .last()
                    .map(|&i| approx[i] as f64)
                    .unwrap_or(f64::NEG_INFINITY);
                let s_z = order
                    .last()
                    .map(|&i| cosines[i])
                    .unwrap_or(f64::NEG_INFINITY);
                if !(s_z > cutoff + bound) {
                    return Ok(None);
                }
            }
        }
        Ok(Some(RankedList {
            matches: order
                .into_iter()
                .map(|i| self.make_match(by_row[i], cosines[i]))
                .collect(),
        }))
    }

    /// Query by free text: project and rank.
    pub fn query(&self, text: &str) -> Result<RankedList> {
        let _span = lsi_obs::span("query");
        let qlog = querylog::begin("full");
        querylog::put_num("n_docs", self.n_docs() as f64);
        let t0 = std::time::Instant::now();
        let t_proj = querylog::phase_timer();
        let qhat = self.project_text(text)?;
        querylog::phase_done(t_proj, "project_us");
        querylog::put_str("path", "full");
        let ranked = self.rank_projected(&qhat)?;
        lsi_obs::count("query.count", 1);
        lsi_obs::observe("query.time.us", t0.elapsed().as_secs_f64() * 1e6);
        qlog.finish(&ranked);
        Ok(ranked)
    }

    /// Query by free text, returning only the top `z` documents
    /// (partition + partial sort instead of a full ranking).
    pub fn query_top(&self, text: &str, z: usize) -> Result<RankedList> {
        self.query_top_with(text, z, None)
    }

    /// [`LsiModel::query_top`] with a per-call probe-depth override
    /// (see [`LsiModel::rank_projected_top_at`]): the serving layer's
    /// degradation ladder narrows retrieval through the trained
    /// cluster index without mutating the persisted policy. `None`
    /// behaves exactly like [`LsiModel::query_top`].
    pub fn query_top_with(
        &self,
        text: &str,
        z: usize,
        nprobe_override: Option<usize>,
    ) -> Result<RankedList> {
        let _span = lsi_obs::span("query");
        let qlog = querylog::begin("top");
        querylog::put_num("n_docs", self.n_docs() as f64);
        let t0 = std::time::Instant::now();
        let t_proj = querylog::phase_timer();
        let qhat = self.project_text(text)?;
        querylog::phase_done(t_proj, "project_us");
        let ranked = self.rank_projected_top_at(&qhat, z, nprobe_override)?;
        lsi_obs::count("query.count", 1);
        lsi_obs::observe("query.time.us", t0.elapsed().as_secs_f64() * 1e6);
        qlog.finish(&ranked);
        Ok(ranked)
    }

    /// Rank documents against an existing *document* (query-by-example;
    /// relevance feedback replaces the query with relevant documents'
    /// vectors, §5.1).
    pub fn query_by_doc(&self, doc: usize) -> Result<RankedList> {
        let _span = lsi_obs::span("query");
        lsi_obs::count("query.count", 1);
        if doc >= self.n_docs() {
            return Err(Error::Inconsistent {
                context: format!("document {doc} out of range ({} docs)", self.n_docs()),
            });
        }
        let qlog = querylog::begin("doc");
        querylog::put_num("n_docs", self.n_docs() as f64);
        querylog::put_str("path", "full");
        // One contiguous copy of the (strided) document row, as the
        // GEMV operand — the per-row scoring itself is allocation-free.
        let qhat = self.doc_row(doc).to_vec();
        let ranked = self.rank_projected(&qhat)?;
        qlog.finish(&ranked);
        Ok(ranked)
    }

    /// Rank the model's *terms* by cosine to the projected vector —
    /// "there is no reason that similar terms could not be returned"
    /// (§5.4, automatic thesaurus).
    pub fn nearest_terms(&self, qhat: &[f64], z: usize) -> Result<Vec<(usize, String, f64)>> {
        if qhat.len() != self.k() {
            return Err(Error::Inconsistent {
                context: "projected vector dimension mismatch".to_string(),
            });
        }
        // One cosine per term row of U — independent, so split across
        // the pool (the thesaurus sweep touches every vocabulary term).
        let mut scored: Vec<(usize, String, f64)> = (0..self.n_terms())
            .into_par_iter()
            .map(|i| {
                let name = if i < self.vocab.len() {
                    self.vocab.term(i).to_string()
                } else {
                    self.folded_terms[i - self.vocab.len()].clone()
                };
                (i, name, self.u.row_view(i).cosine_slice(qhat))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(z);
        Ok(scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LsiOptions;
    use lsi_text::{Corpus, ParsingRules, TermWeighting};

    fn model() -> LsiModel {
        let corpus = Corpus::from_pairs([
            ("cars1", "car engine wheel motor car"),
            ("cars2", "automobile engine motor chassis"),
            ("cars3", "car automobile driver wheel"),
            ("zoo1", "elephant lion zebra elephant"),
            ("zoo2", "lion zebra giraffe elephant"),
            ("zoo3", "zebra giraffe lion safari"),
        ]);
        let options = LsiOptions {
            k: 2,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 3,
        };
        LsiModel::build(&corpus, &options).unwrap().0
    }

    #[test]
    fn query_retrieves_topically_related_docs_first() {
        let m = model();
        let ranked = m.query("car motor").unwrap();
        let top3: Vec<&str> = ranked.ids().into_iter().take(3).collect();
        for id in ["cars1", "cars2", "cars3"] {
            assert!(top3.contains(&id), "expected {id} in top 3, got {top3:?}");
        }
    }

    #[test]
    fn synonymy_bridged_without_shared_words() {
        // Query "automobile" should rank cars1 (which never contains
        // the word "automobile") above all zoo documents.
        let m = model();
        let ranked = m.query("automobile").unwrap();
        let cars1 = ranked.rank_of("cars1").unwrap();
        for zoo in ["zoo1", "zoo2", "zoo3"] {
            assert!(
                cars1 < ranked.rank_of(zoo).unwrap(),
                "cars1 should outrank {zoo}"
            );
        }
    }

    #[test]
    fn threshold_and_top_filtering() {
        let m = model();
        let ranked = m.query("elephant lion").unwrap();
        let all = ranked.matches.len();
        assert_eq!(all, 6);
        assert_eq!(ranked.top(2).matches.len(), 2);
        let high = ranked.at_threshold(0.9);
        assert!(high.matches.len() < all);
        for mt in &high.matches {
            assert!(mt.cosine >= 0.9);
        }
    }

    #[test]
    fn ranked_list_is_sorted_descending() {
        let m = model();
        let ranked = m.query("zebra").unwrap();
        for w in ranked.matches.windows(2) {
            assert!(w[0].cosine >= w[1].cosine);
        }
    }

    #[test]
    fn query_by_doc_returns_self_first() {
        let m = model();
        let ranked = m.query_by_doc(0).unwrap();
        assert_eq!(ranked.matches[0].doc, 0);
        assert!((ranked.matches[0].cosine - 1.0).abs() < 1e-9);
        assert!(m.query_by_doc(99).is_err());
    }

    #[test]
    fn unknown_words_yield_zero_projection() {
        let m = model();
        let qhat = m.project_text("xylophone quux").unwrap();
        assert!(qhat.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn projection_dimension_checks() {
        let m = model();
        assert!(m.project_counts(&[1.0]).is_err());
        assert!(m.rank_projected(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn nearest_terms_finds_cohyponyms() {
        let m = model();
        let qhat = m.project_text("elephant").unwrap();
        let terms = m.nearest_terms(&qhat, 4).unwrap();
        let names: Vec<&str> = terms.iter().map(|(_, n, _)| n.as_str()).collect();
        assert!(names.contains(&"elephant"));
        // Its neighbours are zoo words, not car words.
        for n in &names {
            assert!(
                !["car", "engine", "motor", "wheel", "automobile", "chassis", "driver"]
                    .contains(n),
                "unexpected car-domain term {n} near elephant"
            );
        }
    }

    #[test]
    fn top_z_selection_matches_full_ranking() {
        // The select_nth fast path must return exactly the head of the
        // fully sorted list — same docs, same cosines, same order.
        let m = model();
        let qhat = m.project_text("car lion").unwrap();
        let full = m.rank_projected(&qhat).unwrap();
        for z in [1usize, 3, 6, 10] {
            let top = m.rank_projected_top(&qhat, z).unwrap();
            assert_eq!(top.matches.len(), z.min(full.matches.len()));
            for (a, b) in top.matches.iter().zip(full.matches.iter()) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.cosine, b.cosine);
            }
        }
    }

    #[test]
    fn scoring_is_bit_reproducible_across_repeats() {
        // Scoring runs on the pool (GEMV row spans, projection column
        // dots); the determinism contract says repeated queries return
        // identical bits no matter how the spans are scheduled.
        let m = model();
        let first = m.query("automobile engine").unwrap();
        for _ in 0..10 {
            let again = m.query("automobile engine").unwrap();
            assert_eq!(first.matches.len(), again.matches.len());
            for (a, b) in first.matches.iter().zip(again.matches.iter()) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.cosine, b.cosine);
            }
        }
    }

    #[test]
    fn pruned_at_full_probe_depth_is_bit_identical_to_exact() {
        use crate::Precision;
        for precision in [Precision::Exact, Precision::F32, Precision::I8] {
            let mut m = model();
            m.set_precision(precision);
            let qhat = m.project_text("car lion").unwrap();
            let exact = m.rank_projected_top(&qhat, 4).unwrap();
            m.set_index_policy(IndexPolicy::Pruned {
                nprobe: m.index_n_lists().unwrap_or(0).max(1),
            })
            .unwrap();
            // nprobe above n_lists clamps; every doc survives.
            m.set_index_policy(IndexPolicy::Pruned { nprobe: 999 }).unwrap();
            let pruned = m.rank_projected_top(&qhat, 4).unwrap();
            assert_eq!(pruned.matches.len(), exact.matches.len());
            for (a, b) in pruned.matches.iter().zip(exact.matches.iter()) {
                assert_eq!(a.doc, b.doc, "precision {precision:?}");
                assert_eq!(
                    a.cosine.to_bits(),
                    b.cosine.to_bits(),
                    "precision {precision:?} doc {}",
                    a.doc
                );
            }
        }
    }

    #[test]
    fn pruned_matches_carry_exact_scores_and_rank_consistently() {
        let mut m = model();
        let qhat = m.project_text("zebra giraffe").unwrap();
        let full = m.rank_projected(&qhat).unwrap();
        m.set_index_policy(IndexPolicy::Pruned { nprobe: 1 }).unwrap();
        let pruned = m.rank_projected_top(&qhat, 3).unwrap();
        assert!(!pruned.matches.is_empty());
        // Every pruned match's cosine is the exact f64 cosine for that
        // doc, and pruned order respects the full ranking's order.
        for w in pruned.matches.windows(2) {
            assert!(w[0].cosine >= w[1].cosine);
        }
        for mt in &pruned.matches {
            let exact = full
                .matches
                .iter()
                .find(|f| f.doc == mt.doc)
                .expect("pruned doc exists");
            assert_eq!(mt.cosine.to_bits(), exact.cosine.to_bits());
        }
    }

    #[test]
    fn exact_policy_ignores_the_index_machinery() {
        let mut m = model();
        let qhat = m.project_text("engine").unwrap();
        let before = m.rank_projected_top(&qhat, 3).unwrap();
        m.set_index_policy(IndexPolicy::Pruned { nprobe: 2 }).unwrap();
        m.set_index_policy(IndexPolicy::Exact).unwrap();
        let after = m.rank_projected_top(&qhat, 3).unwrap();
        for (a, b) in after.matches.iter().zip(before.matches.iter()) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.cosine.to_bits(), b.cosine.to_bits());
        }
    }

    #[test]
    fn rank_of_and_ids_agree() {
        let m = model();
        let ranked = m.query("giraffe").unwrap();
        let ids = ranked.ids();
        for (pos, id) in ids.iter().enumerate() {
            assert_eq!(ranked.rank_of(id), Some(pos));
        }
        assert_eq!(ranked.rank_of("missing"), None);
    }
}
