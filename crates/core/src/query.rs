//! Query projection and cosine ranking.
//!
//! Eq. 6 of the paper: a query is "a vector of words ... multiplied by
//! the appropriate term weights", projected as `q̂ = qᵀ U_k Σ_k⁻¹`, then
//! "compared to all existing document vectors, and the documents ranked
//! by their similarity (nearness) to the query. One common measure of
//! similarity is the cosine ... Typically the z closest documents or all
//! documents exceeding some cosine threshold are returned."

use rayon::prelude::*;

use lsi_linalg::vecops;

use crate::model::LsiModel;
use crate::{Error, Result};

/// Minimum document count before the ranking loop goes parallel.
const PAR_DOC_THRESHOLD: usize = 4096;

/// One retrieved document.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Row index in `V_k`.
    pub doc: usize,
    /// Document id.
    pub id: String,
    /// Cosine similarity to the query.
    pub cosine: f64,
}

/// A ranked retrieval result.
#[derive(Debug, Clone, Default)]
pub struct RankedList {
    /// Matches, best first.
    pub matches: Vec<Match>,
}

impl RankedList {
    /// Keep only matches with cosine at or above `threshold` (the
    /// paper's Figure 6 uses 0.85, Table 4 uses 0.40).
    pub fn at_threshold(&self, threshold: f64) -> RankedList {
        RankedList {
            matches: self
                .matches
                .iter()
                .filter(|m| m.cosine >= threshold)
                .cloned()
                .collect(),
        }
    }

    /// Keep the top `z` matches.
    pub fn top(&self, z: usize) -> RankedList {
        RankedList {
            matches: self.matches.iter().take(z).cloned().collect(),
        }
    }

    /// Document ids in rank order.
    pub fn ids(&self) -> Vec<&str> {
        self.matches.iter().map(|m| m.id.as_str()).collect()
    }

    /// Rank position (0-based) of a document id, if present.
    pub fn rank_of(&self, id: &str) -> Option<usize> {
        self.matches.iter().position(|m| m.id == id)
    }
}

impl LsiModel {
    /// Weight a raw term-count vector and project it into the factor
    /// space: `q̂ = qᵀ U_k Σ_k⁻¹` (Eq. 6). The counts must be over the
    /// model's *SVD-derived* term rows (folded-in terms participate via
    /// their rows of `U` as well — the vector length must equal
    /// [`LsiModel::n_terms`]).
    pub fn project_counts(&self, counts: &[f64]) -> Result<Vec<f64>> {
        if counts.len() != self.n_terms() {
            return Err(Error::Inconsistent {
                context: format!(
                    "query vector has {} entries but the model indexes {} terms",
                    counts.len(),
                    self.n_terms()
                ),
            });
        }
        // Weight: local transform on counts, stored global weights.
        // Folded-in terms (if any) carry global weight 1.
        let mut weighted = Vec::with_capacity(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            let g = self.global_weights.get(i).copied().unwrap_or(1.0);
            weighted.push(self.weighting.local.apply(c) * g);
        }
        // q^T U_k, then divide by sigma.
        let mut qhat = vec![0.0; self.k()];
        for (j, q) in qhat.iter_mut().enumerate() {
            *q = vecops::dot(&weighted, self.u.col(j));
        }
        for (q, &s) in qhat.iter_mut().zip(self.s.iter()) {
            if s > 0.0 {
                *q /= s;
            }
        }
        Ok(qhat)
    }

    /// Tokenize `text` against the vocabulary — including terms added
    /// later by folding-in or SVD-updating — and project it (Eq. 6).
    pub fn project_text(&self, text: &str) -> Result<Vec<f64>> {
        let mut counts = self.vocab.count_vector(text);
        counts.resize(self.n_terms(), 0.0);
        if !self.folded_terms.is_empty() {
            for tok in lsi_text::tokenize(text) {
                if self.vocab.index_of(&tok).is_none() {
                    if let Some(p) = self.folded_terms.iter().position(|t| *t == tok) {
                        counts[self.vocab.len() + p] += 1.0;
                    }
                }
            }
        }
        self.project_counts(&counts)
    }

    /// Rank all documents by cosine to the projected query vector.
    pub fn rank_projected(&self, qhat: &[f64]) -> Result<RankedList> {
        if qhat.len() != self.k() {
            return Err(Error::Inconsistent {
                context: format!(
                    "projected query has {} dimensions but the model has {} factors",
                    qhat.len(),
                    self.k()
                ),
            });
        }
        let n = self.n_docs();
        let score = |j: usize| -> Match {
            let dv = self.v.row(j);
            Match {
                doc: j,
                id: self.doc_ids[j].clone(),
                cosine: vecops::cosine(&dv, qhat),
            }
        };
        let mut matches: Vec<Match> = if n >= PAR_DOC_THRESHOLD {
            (0..n).into_par_iter().map(score).collect()
        } else {
            (0..n).map(score).collect()
        };
        matches.sort_by(|a, b| {
            b.cosine
                .partial_cmp(&a.cosine)
                .expect("cosines are finite")
                .then_with(|| a.doc.cmp(&b.doc))
        });
        Ok(RankedList { matches })
    }

    /// Query by free text: project and rank.
    pub fn query(&self, text: &str) -> Result<RankedList> {
        let qhat = self.project_text(text)?;
        self.rank_projected(&qhat)
    }

    /// Rank documents against an existing *document* (query-by-example;
    /// relevance feedback replaces the query with relevant documents'
    /// vectors, §5.1).
    pub fn query_by_doc(&self, doc: usize) -> Result<RankedList> {
        if doc >= self.n_docs() {
            return Err(Error::Inconsistent {
                context: format!("document {doc} out of range ({} docs)", self.n_docs()),
            });
        }
        let qhat = self.v.row(doc);
        self.rank_projected(&qhat)
    }

    /// Rank the model's *terms* by cosine to the projected vector —
    /// "there is no reason that similar terms could not be returned"
    /// (§5.4, automatic thesaurus).
    pub fn nearest_terms(&self, qhat: &[f64], z: usize) -> Result<Vec<(usize, String, f64)>> {
        if qhat.len() != self.k() {
            return Err(Error::Inconsistent {
                context: "projected vector dimension mismatch".to_string(),
            });
        }
        let mut scored: Vec<(usize, String, f64)> = (0..self.n_terms())
            .map(|i| {
                let name = if i < self.vocab.len() {
                    self.vocab.term(i).to_string()
                } else {
                    self.folded_terms[i - self.vocab.len()].clone()
                };
                (i, name, vecops::cosine(&self.u.row(i), qhat))
            })
            .collect();
        scored.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite").then_with(|| a.0.cmp(&b.0)));
        scored.truncate(z);
        Ok(scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LsiOptions;
    use lsi_text::{Corpus, ParsingRules, TermWeighting};

    fn model() -> LsiModel {
        let corpus = Corpus::from_pairs([
            ("cars1", "car engine wheel motor car"),
            ("cars2", "automobile engine motor chassis"),
            ("cars3", "car automobile driver wheel"),
            ("zoo1", "elephant lion zebra elephant"),
            ("zoo2", "lion zebra giraffe elephant"),
            ("zoo3", "zebra giraffe lion safari"),
        ]);
        let options = LsiOptions {
            k: 2,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 3,
        };
        LsiModel::build(&corpus, &options).unwrap().0
    }

    #[test]
    fn query_retrieves_topically_related_docs_first() {
        let m = model();
        let ranked = m.query("car motor").unwrap();
        let top3: Vec<&str> = ranked.ids().into_iter().take(3).collect();
        for id in ["cars1", "cars2", "cars3"] {
            assert!(top3.contains(&id), "expected {id} in top 3, got {top3:?}");
        }
    }

    #[test]
    fn synonymy_bridged_without_shared_words() {
        // Query "automobile" should rank cars1 (which never contains
        // the word "automobile") above all zoo documents.
        let m = model();
        let ranked = m.query("automobile").unwrap();
        let cars1 = ranked.rank_of("cars1").unwrap();
        for zoo in ["zoo1", "zoo2", "zoo3"] {
            assert!(
                cars1 < ranked.rank_of(zoo).unwrap(),
                "cars1 should outrank {zoo}"
            );
        }
    }

    #[test]
    fn threshold_and_top_filtering() {
        let m = model();
        let ranked = m.query("elephant lion").unwrap();
        let all = ranked.matches.len();
        assert_eq!(all, 6);
        assert_eq!(ranked.top(2).matches.len(), 2);
        let high = ranked.at_threshold(0.9);
        assert!(high.matches.len() < all);
        for mt in &high.matches {
            assert!(mt.cosine >= 0.9);
        }
    }

    #[test]
    fn ranked_list_is_sorted_descending() {
        let m = model();
        let ranked = m.query("zebra").unwrap();
        for w in ranked.matches.windows(2) {
            assert!(w[0].cosine >= w[1].cosine);
        }
    }

    #[test]
    fn query_by_doc_returns_self_first() {
        let m = model();
        let ranked = m.query_by_doc(0).unwrap();
        assert_eq!(ranked.matches[0].doc, 0);
        assert!((ranked.matches[0].cosine - 1.0).abs() < 1e-9);
        assert!(m.query_by_doc(99).is_err());
    }

    #[test]
    fn unknown_words_yield_zero_projection() {
        let m = model();
        let qhat = m.project_text("xylophone quux").unwrap();
        assert!(qhat.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn projection_dimension_checks() {
        let m = model();
        assert!(m.project_counts(&[1.0]).is_err());
        assert!(m.rank_projected(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn nearest_terms_finds_cohyponyms() {
        let m = model();
        let qhat = m.project_text("elephant").unwrap();
        let terms = m.nearest_terms(&qhat, 4).unwrap();
        let names: Vec<&str> = terms.iter().map(|(_, n, _)| n.as_str()).collect();
        assert!(names.contains(&"elephant"));
        // Its neighbours are zoo words, not car words.
        for n in &names {
            assert!(
                !["car", "engine", "motor", "wheel", "automobile", "chassis", "driver"]
                    .contains(n),
                "unexpected car-domain term {n} near elephant"
            );
        }
    }

    #[test]
    fn rank_of_and_ids_agree() {
        let m = model();
        let ranked = m.query("giraffe").unwrap();
        let ids = ranked.ids();
        for (pos, id) in ids.iter().enumerate() {
            assert_eq!(ranked.rank_of(id), Some(pos));
        }
        assert_eq!(ranked.rank_of("missing"), None);
    }
}
