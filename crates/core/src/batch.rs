//! Coalesced batch scoring for the serving layer.
//!
//! `lsi serve` collects concurrent requests into one scoring batch so
//! the document sweep runs as a single `V Q̂` GEMM (n_docs × n_queries)
//! instead of one GEMV per query — the same coalescing
//! [`crate::multiquery`] uses for one query's facets, applied across
//! independent requests. Each query still gets its own projection,
//! its own top-`z` selection (the shared branchless
//! [`crate::query::select_top_by`]), its own query-log record, and its
//! own error: a batch is a scheduling unit, not a failure domain.

use std::time::Instant;

use lsi_obs::Json;

use crate::model::LsiModel;
use crate::query::{desc_key_f64, select_top_by, RankedList};
use crate::querylog::{self, RequestCtx};
use crate::{IndexPolicy, Result};

/// One query in a coalesced scoring batch.
#[derive(Debug)]
pub struct BatchQuery {
    /// Query text (tokenized against the model's vocabulary).
    pub text: String,
    /// Result count (top-`z`).
    pub z: usize,
    /// Serving-layer context stamped onto this query's
    /// `LSI_QUERY_LOG` record (request id + queue time), if any.
    pub ctx: Option<RequestCtx>,
}

impl LsiModel {
    /// Serve a batch of queries, one `Result` per query in input
    /// order.
    ///
    /// When the model scans exactly (no cluster-index policy, no
    /// compressed store) and the batch holds more than one query, the
    /// document sweep coalesces into a single GEMM; otherwise — and
    /// whenever the coalesced sweep fails — each query is served
    /// through [`LsiModel::query_top`] independently, so one poisoned
    /// query (a projection error, an injected fault) fails only
    /// itself.
    pub fn query_top_batch(&self, batch: Vec<BatchQuery>) -> Vec<Result<RankedList>> {
        let coalesce = batch.len() > 1
            && matches!(self.index_policy(), IndexPolicy::Exact)
            && self.compressed.is_none();
        if !coalesce {
            return batch
                .into_iter()
                .map(|q| {
                    if let Some(ctx) = q.ctx {
                        querylog::set_request_context(ctx);
                    }
                    self.query_top(&q.text, q.z)
                })
                .collect();
        }
        let _span = lsi_obs::span("query.batch");
        let m = batch.len();
        let t0 = Instant::now();

        // Projection is per-query (and can fail per-query).
        let mut projected: Vec<Option<(Vec<f64>, f64)>> = Vec::with_capacity(m);
        let mut results: Vec<Option<Result<RankedList>>> = Vec::with_capacity(m);
        for q in &batch {
            let tp = Instant::now();
            match self.project_text(&q.text) {
                Ok(qhat) => {
                    projected.push(Some((qhat, tp.elapsed().as_secs_f64() * 1e6)));
                    results.push(None);
                }
                Err(e) => {
                    projected.push(None);
                    results.push(Some(Err(e)));
                }
            }
        }

        // One GEMM over every successfully projected query. A sweep
        // error (non-finite guard, armed failpoint) falls back to the
        // per-query path so only the poisoned query errors.
        let facets: Vec<&[f64]> = projected
            .iter()
            .flatten()
            .map(|(qhat, _)| qhat.as_slice())
            .collect();
        let t_sweep = Instant::now();
        let scores = match self.facet_cosines(&facets) {
            Ok(s) => s,
            Err(_) => {
                return batch
                    .into_iter()
                    .map(|q| {
                        if let Some(ctx) = q.ctx {
                            querylog::set_request_context(ctx);
                        }
                        self.query_top(&q.text, q.z)
                    })
                    .collect();
            }
        };
        let sweep_us = t_sweep.elapsed().as_secs_f64() * 1e6;

        lsi_obs::count("query.count", m as u64);
        lsi_obs::observe("query.batch.size", m as f64);
        let n = self.n_docs();
        let mut col = 0usize;
        for (i, q) in batch.into_iter().enumerate() {
            let Some((_, project_us)) = projected[i] else {
                continue; // projection error already recorded
            };
            let s = scores.col(col);
            col += 1;
            let order = select_top_by(n, q.z, |j| (desc_key_f64(s[j]), j as u32));
            let ranked = RankedList {
                matches: order.into_iter().map(|j| self.make_match(j, s[j])).collect(),
            };
            if querylog::enabled() {
                let fields: Vec<(&'static str, Json)> = vec![
                    ("kind", Json::Str("top".to_string())),
                    ("n_docs", Json::Num(n as f64)),
                    ("precision", Json::Str(self.precision().name().to_string())),
                    ("z", Json::Num(q.z as f64)),
                    ("path", Json::Str("batch".to_string())),
                    ("batch", Json::Num(m as f64)),
                    ("project_us", Json::Num(project_us)),
                    ("sweep_us", Json::Num(sweep_us)),
                ];
                querylog::emit(
                    q.ctx,
                    fields,
                    &ranked,
                    t0.elapsed().as_secs_f64() * 1e6,
                );
            }
            lsi_obs::observe("query.time.us", t0.elapsed().as_secs_f64() * 1e6);
            results[i] = Some(Ok(ranked));
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| {
                // Unreachable by construction (every slot is filled
                // above); a typed error beats a panic if it ever isn't.
                Err(crate::Error::Inconsistent {
                    context: "batch slot left unserved".into(),
                })
            }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LsiOptions;
    use crate::Precision;
    use lsi_text::{Corpus, ParsingRules, TermWeighting};

    fn model() -> LsiModel {
        let corpus = Corpus::from_pairs([
            ("cars1", "car engine wheel motor car"),
            ("cars2", "automobile engine motor chassis"),
            ("cars3", "car automobile driver wheel"),
            ("zoo1", "elephant lion zebra elephant"),
            ("zoo2", "lion zebra giraffe elephant"),
            ("zoo3", "zebra giraffe lion safari"),
        ]);
        let options = LsiOptions {
            k: 2,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 3,
        };
        LsiModel::build(&corpus, &options).unwrap().0
    }

    fn q(text: &str, z: usize) -> BatchQuery {
        BatchQuery {
            text: text.to_string(),
            z,
            ctx: None,
        }
    }

    #[test]
    fn batch_matches_per_query_results_bitwise() {
        let m = model();
        let texts = ["car motor", "zebra lion", "automobile", "giraffe safari"];
        let batch: Vec<BatchQuery> = texts.iter().map(|t| q(t, 3)).collect();
        let got = m.query_top_batch(batch);
        for (text, r) in texts.iter().zip(got) {
            let solo = m.query_top(text, 3).unwrap();
            let r = r.unwrap();
            assert_eq!(r.matches.len(), solo.matches.len(), "{text}");
            for (a, b) in r.matches.iter().zip(solo.matches.iter()) {
                assert_eq!(a.doc, b.doc, "{text}");
                assert_eq!(a.cosine.to_bits(), b.cosine.to_bits(), "{text}");
            }
        }
    }

    #[test]
    fn batch_of_one_and_empty_batch() {
        let m = model();
        assert!(m.query_top_batch(Vec::new()).is_empty());
        let got = m.query_top_batch(vec![q("car", 2)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_ref().unwrap().matches.len(), 2);
    }

    #[test]
    fn per_query_z_is_respected() {
        let m = model();
        let got = m.query_top_batch(vec![q("car", 1), q("lion", 4), q("zebra", 99)]);
        assert_eq!(got[0].as_ref().unwrap().matches.len(), 1);
        assert_eq!(got[1].as_ref().unwrap().matches.len(), 4);
        assert_eq!(got[2].as_ref().unwrap().matches.len(), 6);
    }

    #[test]
    fn compressed_and_pruned_models_still_serve_batches() {
        for setup in ["compressed", "pruned"] {
            let mut m = model();
            match setup {
                "compressed" => m.set_precision(Precision::F32),
                _ => m
                    .set_index_policy(IndexPolicy::Pruned { nprobe: 99 })
                    .unwrap(),
            }
            let got = m.query_top_batch(vec![q("car motor", 3), q("zebra", 3)]);
            for (r, text) in got.into_iter().zip(["car motor", "zebra"]) {
                let solo = m.query_top(text, 3).unwrap();
                let r = r.unwrap();
                for (a, b) in r.matches.iter().zip(solo.matches.iter()) {
                    assert_eq!(a.doc, b.doc, "{setup} {text}");
                    assert_eq!(a.cosine.to_bits(), b.cosine.to_bits(), "{setup} {text}");
                }
            }
        }
    }

    #[test]
    fn poisoned_sweep_fails_only_itself() {
        // A batch error falls back to per-query serving: with the
        // scoring failpoint armed to fire exactly once, the coalesced
        // sweep errors, the fallback re-serves per query, and every
        // query still succeeds (the failpoint is spent).
        let m = model();
        lsi_fault::arm_from_spec("core.query.score=return-err:1").unwrap();
        let got = m.query_top_batch(vec![q("car", 2), q("lion", 2), q("zebra", 2)]);
        lsi_fault::clear();
        assert_eq!(got.iter().filter(|r| r.is_ok()).count(), 3);
    }

    #[test]
    fn projection_error_is_contained_per_query() {
        // project_text never fails on unknown words (zero vector), so
        // force a per-query error through the probe-depth override
        // path instead: a dimension-mismatched model cannot exist
        // here, so exercise containment through the fault fallback
        // with a twice-armed failpoint — batch sweep errs, then one
        // per-query retry errs, the other two serve.
        let m = model();
        lsi_fault::arm_from_spec("core.query.score=return-err:2").unwrap();
        let got = m.query_top_batch(vec![q("car", 2), q("lion", 2), q("zebra", 2)]);
        lsi_fault::clear();
        let ok = got.iter().filter(|r| r.is_ok()).count();
        let err = got.iter().filter(|r| r.is_err()).count();
        assert_eq!((ok, err), (2, 1), "exactly the re-poisoned query fails");
    }

    #[test]
    fn train_index_enables_override_without_policy_change() {
        let mut m = model();
        m.train_index().unwrap();
        assert!(matches!(m.index_policy(), IndexPolicy::Exact));
        assert!(m.index_n_lists().is_some());
        let exact = m.query_top("car motor", 3).unwrap();
        let full_depth = m
            .query_top_with("car motor", 3, Some(m.index_n_lists().unwrap()))
            .unwrap();
        for (a, b) in full_depth.matches.iter().zip(exact.matches.iter()) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.cosine.to_bits(), b.cosine.to_bits());
        }
        // A narrowed probe still serves (possibly fewer survivors).
        let narrowed = m.query_top_with("car motor", 3, Some(1)).unwrap();
        assert!(!narrowed.matches.is_empty());
    }
}
