//! Explicit query expansion via the factor space.
//!
//! §5.1 of the paper: "many words (those from relevant documents)
//! augment the initial query which is usually quite impoverished. LSI
//! does some of this kind of query expansion or enhancement even
//! without relevance information." This module makes that implicit
//! enhancement explicit: project the query, read off its nearest terms
//! (the automatic-thesaurus view of §5.4), add them to the query with a
//! damping weight, and re-project.

use crate::model::LsiModel;
use crate::query::RankedList;
use crate::{Error, Result};

/// Minimum cosine a candidate term must have to the original query
/// projection before it is added: below this the "neighbour" is noise
/// from factor-space crowding, and expanding with it drifts the query.
pub const MIN_EXPANSION_COSINE: f64 = 0.5;

/// Result of an expanded query.
#[derive(Debug, Clone)]
pub struct ExpandedQuery {
    /// The ranked result.
    pub ranked: RankedList,
    /// Terms added to the query, with their cosine to the original
    /// projection.
    pub added_terms: Vec<(String, f64)>,
}

impl LsiModel {
    /// Query with thesaurus expansion: the `n_extra` nearest indexed
    /// terms (excluding those already in the query) are added with
    /// weight `damping` (sensible range 0.2–0.5), and the expanded
    /// vector is ranked as usual.
    pub fn query_expanded(
        &self,
        text: &str,
        n_extra: usize,
        damping: f64,
    ) -> Result<ExpandedQuery> {
        if !(0.0..=1.0).contains(&damping) {
            return Err(Error::Inconsistent {
                context: format!("damping {damping} outside [0, 1]"),
            });
        }
        let mut counts = self.vocabulary().count_vector(text);
        counts.resize(self.n_terms(), 0.0);
        let qhat = self.project_counts(&counts)?;
        if qhat.iter().all(|&x| x == 0.0) {
            // Nothing to expand from; fall back to the plain (empty)
            // ranking.
            return Ok(ExpandedQuery {
                ranked: self.rank_projected(&qhat)?,
                added_terms: Vec::new(),
            });
        }

        // Nearest terms not already present in the query.
        let candidates = self.nearest_terms(&qhat, n_extra + counts.len())?;
        let mut added = Vec::with_capacity(n_extra);
        let mut expanded = counts.clone();
        for (idx, name, cos) in candidates {
            if added.len() >= n_extra {
                break;
            }
            if idx < expanded.len() && expanded[idx] == 0.0 && cos >= MIN_EXPANSION_COSINE {
                expanded[idx] = damping;
                added.push((name, cos));
            }
        }
        let qhat2 = self.project_counts(&expanded)?;
        Ok(ExpandedQuery {
            ranked: self.rank_projected(&qhat2)?,
            added_terms: added,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::MIN_EXPANSION_COSINE;
    use crate::model::LsiOptions;
    use lsi_text::{Corpus, ParsingRules, TermWeighting};

    fn model() -> crate::LsiModel {
        let corpus = Corpus::from_pairs([
            ("cars1", "car engine wheel motor car"),
            ("cars2", "automobile engine motor chassis"),
            ("cars3", "car automobile driver wheel"),
            ("cars4", "driver chassis gear wheel gear"),
            ("zoo1", "elephant lion zebra elephant"),
            ("zoo2", "lion zebra giraffe elephant"),
            ("zoo3", "zebra giraffe lion safari"),
            ("zoo4", "safari giraffe cub lion cub"),
        ]);
        let options = LsiOptions {
            k: 3,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::log_entropy(),
            svd_seed: 13,
        };
        crate::LsiModel::build(&corpus, &options).unwrap().0
    }

    #[test]
    fn expansion_adds_domain_terms_only() {
        let m = model();
        let e = m.query_expanded("car", 3, 0.3).unwrap();
        assert!(!e.added_terms.is_empty());
        for (term, cos) in &e.added_terms {
            assert_ne!(term, "car");
            assert!(*cos >= MIN_EXPANSION_COSINE);
            assert!(
                ["engine", "motor", "automobile", "driver", "wheel", "chassis", "gear"]
                    .contains(&term.as_str()),
                "unexpected expansion term {term}"
            );
        }
    }

    #[test]
    fn expansion_preserves_topical_ranking() {
        let m = model();
        let plain = m.query("safari").unwrap();
        let expanded = m.query_expanded("safari", 4, 0.3).unwrap();
        // Every document with meaningful similarity is a zoo document
        // (car documents sit at ~0 cosine).
        for mt in &expanded.ranked.matches {
            if mt.cosine > 0.1 {
                assert!(mt.id.starts_with("zoo"), "expansion drifted to {}", mt.id);
            }
        }
        // And the expanded query still ranks the original best doc
        // highly.
        let best = &plain.matches[0].id;
        assert!(expanded.ranked.rank_of(best).unwrap() < 3);
    }

    #[test]
    fn unknown_query_expands_to_nothing() {
        let m = model();
        let e = m.query_expanded("qwertyuiop", 3, 0.3).unwrap();
        assert!(e.added_terms.is_empty());
    }

    #[test]
    fn damping_is_validated() {
        let m = model();
        assert!(m.query_expanded("car", 2, 1.5).is_err());
        assert!(m.query_expanded("car", 2, -0.1).is_err());
        assert!(m.query_expanded("car", 0, 0.3).unwrap().added_terms.is_empty());
    }
}
