//! Structured per-query log: one JSON line per served query.
//!
//! This is the record the `lsi serve` daemon emits per request; the
//! batch entry points ([`LsiModel::query`], [`LsiModel::query_top`],
//! [`LsiModel::query_by_doc`]) emit it too, so the schema is shared
//! between one-shot CLI runs and the daemon.
//!
//! [`LsiModel::query`]: crate::LsiModel::query
//! [`LsiModel::query_top`]: crate::LsiModel::query_top
//! [`LsiModel::query_by_doc`]: crate::LsiModel::query_by_doc
//!
//! Armed by `LSI_QUERY_LOG=<path>` (append) or `LSI_QUERY_LOG=-` /
//! `stderr` (stderr), read once per process. Disarmed cost is one
//! `OnceLock` load plus an `Option` check per call site — the same
//! budget as the failpoint fast path (DESIGN.md §3g).
//!
//! Schema (one compact JSON object per line; fields absent when the
//! path that produces them did not run):
//!
//! ```json
//! {"trace_id":"q1234-7","kind":"top","n_docs":2000,"z":10,
//!  "precision":"f32","path":"pruned","nprobe":8,"lists_probed":8,
//!  "survivors":1180,"candidates":64,"probe_us":2.3,
//!  "project_us":8.1,"sweep_us":41.2,"rerank_us":12.9,
//!  "results":10,"top_score":0.93,"margin":0.04,"total_us":78.5}
//! ```
//!
//! `path` is the scoring path actually taken: `pruned` (the cluster
//! index served it — `nprobe` is the requested probe depth,
//! `lists_probed` the clamped number of lists actually probed,
//! `survivors` the docs swept, and `probe_us` the centroid scan),
//! `compressed` (unpruned sweep + re-rank served it), `fallback`
//! (sweep ran, certification failed or the sweep degraded, exact scan
//! served it — `fallback_us` carries the scan), `exact` (no compressed
//! store; `full` for the full-sort entry points), `batch` (the serve
//! coalesced-GEMM path — `batch` carries the coalesced query count).
//! `margin` is the top-1 − top-2 exact cosine gap.
//!
//! `trace_id` defaults to a per-process `q<pid>-<seq>`; a serving
//! layer overrides it per request via [`set_request_context`] so the
//! daemon's query-log lines join with its access-log lines on the
//! request id, and `wait_us` (time spent queued before scoring) rides
//! along with the phase timings.
//! Only successfully served queries are logged; errors surface through
//! the usual typed-error path and event log instead.
//!
//! The record accumulates in a thread-local while the query runs, so
//! concurrent queries on different threads never interleave fields;
//! the final line write is serialized by a sink mutex.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use lsi_obs::Json;

use crate::query::RankedList;

enum Sink {
    Stderr,
    File(Mutex<std::fs::File>),
}

static SINK: OnceLock<Option<Sink>> = OnceLock::new();

/// Per-process query sequence number feeding `trace_id`.
/// Relaxed: ids only need to be unique, not ordered with other memory.
static SEQ: AtomicU64 = AtomicU64::new(1);

fn sink() -> Option<&'static Sink> {
    SINK.get_or_init(|| {
        let spec = std::env::var("LSI_QUERY_LOG").ok()?;
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        if spec == "-" || spec == "stderr" {
            return Some(Sink::Stderr);
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(spec)
        {
            Ok(f) => Some(Sink::File(Mutex::new(f))),
            Err(e) => {
                lsi_obs::warn!("cannot open LSI_QUERY_LOG file `{spec}`: {e}");
                None
            }
        }
    })
    .as_ref()
}

/// Whether query logging is armed (`LSI_QUERY_LOG` set and usable).
#[inline]
pub(crate) fn enabled() -> bool {
    sink().is_some()
}

/// Request-scoped context a serving layer stamps onto the next query's
/// record: the server's request id (so query-log lines join with
/// access-log lines) and the time the request spent queued.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// The serving layer's request id, replacing the default
    /// per-process `q<pid>-<seq>` trace id.
    pub trace_id: String,
    /// Queue time (enqueue → scoring start), microseconds.
    pub wait_us: f64,
}

struct Active {
    t0: Instant,
    ctx: Option<RequestCtx>,
    fields: Vec<(&'static str, Json)>,
}

thread_local! {
    // One query runs per thread at a time (the entry points do not
    // nest), so a single slot suffices.
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    // Context staged by set_request_context for the next begin().
    static PENDING: RefCell<Option<RequestCtx>> = const { RefCell::new(None) };
}

/// Stage per-request context for the next query served on this thread:
/// its record's `trace_id` becomes `ctx.trace_id` and a `wait_us`
/// field is added. Consumed by the next query entry point; a no-op
/// when logging is disarmed.
pub fn set_request_context(ctx: RequestCtx) {
    if !enabled() {
        return;
    }
    PENDING.with(|p| *p.borrow_mut() = Some(ctx));
}

fn take_request_context() -> Option<RequestCtx> {
    PENDING.with(|p| p.borrow_mut().take())
}

/// Guard for one query's record; created by [`begin`], emitted by
/// [`QueryLog::finish`]. Dropping without `finish` (an error path)
/// discards the partial record.
pub(crate) struct QueryLog {
    armed: bool,
}

/// Start a record for one query of the given kind (`"full"`, `"top"`,
/// `"doc"`). No-op (and near-free) when logging is disarmed.
pub(crate) fn begin(kind: &'static str) -> QueryLog {
    if !enabled() {
        return QueryLog { armed: false };
    }
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(Active {
            t0: Instant::now(),
            ctx: take_request_context(),
            fields: vec![("kind", Json::Str(kind.to_string()))],
        });
    });
    QueryLog { armed: true }
}

/// Set (or overwrite) a field on the in-flight record, if any.
pub(crate) fn put(key: &'static str, v: Json) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(act) = a.borrow_mut().as_mut() {
            act.fields.retain(|(k, _)| *k != key);
            act.fields.push((key, v));
        }
    });
}

pub(crate) fn put_num(key: &'static str, v: f64) {
    put(key, Json::Num(v));
}

pub(crate) fn put_str(key: &'static str, v: &str) {
    put(key, Json::Str(v.to_string()));
}

/// Start timing a phase: `Some(now)` only when a record is in flight,
/// so disarmed runs never touch the clock.
pub(crate) fn phase_timer() -> Option<Instant> {
    if !enabled() {
        return None;
    }
    ACTIVE
        .with(|a| a.borrow().is_some())
        .then(Instant::now)
}

/// Record the elapsed phase time under `key` (µs).
pub(crate) fn phase_done(t0: Option<Instant>, key: &'static str) {
    if let Some(t0) = t0 {
        put_num(key, t0.elapsed().as_secs_f64() * 1e6);
    }
}

impl QueryLog {
    /// Emit the record for a successfully served query: stamps the
    /// trace id, result stats, and total latency, then writes one
    /// compact JSON line to the sink.
    pub(crate) fn finish(mut self, ranked: &RankedList) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let Some(act) = ACTIVE.with(|a| a.borrow_mut().take()) else {
            return;
        };
        let total_us = act.t0.elapsed().as_secs_f64() * 1e6;
        emit(act.ctx, act.fields, ranked, total_us);
    }
}

/// Build and write one complete record without the thread-local slot —
/// the coalesced batch path emits one record per query after a shared
/// sweep, which a single in-flight slot cannot interleave.
pub(crate) fn emit(
    ctx: Option<RequestCtx>,
    fields: Vec<(&'static str, Json)>,
    ranked: &RankedList,
    total_us: f64,
) {
    if !enabled() {
        return;
    }
    let (trace_id, wait_us) = match ctx {
        Some(c) => (c.trace_id, Some(c.wait_us)),
        None => (
            format!(
                "q{}-{}",
                std::process::id(),
                // Relaxed: see SEQ.
                SEQ.fetch_add(1, Ordering::Relaxed)
            ),
            None,
        ),
    };
    let mut out: Vec<(String, Json)> =
        vec![("trace_id".to_string(), Json::Str(trace_id))];
    out.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    if let Some(w) = wait_us {
        out.push(("wait_us".to_string(), Json::Num(w)));
    }
    out.push((
        "results".to_string(),
        Json::Num(ranked.matches.len() as f64),
    ));
    if let Some(top) = ranked.matches.first() {
        out.push(("top_score".to_string(), Json::Num(top.cosine)));
        if let Some(second) = ranked.matches.get(1) {
            out.push((
                "margin".to_string(),
                Json::Num(top.cosine - second.cosine),
            ));
        }
    }
    out.push(("total_us".to_string(), Json::Num(total_us)));
    write_line(&Json::Obj(out).to_string_compact());
}

impl Drop for QueryLog {
    fn drop(&mut self) {
        // Error path: clear the slot so a stale partial record cannot
        // leak into the next query served on this thread.
        if self.armed {
            ACTIVE.with(|a| a.borrow_mut().take());
        }
    }
}

fn write_line(line: &str) {
    match sink() {
        Some(Sink::Stderr) => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
        Some(Sink::File(m)) => {
            let mut f = m.lock().unwrap_or_else(|p| p.into_inner());
            let _ = writeln!(f, "{line}");
        }
        None => {}
    }
}
