//! Structured per-query log: one JSON line per served query.
//!
//! This is the record the future `lsi serve` daemon will emit per
//! request; the batch entry points ([`LsiModel::query`],
//! [`LsiModel::query_top`], [`LsiModel::query_by_doc`]) emit it today
//! so the schema is proven before a daemon exists.
//!
//! [`LsiModel::query`]: crate::LsiModel::query
//! [`LsiModel::query_top`]: crate::LsiModel::query_top
//! [`LsiModel::query_by_doc`]: crate::LsiModel::query_by_doc
//!
//! Armed by `LSI_QUERY_LOG=<path>` (append) or `LSI_QUERY_LOG=-` /
//! `stderr` (stderr), read once per process. Disarmed cost is one
//! `OnceLock` load plus an `Option` check per call site — the same
//! budget as the failpoint fast path (DESIGN.md §3g).
//!
//! Schema (one compact JSON object per line; fields absent when the
//! path that produces them did not run):
//!
//! ```json
//! {"trace_id":"q1234-7","kind":"top","n_docs":2000,"z":10,
//!  "precision":"f32","path":"pruned","nprobe":8,"lists_probed":8,
//!  "survivors":1180,"candidates":64,"probe_us":2.3,
//!  "project_us":8.1,"sweep_us":41.2,"rerank_us":12.9,
//!  "results":10,"top_score":0.93,"margin":0.04,"total_us":78.5}
//! ```
//!
//! `path` is the scoring path actually taken: `pruned` (the cluster
//! index served it — `nprobe` is the requested probe depth,
//! `lists_probed` the clamped number of lists actually probed,
//! `survivors` the docs swept, and `probe_us` the centroid scan),
//! `compressed` (unpruned sweep + re-rank served it), `fallback`
//! (sweep ran, certification failed or the sweep degraded, exact scan
//! served it — `fallback_us` carries the scan), `exact` (no compressed
//! store; `full` for the full-sort entry points). `margin` is the
//! top-1 − top-2 exact cosine gap.
//! Only successfully served queries are logged; errors surface through
//! the usual typed-error path and event log instead.
//!
//! The record accumulates in a thread-local while the query runs, so
//! concurrent queries on different threads never interleave fields;
//! the final line write is serialized by a sink mutex.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use lsi_obs::Json;

use crate::query::RankedList;

enum Sink {
    Stderr,
    File(Mutex<std::fs::File>),
}

static SINK: OnceLock<Option<Sink>> = OnceLock::new();

/// Per-process query sequence number feeding `trace_id`.
/// Relaxed: ids only need to be unique, not ordered with other memory.
static SEQ: AtomicU64 = AtomicU64::new(1);

fn sink() -> Option<&'static Sink> {
    SINK.get_or_init(|| {
        let spec = std::env::var("LSI_QUERY_LOG").ok()?;
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        if spec == "-" || spec == "stderr" {
            return Some(Sink::Stderr);
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(spec)
        {
            Ok(f) => Some(Sink::File(Mutex::new(f))),
            Err(e) => {
                lsi_obs::warn!("cannot open LSI_QUERY_LOG file `{spec}`: {e}");
                None
            }
        }
    })
    .as_ref()
}

/// Whether query logging is armed (`LSI_QUERY_LOG` set and usable).
#[inline]
pub(crate) fn enabled() -> bool {
    sink().is_some()
}

struct Active {
    t0: Instant,
    fields: Vec<(&'static str, Json)>,
}

thread_local! {
    // One query runs per thread at a time (the entry points do not
    // nest), so a single slot suffices.
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// Guard for one query's record; created by [`begin`], emitted by
/// [`QueryLog::finish`]. Dropping without `finish` (an error path)
/// discards the partial record.
pub(crate) struct QueryLog {
    armed: bool,
}

/// Start a record for one query of the given kind (`"full"`, `"top"`,
/// `"doc"`). No-op (and near-free) when logging is disarmed.
pub(crate) fn begin(kind: &'static str) -> QueryLog {
    if !enabled() {
        return QueryLog { armed: false };
    }
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(Active {
            t0: Instant::now(),
            fields: vec![("kind", Json::Str(kind.to_string()))],
        });
    });
    QueryLog { armed: true }
}

/// Set (or overwrite) a field on the in-flight record, if any.
pub(crate) fn put(key: &'static str, v: Json) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(act) = a.borrow_mut().as_mut() {
            act.fields.retain(|(k, _)| *k != key);
            act.fields.push((key, v));
        }
    });
}

pub(crate) fn put_num(key: &'static str, v: f64) {
    put(key, Json::Num(v));
}

pub(crate) fn put_str(key: &'static str, v: &str) {
    put(key, Json::Str(v.to_string()));
}

/// Start timing a phase: `Some(now)` only when a record is in flight,
/// so disarmed runs never touch the clock.
pub(crate) fn phase_timer() -> Option<Instant> {
    if !enabled() {
        return None;
    }
    ACTIVE
        .with(|a| a.borrow().is_some())
        .then(Instant::now)
}

/// Record the elapsed phase time under `key` (µs).
pub(crate) fn phase_done(t0: Option<Instant>, key: &'static str) {
    if let Some(t0) = t0 {
        put_num(key, t0.elapsed().as_secs_f64() * 1e6);
    }
}

impl QueryLog {
    /// Emit the record for a successfully served query: stamps the
    /// trace id, result stats, and total latency, then writes one
    /// compact JSON line to the sink.
    pub(crate) fn finish(mut self, ranked: &RankedList) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let Some(act) = ACTIVE.with(|a| a.borrow_mut().take()) else {
            return;
        };
        let total_us = act.t0.elapsed().as_secs_f64() * 1e6;
        let trace_id = format!(
            "q{}-{}",
            std::process::id(),
            // Relaxed: see SEQ.
            SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let mut fields: Vec<(String, Json)> =
            vec![("trace_id".to_string(), Json::Str(trace_id))];
        fields.extend(
            act.fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v)),
        );
        fields.push((
            "results".to_string(),
            Json::Num(ranked.matches.len() as f64),
        ));
        if let Some(top) = ranked.matches.first() {
            fields.push(("top_score".to_string(), Json::Num(top.cosine)));
            if let Some(second) = ranked.matches.get(1) {
                fields.push((
                    "margin".to_string(),
                    Json::Num(top.cosine - second.cosine),
                ));
            }
        }
        fields.push(("total_us".to_string(), Json::Num(total_us)));
        write_line(&Json::Obj(fields).to_string_compact());
    }
}

impl Drop for QueryLog {
    fn drop(&mut self) {
        // Error path: clear the slot so a stale partial record cannot
        // leak into the next query served on this thread.
        if self.armed {
            ACTIVE.with(|a| a.borrow_mut().take());
        }
    }
}

fn write_line(line: &str) {
    match sink() {
        Some(Sink::Stderr) => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
        Some(Sink::File(m)) => {
            let mut f = m.lock().unwrap_or_else(|p| p.into_inner());
            let _ = writeln!(f, "{line}");
        }
        None => {}
    }
}
