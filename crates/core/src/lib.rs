//! Latent Semantic Indexing.
//!
//! The paper's primary contribution: build a reduced-dimension "semantic
//! space" from the truncated SVD of a (weighted) sparse term-document
//! matrix, retrieve by cosine in that space, and maintain the space as
//! the collection grows.
//!
//! * [`model::LsiModel`] — construction (parse → weight → truncated
//!   SVD), persistence, and accessors for term/document coordinates.
//! * [`query`] — query projection `q̂ = qᵀ U_k Σ_k⁻¹` (Eq. 6) and
//!   cosine ranking, serial and rayon-parallel.
//! * [`update`] — the three ways to add information (§2.3/§4):
//!   folding-in (Eqs. 7–8), SVD-updating (Eqs. 10–13), recomputing.
//! * [`multiquery`] — §5.4's multiple-points-of-interest queries
//!   (Kane-Esrig et al.).
//! * [`compressed`] — the reduced-precision candidate-generation
//!   ladder (f32 / scaled-i8 doc vectors with exact f64 re-rank).
//! * [`ortho`] — §4.3's orthogonality-loss monitor for folded-in
//!   vectors.
//! * [`complexity`] — the flop models of Table 7.
//!
//! # Example
//!
//! ```
//! use lsi_core::{LsiModel, LsiOptions};
//! use lsi_text::{Corpus, ParsingRules, TermWeighting};
//!
//! let corpus = Corpus::from_pairs([
//!     ("doc1", "the engine of the car roared as the driver accelerated"),
//!     ("doc2", "an automobile needs a working motor and a tuned engine"),
//!     ("doc3", "the driver parked the automobile and checked the motor"),
//! ]);
//! let options = LsiOptions {
//!     k: 2,
//!     rules: ParsingRules::default(),
//!     weighting: TermWeighting::log_entropy(),
//!     svd_seed: 1,
//! };
//! let (model, _report) = LsiModel::build(&corpus, &options)?;
//!
//! // "automobile" never occurs in doc1, yet doc1 is retrieved:
//! // the factor space bridges the car/automobile synonymy.
//! let ranked = model.query("automobile")?;
//! assert_eq!(ranked.matches.len(), 3);
//! assert!(ranked.rank_of("doc1").is_some());
//! # Ok::<(), lsi_core::Error>(())
//! ```

// Index-based loops over parallel arrays are the clearest idiom in
// numerical kernels; clippy's iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]


pub mod batch;
pub mod complexity;
pub mod compressed;
pub mod expansion;
pub mod index;
pub mod model;
pub mod multiquery;
pub mod ortho;
pub mod query;
pub mod querylog;
pub mod update;

pub use batch::BatchQuery;
pub use compressed::Precision;
pub use index::{IndexPolicy, DEFAULT_NPROBE, INDEX_RECLUSTER_THRESHOLD};
pub use model::{LsiModel, LsiOptions};
pub use expansion::ExpandedQuery;
pub use multiquery::{Combine, MultiQuery};
pub use query::{Match, RankedList};
pub use querylog::RequestCtx;

/// Errors from model construction and updating.
#[derive(Debug)]
pub enum Error {
    /// The SVD driver failed.
    Svd(lsi_svd::Error),
    /// A dense kernel failed.
    Linalg(lsi_linalg::Error),
    /// Sparse-matrix plumbing failed.
    Sparse(lsi_sparse::Error),
    /// The input was inconsistent with the model.
    Inconsistent {
        /// What was wrong.
        context: String,
    },
    /// (De)serialization failed.
    Persist(String),
    /// A non-finite value (NaN/Inf) was detected at a crate boundary —
    /// weighting output, SVD factors, or query scores.
    NonFinite {
        /// Where it was detected.
        context: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Svd(e) => write!(f, "SVD failure: {e}"),
            Error::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            Error::Sparse(e) => write!(f, "sparse matrix failure: {e}"),
            Error::Inconsistent { context } => write!(f, "inconsistent input: {context}"),
            Error::Persist(msg) => write!(f, "persistence failure: {msg}"),
            Error::NonFinite { context } => {
                write!(f, "non-finite value detected: {context}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<lsi_svd::Error> for Error {
    fn from(e: lsi_svd::Error) -> Self {
        Error::Svd(e)
    }
}

impl From<lsi_linalg::Error> for Error {
    fn from(e: lsi_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

impl From<lsi_sparse::Error> for Error {
    fn from(e: lsi_sparse::Error) -> Self {
        Error::Sparse(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = Error::Inconsistent {
            context: "bad input".into(),
        };
        assert_eq!(e.to_string(), "inconsistent input: bad input");
        let e = Error::Persist("oops".into());
        assert!(e.to_string().contains("oops"));
        let e: Error = lsi_linalg::Error::NotFinite.into();
        assert!(e.to_string().contains("linear algebra"));
        let e: Error = lsi_svd::Error::RankTooLarge { requested: 9, max: 3 }.into();
        assert!(e.to_string().contains('9'));
    }
}
