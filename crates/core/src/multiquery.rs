//! Multiple-points-of-interest queries.
//!
//! §5.4 of the paper: "Queries can even be represented as multiple
//! points of interest" (Kane-Esrig et al., the relevance density
//! method). Instead of collapsing a multi-facet information need into
//! one centroid vector — which can land in empty space between the
//! facets — each facet keeps its own vector and a document scores by
//! its *best* (or density-weighted) proximity to any facet.

use crate::model::LsiModel;
use crate::query::{Match, RankedList};
use crate::{Error, Result};

/// How per-facet cosines combine into one document score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Combine {
    /// Best facet wins (`max_i cos_i`) — a document satisfying any
    /// interest is returned.
    Max,
    /// Mean of the facet cosines — documents must do tolerably well on
    /// all facets.
    Mean,
    /// Softmax-weighted density with the given sharpness: approaches
    /// `Max` as the sharpness grows, `Mean` at zero. This mirrors the
    /// "relevance density" flavour of Kane-Esrig et al.
    Density {
        /// Sharpness β of the softmax weights.
        sharpness: f64,
    },
}

impl Combine {
    fn combine(&self, cosines: &[f64]) -> f64 {
        if cosines.is_empty() {
            return 0.0;
        }
        match self {
            Combine::Max => cosines.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Combine::Mean => cosines.iter().sum::<f64>() / cosines.len() as f64,
            Combine::Density { sharpness } => {
                let b = *sharpness;
                let mx = cosines.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> =
                    cosines.iter().map(|&c| ((c - mx) * b).exp()).collect();
                let wsum: f64 = weights.iter().sum();
                cosines
                    .iter()
                    .zip(weights.iter())
                    .map(|(c, w)| c * w)
                    .sum::<f64>()
                    / wsum
            }
        }
    }
}

/// A multi-facet query: one projected vector per point of interest.
#[derive(Debug, Clone)]
pub struct MultiQuery {
    facets: Vec<Vec<f64>>,
}

impl MultiQuery {
    /// Build from facet texts (each projected via Eq. 6).
    pub fn from_texts(model: &LsiModel, texts: &[&str]) -> Result<MultiQuery> {
        if texts.is_empty() {
            return Err(Error::Inconsistent {
                context: "a multi-facet query needs at least one facet".to_string(),
            });
        }
        let facets = texts
            .iter()
            .map(|t| model.project_text(t))
            .collect::<Result<Vec<_>>>()?;
        if facets.iter().all(|f| f.iter().all(|&x| x == 0.0)) {
            return Err(Error::Inconsistent {
                context: "no facet contains any indexed term".to_string(),
            });
        }
        Ok(MultiQuery { facets })
    }

    /// Build from already-projected vectors (e.g. document vectors used
    /// as exemplars).
    pub fn from_vectors(model: &LsiModel, vectors: Vec<Vec<f64>>) -> Result<MultiQuery> {
        if vectors.is_empty() {
            return Err(Error::Inconsistent {
                context: "a multi-facet query needs at least one facet".to_string(),
            });
        }
        for v in &vectors {
            if v.len() != model.k() {
                return Err(Error::Inconsistent {
                    context: format!(
                        "facet has {} dimensions but the model has {} factors",
                        v.len(),
                        model.k()
                    ),
                });
            }
        }
        Ok(MultiQuery { facets: vectors })
    }

    /// Number of facets.
    pub fn n_facets(&self) -> usize {
        self.facets.len()
    }
}

impl LsiModel {
    /// Rank all documents against a multi-facet query.
    ///
    /// All facet cosines come out of a single `V Q̂` matrix product
    /// (one GEMM for the whole batch) before the per-document combine.
    pub fn query_multi(&self, query: &MultiQuery, combine: Combine) -> Result<RankedList> {
        let facets: Vec<&[f64]> = query.facets.iter().map(Vec::as_slice).collect();
        let cosines = self.facet_cosines(&facets)?;
        let nf = query.facets.len();
        let mut row = vec![0.0; nf];
        let mut matches: Vec<Match> = (0..self.n_docs())
            .map(|j| {
                for f in 0..nf {
                    row[f] = cosines.get(j, f);
                }
                Match {
                    doc: j,
                    id: self.doc_ids()[j].clone(),
                    cosine: combine.combine(&row),
                }
            })
            .collect();
        // NaN-safe: a fused score that goes non-finite (e.g. a 0/0
        // norm edge case upstream) must not panic the sort — treat it
        // as equal and let the doc-id tiebreak keep the order total.
        matches.sort_by(|a, b| {
            b.cosine
                .partial_cmp(&a.cosine)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.doc.cmp(&b.doc))
        });
        Ok(RankedList { matches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LsiOptions;
    use lsi_text::{Corpus, ParsingRules, TermWeighting};

    fn model() -> LsiModel {
        let corpus = Corpus::from_pairs([
            ("cars1", "car engine wheel motor car"),
            ("cars2", "automobile engine motor chassis"),
            ("cars3", "car automobile driver wheel"),
            ("zoo1", "elephant lion zebra elephant"),
            ("zoo2", "lion zebra giraffe elephant"),
            ("zoo3", "zebra giraffe lion safari"),
            ("mix1", "driver elephant car lion"),
        ]);
        let options = LsiOptions {
            k: 3,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 3,
        };
        LsiModel::build(&corpus, &options).unwrap().0
    }

    #[test]
    fn max_combine_returns_docs_satisfying_either_facet() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car motor", "lion zebra"]).unwrap();
        let ranked = m.query_multi(&q, Combine::Max).unwrap();
        // Top 6 should include docs from both domains.
        let top: Vec<&str> = ranked.ids().into_iter().take(6).collect();
        assert!(top.iter().any(|d| d.starts_with("cars")));
        assert!(top.iter().any(|d| d.starts_with("zoo")));
    }

    #[test]
    fn mean_combine_prefers_documents_spanning_both_facets() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car", "lion"]).unwrap();
        let mean = m.query_multi(&q, Combine::Mean).unwrap();
        // mix1 touches both topics, so under Mean it should outrank
        // single-topic documents' worst case.
        let mix_rank = mean.rank_of("mix1").unwrap();
        assert!(mix_rank <= 2, "mix1 ranked #{}", mix_rank + 1);
    }

    #[test]
    fn single_facet_multi_query_equals_plain_query() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car motor"]).unwrap();
        let multi = m.query_multi(&q, Combine::Max).unwrap();
        let plain = m.query("car motor").unwrap();
        assert_eq!(multi.ids(), plain.ids());
    }

    #[test]
    fn density_interpolates_between_mean_and_max() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car motor", "lion zebra"]).unwrap();
        let max = m.query_multi(&q, Combine::Max).unwrap();
        let mean = m.query_multi(&q, Combine::Mean).unwrap();
        let sharp = m
            .query_multi(&q, Combine::Density { sharpness: 50.0 })
            .unwrap();
        let flat = m
            .query_multi(&q, Combine::Density { sharpness: 1e-9 })
            .unwrap();
        // Sharp density ~ max ordering; flat density ~ mean ordering.
        assert_eq!(sharp.ids(), max.ids());
        assert_eq!(flat.ids(), mean.ids());
    }

    #[test]
    fn rejects_empty_or_mismatched_facets() {
        let m = model();
        assert!(MultiQuery::from_texts(&m, &[]).is_err());
        assert!(MultiQuery::from_texts(&m, &["qqqq zzzz"]).is_err());
        assert!(MultiQuery::from_vectors(&m, vec![vec![1.0]]).is_err());
        assert!(MultiQuery::from_vectors(&m, vec![]).is_err());
    }

    #[test]
    fn facet_count_is_reported() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car", "lion", "zebra"]).unwrap();
        assert_eq!(q.n_facets(), 3);
    }
}
