//! Multiple-points-of-interest queries.
//!
//! §5.4 of the paper: "Queries can even be represented as multiple
//! points of interest" (Kane-Esrig et al., the relevance density
//! method). Instead of collapsing a multi-facet information need into
//! one centroid vector — which can land in empty space between the
//! facets — each facet keeps its own vector and a document scores by
//! its *best* (or density-weighted) proximity to any facet.

use lsi_linalg::vecops;

use crate::compressed::CompressedStore;
use crate::model::LsiModel;
use crate::query::{desc_key_f64, select_top_by, Match, RankedList};
use crate::{Error, Result};

/// How per-facet cosines combine into one document score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Combine {
    /// Best facet wins (`max_i cos_i`) — a document satisfying any
    /// interest is returned.
    Max,
    /// Mean of the facet cosines — documents must do tolerably well on
    /// all facets.
    Mean,
    /// Softmax-weighted density with the given sharpness: approaches
    /// `Max` as the sharpness grows, `Mean` at zero. This mirrors the
    /// "relevance density" flavour of Kane-Esrig et al.
    Density {
        /// Sharpness β of the softmax weights.
        sharpness: f64,
    },
}

impl Combine {
    pub(crate) fn combine(&self, cosines: &[f64]) -> f64 {
        if cosines.is_empty() {
            return 0.0;
        }
        match self {
            Combine::Max => cosines.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Combine::Mean => cosines.iter().sum::<f64>() / cosines.len() as f64,
            Combine::Density { sharpness } => {
                let b = *sharpness;
                let mx = cosines.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> =
                    cosines.iter().map(|&c| ((c - mx) * b).exp()).collect();
                let wsum: f64 = weights.iter().sum();
                cosines
                    .iter()
                    .zip(weights.iter())
                    .map(|(c, w)| c * w)
                    .sum::<f64>()
                    / wsum
            }
        }
    }

    /// Lipschitz constant of the combine in the ∞-norm over per-facet
    /// cosines — how far the fused score can move when every facet
    /// cosine moves by at most ε. Used to scale the compressed path's
    /// per-facet error bound up to a fused-score margin.
    ///
    /// `Max` and `Mean` are 1-Lipschitz. For `Density`, the gradient
    /// w.r.t. facet `j` is `w_j/W + β·w_j·(c_j − fused)/W` with softmax
    /// weights `w`; summing over facets and using `|c_j − fused| ≤ 2`
    /// (cosines live in [-1, 1]) bounds the ∞-norm gradient by
    /// `1 + 2|β|`.
    pub(crate) fn lipschitz(&self) -> f64 {
        match self {
            Combine::Max | Combine::Mean => 1.0,
            Combine::Density { sharpness } => 1.0 + 2.0 * sharpness.abs(),
        }
    }
}

/// A multi-facet query: one projected vector per point of interest.
#[derive(Debug, Clone)]
pub struct MultiQuery {
    facets: Vec<Vec<f64>>,
}

impl MultiQuery {
    /// Build from facet texts (each projected via Eq. 6).
    pub fn from_texts(model: &LsiModel, texts: &[&str]) -> Result<MultiQuery> {
        if texts.is_empty() {
            return Err(Error::Inconsistent {
                context: "a multi-facet query needs at least one facet".to_string(),
            });
        }
        let facets = texts
            .iter()
            .map(|t| model.project_text(t))
            .collect::<Result<Vec<_>>>()?;
        if facets.iter().all(|f| f.iter().all(|&x| x == 0.0)) {
            return Err(Error::Inconsistent {
                context: "no facet contains any indexed term".to_string(),
            });
        }
        Ok(MultiQuery { facets })
    }

    /// Build from already-projected vectors (e.g. document vectors used
    /// as exemplars).
    pub fn from_vectors(model: &LsiModel, vectors: Vec<Vec<f64>>) -> Result<MultiQuery> {
        if vectors.is_empty() {
            return Err(Error::Inconsistent {
                context: "a multi-facet query needs at least one facet".to_string(),
            });
        }
        for v in &vectors {
            if v.len() != model.k() {
                return Err(Error::Inconsistent {
                    context: format!(
                        "facet has {} dimensions but the model has {} factors",
                        v.len(),
                        model.k()
                    ),
                });
            }
        }
        Ok(MultiQuery { facets: vectors })
    }

    /// Number of facets.
    pub fn n_facets(&self) -> usize {
        self.facets.len()
    }
}

impl LsiModel {
    /// Rank all documents against a multi-facet query.
    ///
    /// All facet cosines come out of a single `V Q̂` matrix product
    /// (one GEMM for the whole batch) before the per-document combine.
    pub fn query_multi(&self, query: &MultiQuery, combine: Combine) -> Result<RankedList> {
        let facets: Vec<&[f64]> = query.facets.iter().map(Vec::as_slice).collect();
        let cosines = self.facet_cosines(&facets)?;
        let nf = query.facets.len();
        let mut row = vec![0.0; nf];
        let mut matches: Vec<Match> = (0..self.n_docs())
            .map(|j| {
                for f in 0..nf {
                    row[f] = cosines.get(j, f);
                }
                Match {
                    doc: j,
                    id: self.doc_ids()[j].clone(),
                    cosine: combine.combine(&row),
                }
            })
            .collect();
        // NaN-safe: a fused score that goes non-finite (e.g. a 0/0
        // norm edge case upstream) must not panic the sort — treat it
        // as equal and let the doc-id tiebreak keep the order total.
        matches.sort_by(|a, b| {
            b.cosine
                .partial_cmp(&a.cosine)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.doc.cmp(&b.doc))
        });
        Ok(RankedList { matches })
    }

    /// The `z` best documents for a multi-facet query, through the same
    /// shared selection (and, under a reduced [`crate::Precision`], the
    /// same two-phase candidate machinery) as
    /// [`LsiModel::rank_projected_top`].
    ///
    /// Compressed caveat: the exact re-rank recomputes each candidate's
    /// facet cosines through the single-row GEMV, whose accumulation
    /// order matches the single-facet sweep but differs in the last ulp
    /// from the blocked multi-facet GEMM that [`LsiModel::query_multi`]
    /// uses. The f32 margin check absorbs that (the certificate margin
    /// is scaled by [`Combine::lipschitz`] and dwarfs an ulp), so the
    /// returned *document set and order* agree with the exact scan away
    /// from exact fused-score ties, but fused scores may differ from
    /// `query_multi`'s in the final bit. The bit-equality contract is
    /// promised only for the single-facet path.
    pub fn query_multi_top(
        &self,
        query: &MultiQuery,
        combine: Combine,
        z: usize,
    ) -> Result<RankedList> {
        let facets: Vec<&[f64]> = query.facets.iter().map(Vec::as_slice).collect();
        if let Some(store) = self.compressed.as_ref() {
            if let Some(ranked) = self.multi_top_compressed(store, &facets, combine, z)? {
                return Ok(ranked);
            }
            lsi_obs::count("score.rerank.fallback.count", 1);
        }
        let cosines = self.facet_cosines(&facets)?;
        let n = self.n_docs();
        let nf = facets.len();
        let mut row = vec![0.0; nf];
        let fused: Vec<f64> = (0..n)
            .map(|j| {
                for f in 0..nf {
                    row[f] = cosines.get(j, f);
                }
                combine.combine(&row)
            })
            .collect();
        let order = select_top_by(n, z, |i| (desc_key_f64(fused[i]), i as u32));
        Ok(RankedList {
            matches: order
                .into_iter()
                .map(|j| self.make_match(j, fused[j]))
                .collect(),
        })
    }

    /// Two-phase compressed multi-facet scan; `Ok(None)` defers to the
    /// exact path (same fallback triggers as the single-facet variant).
    fn multi_top_compressed(
        &self,
        store: &CompressedStore,
        facets: &[&[f64]],
        combine: Combine,
        z: usize,
    ) -> Result<Option<RankedList>> {
        let k = self.k();
        let n = self.n_docs();
        for facet in facets {
            if facet.len() != k {
                return Err(Error::Inconsistent {
                    context: format!(
                        "facet has {} dimensions but the model has {k} factors",
                        facet.len()
                    ),
                });
            }
        }
        if n == 0 || k == 0 || z == 0 || facets.is_empty() {
            return Ok(None);
        }
        let nf = facets.len();
        let qnorms: Vec<f64> = facets.iter().map(|f| vecops::nrm2(f)).collect();
        let approx = {
            let _span = lsi_obs::span("score.candidates");
            lsi_obs::add_bytes((store.resident_bytes() * nf.div_ceil(2) + 8 * k * nf) as f64);
            lsi_obs::add_flops((2 * k + 2) as f64 * (n * nf) as f64);
            let mut approx = store.approx_scores_multi(facets, &qnorms)?;
            match lsi_fault::eval(lsi_fault::points::CORE_QUERY_SCORE) {
                Some(lsi_fault::Fired::ReturnErr) => {
                    return Err(Error::Inconsistent {
                        context: format!(
                            "fault injected at failpoint `{}`",
                            lsi_fault::points::CORE_QUERY_SCORE
                        ),
                    });
                }
                Some(lsi_fault::Fired::InjectNan) => {
                    if let Some(first) = approx.first_mut() {
                        *first = f32::NAN;
                    }
                }
                None => {}
            }
            approx
        };
        if !approx.iter().all(|s| s.is_finite()) {
            lsi_obs::warn!(
                "compressed multi-facet sweep produced non-finite scores; \
                 falling back to the exact f64 scan"
            );
            return Ok(None);
        }
        // Fuse the per-facet f32 scores in f64 — the combine itself is
        // always full precision; only the facet cosines are approximate.
        let mut row = vec![0.0; nf];
        let fused: Vec<f64> = (0..n)
            .map(|j| {
                for f in 0..nf {
                    row[f] = approx[f * n + j] as f64;
                }
                combine.combine(&row)
            })
            .collect();
        let z = z.min(n);
        let c = z
            .saturating_mul(crate::compressed::OVER_FETCH_FACTOR)
            .max(crate::compressed::OVER_FETCH_FLOOR)
            .min(n);
        let candidates = select_top_by(n, c, |i| (desc_key_f64(fused[i]), i as u32));
        lsi_obs::count("score.candidates.count", c as u64);
        let reranked: Vec<(usize, f64)> = {
            let _span = lsi_obs::span("score.rerank");
            lsi_obs::add_bytes((c * k * 8) as f64);
            lsi_obs::add_flops(((2 * k + 3) * c * nf) as f64);
            // One batched column-outer pass per facet over the
            // candidates in ascending row order (prefetch-friendly),
            // then fuse per candidate — bit-identical per facet to the
            // single-row re-rank.
            let mut by_row = candidates.clone();
            by_row.sort_unstable();
            let per_facet: Vec<Vec<f64>> = (0..nf)
                .map(|f| self.exact_cosines_rows(&by_row, facets[f], qnorms[f]))
                .collect::<Result<_>>()?;
            let mut reranked = Vec::with_capacity(by_row.len());
            for (ci, &j) in by_row.iter().enumerate() {
                for f in 0..nf {
                    row[f] = per_facet[f][ci];
                }
                reranked.push((j, combine.combine(&row)));
            }
            reranked
        };
        if !reranked.iter().all(|(_, s)| s.is_finite()) {
            return Err(Error::NonFinite {
                context: "cosine scores (query scoring boundary)".into(),
            });
        }
        lsi_obs::count("score.rerank.count", candidates.len() as u64);
        let exact_scores: Vec<f64> = reranked.iter().map(|&(_, s)| s).collect();
        let doc_of: Vec<usize> = reranked.iter().map(|&(j, _)| j).collect();
        // Position tie-break == document-id tie-break: `reranked` is in
        // ascending-row order, so `doc_of` is strictly increasing.
        let order = select_top_by(reranked.len(), z, |i| {
            (desc_key_f64(exact_scores[i]), i as u32)
        });
        // Margin certificate, scaled by the combine's Lipschitz
        // constant: every facet cosine is within `bound` of exact, so
        // the fused score is within `L·bound`.
        if c < n {
            if let Some(bound) = store.rerank_margin(k) {
                let bound = bound * combine.lipschitz();
                let cutoff = candidates
                    .last()
                    .map(|&j| fused[j])
                    .unwrap_or(f64::NEG_INFINITY);
                let s_z = order
                    .last()
                    .map(|&i| exact_scores[i])
                    .unwrap_or(f64::NEG_INFINITY);
                if !(s_z > cutoff + bound) {
                    return Ok(None);
                }
            }
        }
        Ok(Some(RankedList {
            matches: order
                .into_iter()
                .map(|i| self.make_match(doc_of[i], exact_scores[i]))
                .collect(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LsiOptions;
    use lsi_text::{Corpus, ParsingRules, TermWeighting};

    fn model() -> LsiModel {
        let corpus = Corpus::from_pairs([
            ("cars1", "car engine wheel motor car"),
            ("cars2", "automobile engine motor chassis"),
            ("cars3", "car automobile driver wheel"),
            ("zoo1", "elephant lion zebra elephant"),
            ("zoo2", "lion zebra giraffe elephant"),
            ("zoo3", "zebra giraffe lion safari"),
            ("mix1", "driver elephant car lion"),
        ]);
        let options = LsiOptions {
            k: 3,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 3,
        };
        LsiModel::build(&corpus, &options).unwrap().0
    }

    #[test]
    fn max_combine_returns_docs_satisfying_either_facet() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car motor", "lion zebra"]).unwrap();
        let ranked = m.query_multi(&q, Combine::Max).unwrap();
        // Top 6 should include docs from both domains.
        let top: Vec<&str> = ranked.ids().into_iter().take(6).collect();
        assert!(top.iter().any(|d| d.starts_with("cars")));
        assert!(top.iter().any(|d| d.starts_with("zoo")));
    }

    #[test]
    fn mean_combine_prefers_documents_spanning_both_facets() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car", "lion"]).unwrap();
        let mean = m.query_multi(&q, Combine::Mean).unwrap();
        // mix1 touches both topics, so under Mean it should outrank
        // single-topic documents' worst case.
        let mix_rank = mean.rank_of("mix1").unwrap();
        assert!(mix_rank <= 2, "mix1 ranked #{}", mix_rank + 1);
    }

    #[test]
    fn single_facet_multi_query_equals_plain_query() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car motor"]).unwrap();
        let multi = m.query_multi(&q, Combine::Max).unwrap();
        let plain = m.query("car motor").unwrap();
        assert_eq!(multi.ids(), plain.ids());
    }

    #[test]
    fn density_interpolates_between_mean_and_max() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car motor", "lion zebra"]).unwrap();
        let max = m.query_multi(&q, Combine::Max).unwrap();
        let mean = m.query_multi(&q, Combine::Mean).unwrap();
        let sharp = m
            .query_multi(&q, Combine::Density { sharpness: 50.0 })
            .unwrap();
        let flat = m
            .query_multi(&q, Combine::Density { sharpness: 1e-9 })
            .unwrap();
        // Sharp density ~ max ordering; flat density ~ mean ordering.
        assert_eq!(sharp.ids(), max.ids());
        assert_eq!(flat.ids(), mean.ids());
    }

    #[test]
    fn rejects_empty_or_mismatched_facets() {
        let m = model();
        assert!(MultiQuery::from_texts(&m, &[]).is_err());
        assert!(MultiQuery::from_texts(&m, &["qqqq zzzz"]).is_err());
        assert!(MultiQuery::from_vectors(&m, vec![vec![1.0]]).is_err());
        assert!(MultiQuery::from_vectors(&m, vec![]).is_err());
    }

    #[test]
    fn facet_count_is_reported() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car", "lion", "zebra"]).unwrap();
        assert_eq!(q.n_facets(), 3);
    }

    #[test]
    fn multi_top_matches_the_full_ranking_prefix() {
        let m = model();
        let q = MultiQuery::from_texts(&m, &["car motor", "lion zebra"]).unwrap();
        for combine in [
            Combine::Max,
            Combine::Mean,
            Combine::Density { sharpness: 3.0 },
        ] {
            let full = m.query_multi(&q, combine).unwrap();
            let top = m.query_multi_top(&q, combine, 3).unwrap();
            assert_eq!(top.ids(), full.ids()[..3].to_vec());
        }
    }

    #[test]
    fn compressed_multi_top_agrees_with_exact_within_tolerance() {
        let m = model();
        let mut mc = m.clone();
        mc.set_precision(crate::Precision::F32);
        let q = MultiQuery::from_texts(&m, &["car motor", "lion zebra"]).unwrap();
        for combine in [Combine::Max, Combine::Mean, Combine::Density { sharpness: 2.0 }] {
            let exact = m.query_multi_top(&q, combine, 3).unwrap();
            let comp = mc.query_multi_top(&q, combine, 3).unwrap();
            // nf > 1 re-ranks through the single-row GEMV, whose
            // accumulation order differs from the blocked GEMM in the
            // last ulp — same documents, near-identical scores.
            for (a, b) in exact.matches.iter().zip(comp.matches.iter()) {
                assert_eq!(a.doc, b.doc);
                assert!((a.cosine - b.cosine).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lipschitz_constants_cover_the_combines() {
        assert_eq!(Combine::Max.lipschitz(), 1.0);
        assert_eq!(Combine::Mean.lipschitz(), 1.0);
        assert_eq!(Combine::Density { sharpness: -3.0 }.lipschitz(), 7.0);
    }
}
