//! §4.3: orthogonality loss under folding-in.
//!
//! "The folding-in process corrupts the orthogonality of Û_k and V̂_k by
//! appending non-orthogonal submatrices ... the loss of orthogonality
//! can be measured by ‖ÛᵀÛ − I‖₂ and ‖V̂ᵀV̂ − I‖₂. ... the amount by
//! which the folding-in method perturbs the orthogonality ... does
//! indicate how much distortion has occurred." The paper proposes
//! monitoring this and correlating it with retrieval quality as future
//! research; `repro --ortho` runs that experiment.

use lsi_linalg::ortho::{orthogonality_defect_fro, orthogonality_defect_spectral};

use crate::model::LsiModel;
use crate::Result;

/// The two defects of §4.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrthogonalityLoss {
    /// `‖ÛᵀÛ − I_k‖₂` over all term rows (SVD-derived + folded).
    pub term_defect: f64,
    /// `‖V̂ᵀV̂ − I_k‖₂` over all document rows.
    pub doc_defect: f64,
}

impl LsiModel {
    /// Measure the current orthogonality loss of both factor matrices.
    ///
    /// For a freshly built or SVD-updated model both defects are at
    /// rounding level; every folded-in row can only increase them.
    pub fn orthogonality_loss(&self) -> Result<OrthogonalityLoss> {
        let k = self.k();
        Ok(OrthogonalityLoss {
            term_defect: orthogonality_defect_spectral(&self.u, k)?,
            doc_defect: orthogonality_defect_spectral(&self.v, k)?,
        })
    }

    /// Frobenius variant (cheaper, upper-bounds the spectral defect).
    pub fn orthogonality_loss_fro(&self) -> Result<OrthogonalityLoss> {
        let k = self.k();
        Ok(OrthogonalityLoss {
            term_defect: orthogonality_defect_fro(&self.u, k)?,
            doc_defect: orthogonality_defect_fro(&self.v, k)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::model::LsiOptions;
    use lsi_text::{Corpus, ParsingRules, TermWeighting};

    fn build() -> crate::LsiModel {
        let corpus = Corpus::from_pairs([
            ("d1", "alpha beta alpha gamma"),
            ("d2", "beta gamma beta delta"),
            ("d3", "alpha gamma delta epsilon"),
            ("d4", "zeta epsilon delta zeta"),
            ("d5", "epsilon zeta alpha beta"),
        ]);
        let options = LsiOptions {
            k: 3,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 5,
        };
        crate::LsiModel::build(&corpus, &options).unwrap().0
    }

    #[test]
    fn fresh_model_has_no_defect() {
        let m = build();
        let loss = m.orthogonality_loss().unwrap();
        assert!(loss.term_defect < 1e-9, "term defect {}", loss.term_defect);
        assert!(loss.doc_defect < 1e-9, "doc defect {}", loss.doc_defect);
    }

    #[test]
    fn folding_in_increases_doc_defect_monotonically() {
        let mut m = build();
        let mut last = m.orthogonality_loss().unwrap().doc_defect;
        for i in 0..4 {
            m.fold_in_documents(&Corpus::from_pairs([(
                format!("f{i}"),
                "alpha beta gamma delta".to_string(),
            )]))
            .unwrap();
            let now = m.orthogonality_loss().unwrap().doc_defect;
            assert!(
                now >= last - 1e-12,
                "defect should not decrease: {now} after {last}"
            );
            last = now;
        }
        assert!(last > 1e-6, "repeated folding should visibly corrupt V");
    }

    #[test]
    fn svd_updating_preserves_orthogonality() {
        let mut m = build();
        let d = m
            .vocabulary()
            .count_matrix(&Corpus::from_pairs([("n1", "alpha beta gamma delta")]));
        m.svd_update_documents(&d, &["n1".to_string()]).unwrap();
        let loss = m.orthogonality_loss().unwrap();
        assert!(loss.term_defect < 1e-9);
        assert!(loss.doc_defect < 1e-9);
    }

    #[test]
    fn fro_bounds_spectral() {
        let mut m = build();
        m.fold_in_documents(&Corpus::from_pairs([("f", "alpha alpha beta")]))
            .unwrap();
        let spec = m.orthogonality_loss().unwrap();
        let fro = m.orthogonality_loss_fro().unwrap();
        assert!(spec.doc_defect <= fro.doc_defect + 1e-12);
        assert!(spec.term_defect <= fro.term_defect + 1e-12);
    }
}
