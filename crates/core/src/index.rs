//! Cluster-pruned retrieval index (coarse quantization over doc vectors).
//!
//! Every scoring path in `query.rs` historically swept all `n` rows of
//! `V`, so query latency grows 1:1 with the corpus. This module breaks
//! that wall with the classic IVF/cluster-pruning scheme: spherical
//! k-means partitions the rows of `V` into ~√n lists keyed by unit
//! centroids; a query scores the ~√n centroids instead of the `n`
//! docs, probes the `nprobe` best lists, and only the docs in those
//! lists ("survivors") go through the usual sweep + exact-f64 re-rank.
//! With `nprobe = n_lists` every doc survives and the result is
//! bit-identical to the exact scan — that oracle anchors both the
//! recall bench (`perf_kernels --index`) and the coherence suite
//! (`crates/core/tests/index_coherence.rs`).
//!
//! Coherence under mutation: fold-in appends rows (assigned to their
//! nearest centroid as they arrive); the SVD-updating paths and
//! recompute replace `V` wholesale (all rows re-assigned against the
//! frozen centroids). Both account the number of rows whose list
//! changed into `moved`, and once the moved mass crosses
//! [`INDEX_RECLUSTER_THRESHOLD`] the centroids themselves are retrained
//! from scratch. The index persists with the model (centroids +
//! assignments; the per-list posting vectors are derived and rebuilt on
//! load).
//!
//! Everything here is deterministic: seeding uses a fixed-seed
//! splitmix64 stream, Lloyd assignment breaks score ties toward the
//! lowest list id, and all distance math runs through the same blocked
//! kernels as scoring — so a rebuilt index on identical inputs is
//! identical, in both `LSI_NUM_THREADS` modes.

use lsi_linalg::{ops, DenseMatrix};
use serde::{de, Deserialize, Serialize, Value};

use crate::Result;

/// Fraction of docs whose list assignment may drift before the
/// centroids are retrained from scratch. Calibrated on the
/// `perf_kernels --index` harness (synthetic topic corpus, k = 64,
/// √n lists): replaying SVD-updates that perturb up to 20% of
/// assignments against frozen centroids moved recall@10 at the default
/// probe depth by < 0.01 versus a fresh clustering, while at ~30%
/// drift recall dipped below the 0.95 floor on some seeds. 0.25 sits
/// inside that margin, and since a full retrain costs the same
/// O(n·√n·k) as the initial build, amortizing it over ≥ n/4 mutations
/// keeps maintenance strictly cheaper than the mutations themselves.
pub const INDEX_RECLUSTER_THRESHOLD: f64 = 0.25;

/// Default probe depth for `IndexPolicy::Pruned` when the caller does
/// not pass one (`lsi query --nprobe=N` overrides per query).
/// Calibrated by the nprobe sweep in `perf_kernels --index` on the
/// 10x-inflated bench corpus (20k docs, ~141 lists): nprobe = 8 is the
/// smallest probe depth whose measured recall@10 clears the 0.95 CI
/// floor with margin (1.00 observed) while keeping the batched pruned
/// sweep > 5x faster than the exact scan; nprobe = 4 was faster still
/// but its recall (0.93–0.97 across seeds) straddles the floor. See
/// BENCH_kernels.json `index.sweep` for the committed curve.
pub const DEFAULT_NPROBE: usize = 8;

/// Lloyd refinement cap for (re)clustering. Calibrated on the same
/// harness: assignments converge (zero rows moving) after 4–6 rounds
/// on the 10x corpus and recall@10 at the default probe depth is flat
/// from round 3 onward, so 8 bounds the O(n·√n·k) build cost without
/// ever being the binding constraint in practice (early-exit fires
/// first on every corpus measured).
const KMEANS_MAX_ITERS: usize = 8;

/// Rows per assignment block. The Lloyd/assignment GEMM materializes a
/// `block_rows x n_lists` score panel; 4096 rows keeps that panel
/// (4096·√n·8 bytes ≈ 15 MiB at n = 200k) comfortably inside the
/// container's memory budget where a full `n x n_lists` panel at the
/// 100x bench scale would not be (200k·447·8 ≈ 715 MiB), while staying
/// large enough that the blocked GEMM runs at full tilt.
const ASSIGN_BLOCK_ROWS: usize = 4096;

/// Fixed seed for the k-means++ splitmix64 stream — clustering must be
/// reproducible across builds and thread counts.
const KMEANS_SEED: u64 = 0x5EED_C1A5_7E12_D0C5;

/// Retrieval strategy knob on the model API.
///
/// `Exact` is the linear scan over all doc vectors (the recall
/// oracle). `Pruned { nprobe }` routes top-k queries through the
/// cluster index, probing the `nprobe` best lists; `nprobe = n_lists`
/// reproduces the exact scan bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPolicy {
    /// Linear scan over every document vector.
    Exact,
    /// Cluster-pruned scan probing the `nprobe` closest lists.
    Pruned {
        /// Number of centroid lists to probe per query (≥ 1).
        nprobe: usize,
    },
}

impl IndexPolicy {
    /// Human-readable name for CLI/info output.
    pub fn describe(&self) -> String {
        match self {
            IndexPolicy::Exact => "exact".to_string(),
            IndexPolicy::Pruned { nprobe } => format!("pruned (nprobe={nprobe})"),
        }
    }
}

// The vendored serde derive only handles unit-variant enums, so the
// data-carrying `Pruned` variant gets hand-written impls. `Exact`
// keeps the derive's unit-variant encoding (`"Exact"`) so the policy
// field reads like the neighboring `precision` field.
impl Serialize for IndexPolicy {
    fn to_value(&self) -> Value {
        match self {
            IndexPolicy::Exact => Value::Str("Exact".to_string()),
            IndexPolicy::Pruned { nprobe } => Value::Map(vec![(
                "Pruned".to_string(),
                Value::Map(vec![("nprobe".to_string(), Value::UInt(*nprobe as u64))]),
            )]),
        }
    }
}

impl Deserialize for IndexPolicy {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::Error> {
        match v {
            Value::Str(s) if s == "Exact" => Ok(IndexPolicy::Exact),
            Value::Map(entries) => match entries.iter().find(|(k, _)| k == "Pruned") {
                Some((_, body)) => {
                    let map = body
                        .as_map()
                        .ok_or_else(|| serde::Error::custom("IndexPolicy::Pruned body must be a map"))?;
                    let nprobe: usize = de::field(map, "nprobe")?;
                    Ok(IndexPolicy::Pruned { nprobe })
                }
                None => Err(serde::Error::custom("unknown IndexPolicy variant")),
            },
            _ => Err(serde::Error::custom("expected IndexPolicy (\"Exact\" or {\"Pruned\":..})")),
        }
    }
}

/// The trained cluster index: unit centroids over normalized rows of
/// `V`, one assignment per doc, and the derived per-list posting
/// vectors (ascending doc ids).
#[derive(Debug, Clone)]
pub(crate) struct ClusterIndex {
    /// `n_lists x k`, rows are unit centroids (zero rows allowed when a
    /// cluster collapsed onto zero-norm docs).
    centroids: DenseMatrix,
    /// `assignments[doc] = list id`, one entry per doc vector.
    assignments: Vec<u32>,
    /// Derived: docs per list, ascending ids. Rebuilt on load.
    lists: Vec<Vec<u32>>,
    /// Rows whose assignment changed since the centroids were trained;
    /// compared against [`INDEX_RECLUSTER_THRESHOLD`] · n by
    /// [`ClusterIndex::needs_recluster`].
    moved: usize,
}

/// splitmix64 step — the same tiny deterministic generator the
/// compressed-store tests use, kept local so clustering has no
/// dependency on external randomness. Shared with the bench-only
/// corpus replicator in `model.rs`.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the splitmix stream (53-bit mantissa).
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// `round(sqrt(n))` clamped to `[1, n]` — the list count the tentpole
/// targets (centroid scan + one list sweep are then both ~√n).
pub(crate) fn default_n_lists(n_docs: usize) -> usize {
    ((n_docs as f64).sqrt().round() as usize).clamp(1, n_docs.max(1))
}

impl ClusterIndex {
    /// Train a fresh index over the rows of `v` (doc vectors,
    /// `n x k`) with precomputed row norms. Deterministic: fixed-seed
    /// k-means++ seeding, blocked-GEMM Lloyd refinement with
    /// lowest-id tie-breaks, early exit once assignments stabilize.
    pub(crate) fn build(v: &DenseMatrix, doc_norms: &[f64]) -> Result<Self> {
        let n = v.nrows();
        let k = v.ncols();
        let n_lists = default_n_lists(n);
        if n == 0 {
            return Ok(ClusterIndex {
                centroids: DenseMatrix::zeros(1, k),
                assignments: Vec::new(),
                lists: vec![Vec::new()],
                moved: 0,
            });
        }
        let inv_norms: Vec<f64> = doc_norms
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();

        let mut centroids = seed_centroids(v, &inv_norms, n_lists)?;
        let mut assignments = vec![0u32; n];
        for _ in 0..KMEANS_MAX_ITERS {
            let (next, best, changed) = assign_all(v, &inv_norms, &centroids, Some(&assignments))?;
            assignments = next;
            update_centroids(v, &inv_norms, &assignments, &best, &mut centroids);
            if changed == 0 {
                break;
            }
        }
        // One final assignment against the converged centroids so the
        // stored assignments match the stored centroids exactly.
        let (final_assign, _, _) = assign_all(v, &inv_norms, &centroids, None)?;
        let lists = lists_from(&final_assign, n_lists);
        Ok(ClusterIndex {
            centroids,
            assignments: final_assign,
            lists,
            moved: 0,
        })
    }

    /// Rehydrate a persisted index: trusts centroids/assignments/moved
    /// from the file (the caller validates shapes) and rebuilds the
    /// derived posting lists.
    pub(crate) fn from_parts(centroids: DenseMatrix, assignments: Vec<u32>, moved: usize) -> Self {
        let n_lists = centroids.nrows().max(1);
        let lists = lists_from(&assignments, n_lists);
        ClusterIndex {
            centroids,
            assignments,
            lists,
            moved,
        }
    }

    /// Number of centroid lists.
    #[inline]
    pub(crate) fn n_lists(&self) -> usize {
        self.centroids.nrows()
    }

    /// Factor dimension the centroids were trained in.
    #[inline]
    pub(crate) fn k(&self) -> usize {
        self.centroids.ncols()
    }

    /// Docs assigned to list `l`, ascending ids.
    #[inline]
    pub(crate) fn list(&self, l: usize) -> &[u32] {
        &self.lists[l]
    }

    /// Per-doc list assignments (for persistence/validation).
    #[inline]
    pub(crate) fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Moved-mass counter (test oracle for the re-cluster budget).
    #[cfg(test)]
    #[inline]
    pub(crate) fn moved(&self) -> usize {
        self.moved
    }

    /// Borrow the centroid matrix (test oracle for persistence).
    #[cfg(test)]
    #[inline]
    pub(crate) fn centroids(&self) -> &DenseMatrix {
        &self.centroids
    }

    /// Query-to-centroid scores: `centroids · q̂` (one dot per list).
    /// Unit centroids make the dot a cosine up to the constant ‖q̂‖,
    /// which ranking ignores.
    pub(crate) fn centroid_scores(&self, qhat: &[f64]) -> Result<Vec<f64>> {
        Ok(ops::matvec(&self.centroids, qhat)?)
    }

    /// Assign freshly appended rows `start..v.nrows()` (fold-in) to
    /// their nearest centroid, extending the posting lists in place.
    /// Every appended row counts toward the moved mass.
    pub(crate) fn append_rows(&mut self, v: &DenseMatrix, doc_norms: &[f64], start: usize) -> Result<()> {
        let n = v.nrows();
        if start >= n {
            return Ok(());
        }
        let inv_norms: Vec<f64> = doc_norms[start..]
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        let mut r0 = start;
        while r0 < n {
            let r1 = (r0 + ASSIGN_BLOCK_ROWS).min(n);
            let block = normalized_block(v, &inv_norms[r0 - start..r1 - start], r0, r1);
            let scores = ops::matmul_nt(&block, &self.centroids)?;
            let (bestc, _) = argmax_rows(&scores);
            for (i, c) in bestc.into_iter().enumerate() {
                let doc = (r0 + i) as u32;
                self.assignments.push(c);
                self.lists[c as usize].push(doc);
            }
            r0 = r1;
        }
        self.moved += n - start;
        Ok(())
    }

    /// Re-assign every row against the frozen centroids after `V` was
    /// replaced wholesale (SVD update / recompute). Rows whose list
    /// changed count toward the moved mass. The caller must have kept
    /// `assignments.len() == v.nrows()`; on a row-count change it
    /// should rebuild instead.
    pub(crate) fn reassign_all(&mut self, v: &DenseMatrix, doc_norms: &[f64]) -> Result<()> {
        let inv_norms: Vec<f64> = doc_norms
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        let (next, _, _) = assign_all(v, &inv_norms, &self.centroids, None)?;
        let changed = next
            .iter()
            .zip(self.assignments.iter())
            .filter(|(a, b)| a != b)
            .count();
        self.moved += changed;
        self.assignments = next;
        self.lists = lists_from(&self.assignments, self.n_lists());
        Ok(())
    }

    /// True once the accumulated assignment drift crosses
    /// [`INDEX_RECLUSTER_THRESHOLD`] of the corpus — the signal to
    /// retrain centroids from scratch.
    pub(crate) fn needs_recluster(&self) -> bool {
        self.moved as f64 > INDEX_RECLUSTER_THRESHOLD * self.assignments.len() as f64
    }

    /// Heap footprint of the index (centroids + assignments + lists).
    pub(crate) fn resident_bytes(&self) -> usize {
        let lists: usize = self.lists.iter().map(|l| l.len() * 4 + 24).sum();
        self.centroids.data().len() * 8 + self.assignments.len() * 4 + lists
    }
}

impl Serialize for ClusterIndex {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("centroids".to_string(), self.centroids.to_value()),
            ("assignments".to_string(), self.assignments.to_value()),
            ("moved".to_string(), Value::UInt(self.moved as u64)),
        ])
    }
}

impl Deserialize for ClusterIndex {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for ClusterIndex"))?;
        let centroids: DenseMatrix = de::field(map, "centroids")?;
        let assignments: Vec<u32> = de::field(map, "assignments")?;
        let moved: usize = de::field(map, "moved")?;
        Ok(ClusterIndex::from_parts(centroids, assignments, moved))
    }
}

/// Group docs by assignment; list vectors come out ascending because
/// docs are visited in id order.
fn lists_from(assignments: &[u32], n_lists: usize) -> Vec<Vec<u32>> {
    let mut lists = vec![Vec::new(); n_lists.max(1)];
    for (doc, &c) in assignments.iter().enumerate() {
        let c = (c as usize).min(lists.len() - 1);
        lists[c].push(doc as u32);
    }
    lists
}

/// Normalized copy of rows `r0..r1` of `v` (each row scaled by its
/// precomputed inverse norm; zero rows stay zero).
fn normalized_block(v: &DenseMatrix, inv_norms: &[f64], r0: usize, r1: usize) -> DenseMatrix {
    let m = r1 - r0;
    let k = v.ncols();
    let mut block = DenseMatrix::zeros(m, k);
    for j in 0..k {
        let src = &v.col(j)[r0..r1];
        let dst = block.col_mut(j);
        for i in 0..m {
            dst[i] = src[i] * inv_norms[i];
        }
    }
    block
}

/// Per-row argmax over a column-major score panel, ties to the lowest
/// column (strict `>` with ascending column sweep). Returns the winning
/// column and score per row.
fn argmax_rows(scores: &DenseMatrix) -> (Vec<u32>, Vec<f64>) {
    let m = scores.nrows();
    let mut best = vec![f64::NEG_INFINITY; m];
    let mut bestc = vec![0u32; m];
    for c in 0..scores.ncols() {
        let col = scores.col(c);
        for i in 0..m {
            if col[i] > best[i] {
                best[i] = col[i];
                bestc[i] = c as u32;
            }
        }
    }
    (bestc, best)
}

/// One full assignment sweep: blocked `V_norm · Cᵀ` GEMM + per-row
/// argmax. Returns (assignments, best score per row, rows changed vs
/// `prev` — `n` when `prev` is `None`).
fn assign_all(
    v: &DenseMatrix,
    inv_norms: &[f64],
    centroids: &DenseMatrix,
    prev: Option<&[u32]>,
) -> Result<(Vec<u32>, Vec<f64>, usize)> {
    let n = v.nrows();
    let mut assignments = Vec::with_capacity(n);
    let mut best_all = Vec::with_capacity(n);
    let mut r0 = 0usize;
    while r0 < n {
        let r1 = (r0 + ASSIGN_BLOCK_ROWS).min(n);
        let block = normalized_block(v, &inv_norms[r0..r1], r0, r1);
        let scores = ops::matmul_nt(&block, centroids)?;
        let (bestc, best) = argmax_rows(&scores);
        assignments.extend_from_slice(&bestc);
        best_all.extend_from_slice(&best);
        r0 = r1;
    }
    let changed = match prev {
        Some(p) => assignments.iter().zip(p.iter()).filter(|(a, b)| a != b).count(),
        None => n,
    };
    Ok((assignments, best_all, changed))
}

/// Recompute centroids as the renormalized mean of their assigned
/// normalized rows. Empty clusters are reseeded onto the rows farthest
/// from their current centroid (worst best-score first, deterministic
/// lowest-id tie-break), which keeps every list reachable.
fn update_centroids(
    v: &DenseMatrix,
    inv_norms: &[f64],
    assignments: &[u32],
    best: &[f64],
    centroids: &mut DenseMatrix,
) {
    let n_lists = centroids.nrows();
    let k = centroids.ncols();
    let n = v.nrows();
    let mut sums = vec![0.0f64; n_lists * k];
    let mut counts = vec![0usize; n_lists];
    for &c in assignments {
        counts[c as usize] += 1;
    }
    for j in 0..k {
        let col = v.col(j);
        for i in 0..n {
            let c = assignments[i] as usize;
            sums[c * k + j] += col[i] * inv_norms[i];
        }
    }
    // Rows sorted by how poorly their current centroid fits them —
    // reseed donors for empty clusters.
    let mut donors: Vec<usize> = Vec::new();
    if counts.iter().any(|&c| c == 0) {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| match best[a].partial_cmp(&best[b]) {
            Some(o) => o.then(a.cmp(&b)),
            None => a.cmp(&b),
        });
        donors = order;
    }
    let mut donor_at = 0usize;
    for c in 0..n_lists {
        if counts[c] == 0 {
            // Reseed: copy the next-worst-fitting row, normalized.
            if donor_at < donors.len() {
                let r = donors[donor_at];
                donor_at += 1;
                for j in 0..k {
                    centroids.set(c, j, v.get(r, j) * inv_norms[r]);
                }
            }
            continue;
        }
        let row = &sums[c * k..(c + 1) * k];
        let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for j in 0..k {
                centroids.set(c, j, row[j] / norm);
            }
        } else {
            for j in 0..k {
                centroids.set(c, j, 0.0);
            }
        }
    }
}

/// Deterministic k-means++ seeding over the normalized rows: first
/// seed drawn uniformly from the fixed splitmix64 stream, each later
/// seed drawn with probability proportional to its squared cosine
/// distance to the nearest already-chosen seed (running min-distance
/// array, one GEMV per seed).
fn seed_centroids(v: &DenseMatrix, inv_norms: &[f64], n_lists: usize) -> Result<DenseMatrix> {
    let n = v.nrows();
    let k = v.ncols();
    let mut state = KMEANS_SEED;
    let mut centroids = DenseMatrix::zeros(n_lists, k);
    let mut chosen = vec![false; n];

    let first = (splitmix64(&mut state) % n as u64) as usize;
    copy_normalized_row(v, inv_norms, first, &mut centroids, 0);
    chosen[first] = true;

    // d2[i] = squared cosine distance to the nearest chosen seed.
    let mut d2 = vec![2.0f64; n];
    let mut last_row = centroids.row(0);
    for c in 1..n_lists {
        // Fold the newest seed into the running min-distance array.
        let dots = ops::matvec(v, &last_row)?;
        for i in 0..n {
            let d = (2.0 - 2.0 * dots[i] * inv_norms[i]).max(0.0);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        let total: f64 = d2
            .iter()
            .zip(chosen.iter())
            .map(|(&d, &taken)| if taken { 0.0 } else { d })
            .sum();
        let pick = if total > 0.0 {
            let mut target = unit_f64(&mut state) * total;
            let mut pick = usize::MAX;
            for i in 0..n {
                if chosen[i] {
                    continue;
                }
                target -= d2[i];
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            if pick == usize::MAX {
                // Floating-point slack left `target` positive: take the
                // last unchosen row.
                match (0..n).rev().find(|&i| !chosen[i]) {
                    Some(i) => i,
                    None => first,
                }
            } else {
                pick
            }
        } else {
            // Every remaining row coincides with a seed (or is zero):
            // cycle rows deterministically so centroids stay distinct
            // where possible.
            (0..n).find(|&i| !chosen[i]).unwrap_or(first)
        };
        copy_normalized_row(v, inv_norms, pick, &mut centroids, c);
        chosen[pick] = true;
        last_row = centroids.row(c);
    }
    Ok(centroids)
}

/// Write normalized row `src` of `v` into row `dst` of `centroids`.
fn copy_normalized_row(
    v: &DenseMatrix,
    inv_norms: &[f64],
    src: usize,
    centroids: &mut DenseMatrix,
    dst: usize,
) {
    for j in 0..v.ncols() {
        centroids.set(dst, j, v.get(src, j) * inv_norms[src]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norms(v: &DenseMatrix) -> Vec<f64> {
        (0..v.nrows()).map(|i| v.row_view(i).nrm2()).collect()
    }

    /// Three tight, well-separated direction clusters in 2-D.
    fn clustered_v() -> DenseMatrix {
        let dirs = [(1.0f64, 0.02f64), (0.02, 1.0), (-1.0, 0.9)];
        let mut rows = Vec::new();
        for rep in 0..4 {
            for &(x, y) in &dirs {
                let eps = 0.01 * rep as f64;
                rows.push(vec![x + eps, y - eps]);
            }
        }
        DenseMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn build_partitions_every_doc_exactly_once() {
        let v = clustered_v();
        let idx = ClusterIndex::build(&v, &norms(&v)).unwrap();
        assert_eq!(idx.n_lists(), default_n_lists(v.nrows()));
        assert_eq!(idx.assignments().len(), v.nrows());
        let mut seen = vec![false; v.nrows()];
        for l in 0..idx.n_lists() {
            let mut prev = None;
            for &doc in idx.list(l) {
                assert!(!seen[doc as usize], "doc {doc} in two lists");
                seen[doc as usize] = true;
                if let Some(p) = prev {
                    assert!(doc > p, "list {l} not ascending");
                }
                prev = Some(doc);
            }
        }
        assert!(seen.iter().all(|&s| s), "some doc unreachable");
    }

    #[test]
    fn build_is_deterministic() {
        let v = clustered_v();
        let a = ClusterIndex::build(&v, &norms(&v)).unwrap();
        let b = ClusterIndex::build(&v, &norms(&v)).unwrap();
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.centroids().data(), b.centroids().data());
    }

    #[test]
    fn probe_scores_rank_the_right_list_first() {
        let v = clustered_v();
        let idx = ClusterIndex::build(&v, &norms(&v)).unwrap();
        // A query along the first cluster direction must rank the list
        // containing doc 0 first.
        let scores = idx.centroid_scores(&[1.0, 0.0]).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap();
        assert!(idx.list(best).contains(&0));
    }

    #[test]
    fn append_rows_extends_lists_and_counts_moved_mass() {
        let v = clustered_v();
        let mut idx = ClusterIndex::build(&v, &norms(&v)).unwrap();
        let mut v2 = v.clone();
        let extra = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        v2 = v2.vcat(&extra).unwrap();
        idx.append_rows(&v2, &norms(&v2), v.nrows()).unwrap();
        assert_eq!(idx.assignments().len(), v2.nrows());
        assert_eq!(idx.moved(), 2);
        let total: usize = (0..idx.n_lists()).map(|l| idx.list(l).len()).sum();
        assert_eq!(total, v2.nrows());
    }

    #[test]
    fn reassign_all_counts_only_changed_rows() {
        let v = clustered_v();
        let mut idx = ClusterIndex::build(&v, &norms(&v)).unwrap();
        idx.reassign_all(&v, &norms(&v)).unwrap();
        assert_eq!(idx.moved(), 0, "identical V must not move anything");
        assert!(!idx.needs_recluster());
    }

    #[test]
    fn zero_and_tiny_corpora_are_handled() {
        let empty = DenseMatrix::zeros(0, 3);
        let idx = ClusterIndex::build(&empty, &[]).unwrap();
        assert_eq!(idx.assignments().len(), 0);
        assert_eq!(idx.n_lists(), 1);

        let one = DenseMatrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let idx = ClusterIndex::build(&one, &norms(&one)).unwrap();
        assert_eq!(idx.assignments(), &[0]);
        assert_eq!(idx.list(0), &[0]);
    }

    #[test]
    fn index_policy_serde_roundtrips() {
        for p in [IndexPolicy::Exact, IndexPolicy::Pruned { nprobe: 7 }] {
            let back = IndexPolicy::from_value(&p.to_value()).unwrap();
            assert_eq!(back, p);
        }
        assert!(IndexPolicy::from_value(&Value::Str("Wat".into())).is_err());
    }

    #[test]
    fn cluster_index_serde_roundtrips_and_rebuilds_lists() {
        let v = clustered_v();
        let idx = ClusterIndex::build(&v, &norms(&v)).unwrap();
        let back = ClusterIndex::from_value(&idx.to_value()).unwrap();
        assert_eq!(back.assignments(), idx.assignments());
        assert_eq!(back.centroids().data(), idx.centroids().data());
        for l in 0..idx.n_lists() {
            assert_eq!(back.list(l), idx.list(l));
        }
    }
}
