//! Table 7: analytic flop counts of the updating methods.
//!
//! The paper's table is parameterized by the Lanczos iteration count
//! `I`, the accepted-triplet count `trp`, the factor count `k`, the
//! matrix shape `m × n`, the update sizes `p` (documents), `q` (terms),
//! `j` (re-weighted terms), and the nonzero counts of the update
//! matrices. The models here follow the same structure — a Lanczos term
//! `I × cost(GᵀG x)`, a triplet term `trp × cost(G x)`, and for the
//! SVD-updating phases the `(2k² − k)(m + n)` dense-rotation term the
//! paper singles out ("The expense in SVD-updating can be attributed to
//! the O(2k²m + 2k²n) flops associated with the dense matrix
//! multiplications involving U_k and V_k") — calibrated to *this*
//! implementation: the Lanczos driver uses full reorthogonalization,
//! which adds `≈ 2 I² · dim` flops (two MGS passes over a growing
//! basis), and each SVD-updating phase solves its small dense problem
//! (`F`, `H`, or `Q`) with a dimension bounded by `k + p`, `k + q`, or
//! `k` rather than re-touching the sparse matrix.

use serde::{Deserialize, Serialize};

/// Problem-size parameters for the cost models.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostParams {
    /// Terms (rows) in the existing matrix.
    pub m: usize,
    /// Documents (columns) in the existing matrix.
    pub n: usize,
    /// Retained factors.
    pub k: usize,
    /// Lanczos iterations for a fresh decomposition (the `I` of §4.2).
    pub lanczos_iters: usize,
    /// Accepted triplets (`trp`; normally `k`).
    pub triplets: usize,
}

impl CostParams {
    /// Sensible defaults matching the Lanczos driver: `I = 2k + 30`
    /// (its basis bound) and `trp = k`.
    pub fn with_defaults(m: usize, n: usize, k: usize) -> CostParams {
        CostParams {
            m,
            n,
            k,
            lanczos_iters: 2 * k + 30,
            triplets: k,
        }
    }

    /// The dense-rotation term shared by all three SVD-updating phases:
    /// `(2k² − k)(m + n)`.
    fn rotation_flops(&self) -> u64 {
        let k = self.k as u64;
        (2 * k * k - k) * (self.m as u64 + self.n as u64)
    }

    /// Lanczos cost on a problem of dimension `dim` whose operator
    /// costs `opcost` flops per application: iteration products, full
    /// reorthogonalization, and triplet extraction.
    fn lanczos_cost(&self, dim: usize, opcost: u64) -> u64 {
        let i = (self.lanczos_iters as u64).min(dim as u64);
        // Two Gram products per step (A then Aᵀ) -> 2 * opcost; the
        // paper writes this as 4 nnz. Reorthogonalization: two MGS
        // passes over a basis of mean size I/2 -> ~2 I^2 dim.
        i * 2 * opcost + 2 * i * i * dim as u64 + self.triplets as u64 * opcost
    }

    /// Folding-in `p` documents: `2mkp` (Table 7, verbatim).
    pub fn fold_in_documents(&self, p: usize) -> u64 {
        2 * self.m as u64 * self.k as u64 * p as u64
    }

    /// Folding-in `q` terms: `2nkq` (Table 7, verbatim).
    pub fn fold_in_terms(&self, q: usize) -> u64 {
        2 * self.n as u64 * self.k as u64 * q as u64
    }

    /// SVD-updating `p` documents with `nnz_d` nonzeros in `D`:
    /// project (`2k·nnz(D)`), decompose `F` (k × (k+p) dense), rotate.
    pub fn svd_update_documents(&self, p: usize, nnz_d: usize) -> u64 {
        let k = self.k as u64;
        let project = 2 * k * nnz_d as u64;
        let f_nnz = k + k * p as u64;
        project + self.lanczos_cost(self.k + p, 2 * f_nnz) + self.rotation_flops()
    }

    /// SVD-updating `q` terms with `nnz_t` nonzeros in `T`.
    pub fn svd_update_terms(&self, q: usize, nnz_t: usize) -> u64 {
        let k = self.k as u64;
        let project = 2 * k * nnz_t as u64;
        let h_nnz = k + k * q as u64;
        project + self.lanczos_cost(self.k + q, 2 * h_nnz) + self.rotation_flops()
    }

    /// SVD-updating a weight correction touching `j` terms with `nnz_z`
    /// nonzero deltas: form `Q` (k × k dense), decompose, rotate.
    pub fn svd_update_weights(&self, j: usize, nnz_z: usize) -> u64 {
        let k = self.k as u64;
        let form_q = 2 * k * nnz_z as u64 + 2 * k * k * j as u64;
        form_q + self.lanczos_cost(self.k, 2 * k * k) + self.rotation_flops()
    }

    /// Recomputing the truncated SVD of the extended
    /// `(m + q) × (n + p)` matrix with `nnz_a` stored nonzeros.
    pub fn recompute(&self, extra_terms: usize, extra_docs: usize, nnz_a: usize) -> u64 {
        let dim = (self.m + extra_terms).min(self.n + extra_docs);
        self.lanczos_cost(dim, 2 * nnz_a as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams::with_defaults(10_000, 5_000, 100)
    }

    #[test]
    fn folding_in_formulas_match_table7() {
        let p = params();
        assert_eq!(p.fold_in_documents(3), 2 * 10_000 * 100 * 3);
        assert_eq!(p.fold_in_terms(7), 2 * 5_000 * 100 * 7);
    }

    #[test]
    fn folding_in_is_much_cheaper_than_updating_for_few_docs() {
        // The paper: "folding-in will still require considerably fewer
        // flops than SVD-updating when adding d new documents provided
        // d << n".
        let p = params();
        let nnz_d = 500;
        assert!(p.fold_in_documents(5) * 10 < p.svd_update_documents(5, nnz_d));
    }

    #[test]
    fn updating_beats_recompute_for_small_updates_on_large_matrices() {
        // §2.3: "Recomputing the SVD of a larger term-document matrix
        // requires more computation time".
        let big = CostParams::with_defaults(90_000, 70_000, 200);
        let nnz_a = 1_300_000; // TREC-like density
        let update = big.svd_update_documents(10, 2_000);
        let re = big.recompute(0, 10, nnz_a);
        assert!(
            update < re,
            "update {update} should beat recompute {re} for 10 docs"
        );
    }

    #[test]
    fn rotation_term_grows_quadratically_in_k() {
        let a = CostParams::with_defaults(1000, 1000, 10).svd_update_documents(1, 10);
        let b = CostParams::with_defaults(1000, 1000, 100).svd_update_documents(1, 10);
        assert!(b > a * 10, "k^2 scaling expected: {a} -> {b}");
    }

    #[test]
    fn costs_are_monotone_in_update_size() {
        let p = params();
        assert!(p.fold_in_documents(2) < p.fold_in_documents(3));
        assert!(p.svd_update_documents(2, 100) < p.svd_update_documents(3, 100));
        assert!(p.svd_update_terms(2, 100) < p.svd_update_terms(3, 100));
        assert!(p.svd_update_weights(1, 50) < p.svd_update_weights(2, 50));
        assert!(p.recompute(0, 0, 1000) < p.recompute(0, 0, 2000));
    }

    #[test]
    fn crossover_folding_stays_cheaper_up_to_large_batches() {
        // The fold-in/update gap narrows as p grows but folding stays
        // linear in p while updating adds the fixed rotation term.
        let p = params();
        let per_doc_nnz = 50;
        let small_gap = p.svd_update_documents(1, per_doc_nnz) as f64
            / p.fold_in_documents(1) as f64;
        let big_gap = p.svd_update_documents(500, 500 * per_doc_nnz) as f64
            / p.fold_in_documents(500) as f64;
        assert!(big_gap < small_gap, "relative gap should narrow: {small_gap} -> {big_gap}");
    }
}
