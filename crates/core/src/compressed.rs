//! Reduced-precision candidate generation — the "precision ladder".
//!
//! At collection scale the scoring sweep is memory-bandwidth-bound:
//! every query streams the full f64 `V_k` through a GEMV even though
//! only the top few documents need exact scores. This module keeps a
//! compressed replica of `V_k` (f32, or scaled-i8 with per-row scale
//! factors), scores *all* documents through it, over-fetches the top
//! `c = max(4z, 64)` candidates, and lets the caller re-rank just those
//! candidates exactly in f64. Related matrix-model work (Antonellis &
//! Gallopoulos, cs/0602076) shows retrieval in the reduced space is
//! robust to reduced-precision document representations — exactly the
//! property a candidate pass needs.
//!
//! Exactness contract: for [`Precision::F32`], a conservative error
//! bound on the approximate cosines plus a margin check against the
//! candidate cutoff guarantees the re-ranked top-`z` is *bit-identical*
//! to the exact f64 scan; when the margin cannot be certified (heavy
//! ties near the cutoff, or non-finite sweep output) the caller falls
//! back to the exact scan, so correctness never depends on the bound
//! being tight. [`Precision::I8`] is explicitly approximate: the
//! candidate *set* may differ from exact near the cutoff (validated by
//! a recall@10 ≥ 0.99 statistical test), but returned scores are still
//! exact f64 cosines because the survivors are re-ranked.
//!
//! Coherence: the store is derived data, rebuilt by
//! `LsiModel::refresh_doc_norms` — the single hook every `V`-mutating
//! path (build, fold-in, SVD-update, recompute, load) already calls —
//! and is never serialized; only the [`Precision`] mode persists.

use serde::{Deserialize, Serialize};

use lsi_linalg::{lowp, DenseMatrix};

/// Scoring precision of the candidate-generation sweep.
///
/// `Exact` scores every document in f64 (the classic path). `F32` and
/// `I8` stream a compressed replica of `V_k` for candidate generation
/// and re-rank the candidates exactly in f64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Full f64 scan; no compressed store is kept.
    Exact,
    /// f32 replica (half the bytes); certified-exact top-`z` via the
    /// margin check, with automatic fallback to the exact scan.
    F32,
    /// Scaled-i8 replica (an eighth of the bytes) with per-row scale
    /// factors; approximate candidate set, exact re-ranked scores.
    I8,
}

impl Precision {
    /// Canonical CLI spelling (`f64`, `f32`, `i8`).
    pub fn name(&self) -> &'static str {
        match self {
            Precision::Exact => "f64",
            Precision::F32 => "f32",
            Precision::I8 => "i8",
        }
    }

    /// Parse a CLI spelling; `None` for anything unknown.
    pub fn parse(name: &str) -> Option<Precision> {
        match name {
            "f64" => Some(Precision::Exact),
            "f32" => Some(Precision::F32),
            "i8" => Some(Precision::I8),
            _ => None,
        }
    }
}

/// Candidate over-fetch multiplier: the sweep keeps `4·z` candidates
/// for a top-`z` request. Calibrated on the `compressed_scoring.rs`
/// property harness (random Zipf corpora with duplicate-document ties):
/// at 4x the f32 margin check certifies every sampled query, and the
/// i8 ladder holds recall@10 ≥ 0.99; 2x left the margin uncertified on
/// tie-heavy corpora, forcing exact-scan fallbacks.
pub(crate) const OVER_FETCH_FACTOR: usize = 4;

/// Candidate floor: never fetch fewer than this many candidates, so
/// small `z` requests still amortize the re-rank against realistic tie
/// clusters. Same calibration harness as [`OVER_FETCH_FACTOR`]; 64
/// also keeps the re-rank cost negligible (64 rows of `V` per query)
/// in the `perf_kernels --compressed` measurement.
pub(crate) const OVER_FETCH_FLOOR: usize = 64;

/// Safety multiplier on the analytic f32 cosine error bound. The
/// rounding analysis below gives ≈ (k+8)·2⁻²⁴; the shipped bound uses
/// 2⁻²³ and this factor on top (a 16x cushion overall). Verified
/// empirically by the `compressed_scoring.rs` harness: the observed
/// |approx − exact| never exceeds the *unscaled* analytic bound, while
/// the cushioned bound still certifies the margin on every sampled
/// query at the 4x over-fetch.
pub(crate) const F32_ERR_SAFETY: f64 = 8.0;

/// Conservative absolute error bound between the f32 sweep's cosine
/// and the exact f64 cosine, for `k`-factor rows.
///
/// Rounding budget (unit roundoff u = 2⁻²⁴ for f32): casting each
/// operand entry contributes ≤ 2u, the k-term dot accumulation ≤ k·u
/// relative to Σ|v_j q_j| ≤ ‖v‖‖q‖ (Cauchy–Schwarz), and the two
/// reciprocal-norm multiplies ≤ 4u — in total ≤ (k+8)·u on a quantity
/// of magnitude ≤ 1. [`F32_ERR_SAFETY`] and the doubled epsilon make
/// the shipped bound 16x that analytic value.
pub(crate) fn f32_cosine_error_bound(k: usize) -> f64 {
    (k as f64 + 8.0) * F32_ERR_SAFETY * f32::EPSILON as f64
}

/// The compressed replica of `V_k`, stored column-major like `V` so
/// the sweep is unit-stride. Derived data: never serialized, rebuilt
/// whenever `V` or the precision mode changes.
#[derive(Debug, Clone)]
pub(crate) enum CompressedStore {
    /// f32 entries plus per-row reciprocal norms (`0` for zero rows,
    /// reproducing the exact path's zero-norm guard).
    F32 {
        /// Column-major `n x k` f32 copy of `V_k`.
        data: Vec<f32>,
        /// `1 / ‖v_i‖` per row (0 when the norm is 0).
        recip_norms: Vec<f32>,
    },
    /// i8 entries quantized per row by max-abs, plus the folded
    /// rescale factor `scale_i / (127 · ‖v_i‖)` per row.
    I8 {
        /// Column-major `n x k` quantized copy of `V_k`.
        data: Vec<i8>,
        /// `scale_i / (127 · ‖v_i‖)` per row (0 for zero rows).
        factors: Vec<f32>,
    },
}

impl CompressedStore {
    /// Build the store for `precision` from `v` and its precomputed row
    /// norms; `None` for [`Precision::Exact`].
    pub(crate) fn build(
        precision: Precision,
        v: &DenseMatrix,
        doc_norms: &[f64],
    ) -> Option<CompressedStore> {
        let (n, k) = v.shape();
        match precision {
            Precision::Exact => None,
            Precision::F32 => {
                let data: Vec<f32> = v.data().iter().map(|&x| x as f32).collect();
                let recip_norms = doc_norms
                    .iter()
                    .map(|&d| if d > 0.0 { (1.0 / d) as f32 } else { 0.0 })
                    .collect();
                Some(CompressedStore::F32 { data, recip_norms })
            }
            Precision::I8 => {
                let mut data = vec![0i8; n * k];
                let mut factors = vec![0.0f32; n];
                for i in 0..n {
                    let row = v.row_view(i);
                    let mut scale = 0.0f64;
                    for j in 0..k {
                        scale = scale.max(row.get(j).abs());
                    }
                    let dnorm = doc_norms[i];
                    if scale > 0.0 && dnorm > 0.0 {
                        factors[i] = (scale / (127.0 * dnorm)) as f32;
                        for j in 0..k {
                            data[j * n + i] = (row.get(j) / scale * 127.0).round() as i8;
                        }
                    }
                }
                Some(CompressedStore::I8 { data, factors })
            }
        }
    }

    /// Bytes the candidate sweep streams per query (matrix entries plus
    /// the per-row scale vector).
    pub(crate) fn resident_bytes(&self) -> usize {
        match self {
            CompressedStore::F32 { data, recip_norms } => {
                std::mem::size_of_val(data.as_slice())
                    + std::mem::size_of_val(recip_norms.as_slice())
            }
            CompressedStore::I8 { data, factors } => {
                std::mem::size_of_val(data.as_slice()) + std::mem::size_of_val(factors.as_slice())
            }
        }
    }

    /// Precision this store serves.
    pub(crate) fn precision(&self) -> Precision {
        match self {
            CompressedStore::F32 { .. } => Precision::F32,
            CompressedStore::I8 { .. } => Precision::I8,
        }
    }

    /// Margin the exact re-rank must clear for the top-`z` to be
    /// certified identical to the exact scan: the f32 cosine error
    /// bound, or `None` for the explicitly-approximate i8 ladder.
    pub(crate) fn rerank_margin(&self, k: usize) -> Option<f64> {
        match self {
            CompressedStore::F32 { .. } => Some(f32_cosine_error_bound(k)),
            CompressedStore::I8 { .. } => None,
        }
    }

    /// Approximate cosine scores of every document against one
    /// projected query (`qnorm` is the query's f64 norm). Deterministic
    /// and bit-identical across thread counts, like the f64 sweep.
    pub(crate) fn approx_scores(
        &self,
        qhat: &[f64],
        qnorm: f64,
    ) -> lsi_linalg::Result<Vec<f32>> {
        let q32: Vec<f32> = qhat.iter().map(|&x| x as f32).collect();
        let rq = if qnorm > 0.0 { (1.0 / qnorm) as f32 } else { 0.0 };
        let k = qhat.len();
        match self {
            CompressedStore::F32 { data, recip_norms } => {
                let n = recip_norms.len();
                let mut y = lowp::matvec_f32(data, n, k, &q32)?;
                for (s, &rn) in y.iter_mut().zip(recip_norms.iter()) {
                    *s *= rn * rq;
                }
                Ok(y)
            }
            CompressedStore::I8 { data, factors } => {
                let n = factors.len();
                let mut y = lowp::matvec_i8(data, n, k, &q32)?;
                for (s, &f) in y.iter_mut().zip(factors.iter()) {
                    *s *= f * rq;
                }
                Ok(y)
            }
        }
    }

    /// Approximate cosine scores for a *subset* of documents — the
    /// pruned-index variant of [`CompressedStore::approx_scores`].
    /// `rows[i]` is the document id scored into slot `i` of the result,
    /// so the output aligns with the caller's survivor list. Each score
    /// is bit-identical to the corresponding entry of the full sweep:
    /// the row-subset kernels accumulate per row in the same column
    /// order as the full GEMV.
    pub(crate) fn approx_scores_rows(
        &self,
        qhat: &[f64],
        qnorm: f64,
        rows: &[u32],
    ) -> lsi_linalg::Result<Vec<f32>> {
        let q32: Vec<f32> = qhat.iter().map(|&x| x as f32).collect();
        let rq = if qnorm > 0.0 { (1.0 / qnorm) as f32 } else { 0.0 };
        let k = qhat.len();
        match self {
            CompressedStore::F32 { data, recip_norms } => {
                let n = recip_norms.len();
                let mut y = lowp::matvec_f32_rows(data, n, k, &q32, rows)?;
                for (s, &r) in y.iter_mut().zip(rows.iter()) {
                    *s *= recip_norms[r as usize] * rq;
                }
                Ok(y)
            }
            CompressedStore::I8 { data, factors } => {
                let n = factors.len();
                let mut y = lowp::matvec_i8_rows(data, n, k, &q32, rows)?;
                for (s, &r) in y.iter_mut().zip(rows.iter()) {
                    *s *= factors[r as usize] * rq;
                }
                Ok(y)
            }
        }
    }

    /// Approximate per-facet cosine scores, column-major `n x nf` —
    /// the multi-facet variant of [`CompressedStore::approx_scores`].
    /// The f32 ladder routes through the paired-rhs GEMM so `V` is
    /// streamed once per facet pair.
    pub(crate) fn approx_scores_multi(
        &self,
        facets: &[&[f64]],
        qnorms: &[f64],
    ) -> lsi_linalg::Result<Vec<f32>> {
        let nf = facets.len();
        let k = facets.first().map_or(0, |f| f.len());
        match self {
            CompressedStore::F32 { data, recip_norms } => {
                let n = recip_norms.len();
                let mut b = Vec::with_capacity(k * nf);
                for f in facets {
                    b.extend(f.iter().map(|&x| x as f32));
                }
                let mut c = lowp::gemm_f32(data, n, k, &b, nf)?;
                for (f, col) in c.chunks_mut(n.max(1)).take(nf).enumerate() {
                    let rq = if qnorms[f] > 0.0 { (1.0 / qnorms[f]) as f32 } else { 0.0 };
                    for (s, &rn) in col.iter_mut().zip(recip_norms.iter()) {
                        *s *= rn * rq;
                    }
                }
                Ok(c)
            }
            CompressedStore::I8 { factors, .. } => {
                let n = factors.len();
                let mut c = Vec::with_capacity(n * nf);
                for (f, facet) in facets.iter().enumerate() {
                    c.extend(self.approx_scores(facet, qnorms[f])?);
                }
                Ok(c)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_v(n: usize, k: usize) -> (DenseMatrix, Vec<f64>) {
        let mut v = DenseMatrix::zeros(n, k);
        let mut state = 0x9E3779B97F4A7C15u64;
        for j in 0..k {
            for i in 0..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                v.set(i, j, (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
            }
        }
        let norms = (0..n).map(|i| v.row_view(i).nrm2()).collect();
        (v, norms)
    }

    #[test]
    fn precision_names_roundtrip() {
        for p in [Precision::Exact, Precision::F32, Precision::I8] {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse("f16"), None);
    }

    #[test]
    fn exact_precision_builds_no_store() {
        let (v, norms) = sample_v(4, 3);
        assert!(CompressedStore::build(Precision::Exact, &v, &norms).is_none());
    }

    #[test]
    fn f32_store_halves_resident_bytes() {
        let (v, norms) = sample_v(100, 8);
        let s = CompressedStore::build(Precision::F32, &v, &norms).unwrap();
        assert_eq!(s.precision(), Precision::F32);
        let exact_bytes = v.data().len() * 8;
        assert_eq!(s.resident_bytes(), exact_bytes / 2 + 100 * 4);
    }

    #[test]
    fn i8_store_is_an_eighth_of_exact() {
        let (v, norms) = sample_v(64, 16);
        let s = CompressedStore::build(Precision::I8, &v, &norms).unwrap();
        assert_eq!(s.precision(), Precision::I8);
        assert_eq!(s.resident_bytes(), 64 * 16 + 64 * 4);
        assert!(s.rerank_margin(16).is_none());
    }

    #[test]
    fn f32_approx_scores_stay_inside_the_error_bound() {
        let (v, norms) = sample_v(300, 24);
        let s = CompressedStore::build(Precision::F32, &v, &norms).unwrap();
        let qhat: Vec<f64> = (0..24).map(|j| ((j * 7 % 11) as f64 - 5.0) / 7.0).collect();
        let qnorm = lsi_linalg::vecops::nrm2(&qhat);
        let approx = s.approx_scores(&qhat, qnorm).unwrap();
        let bound = f32_cosine_error_bound(24);
        for i in 0..300 {
            let exact = v.row_view(i).cosine_slice(&qhat);
            assert!(
                (approx[i] as f64 - exact).abs() < bound,
                "row {i}: approx {} exact {exact} bound {bound}",
                approx[i]
            );
        }
    }

    #[test]
    fn zero_rows_and_zero_queries_score_zero() {
        let mut v = DenseMatrix::zeros(3, 4);
        v.set(1, 0, 2.0);
        let norms: Vec<f64> = (0..3).map(|i| v.row_view(i).nrm2()).collect();
        for p in [Precision::F32, Precision::I8] {
            let s = CompressedStore::build(p, &v, &norms).unwrap();
            // Zero query: everything scores 0 (qnorm guard).
            let z = s.approx_scores(&[0.0; 4], 0.0).unwrap();
            assert!(z.iter().all(|&x| x == 0.0));
            // Nonzero query: zero rows score 0 (dnorm guard).
            let y = s.approx_scores(&[1.0, 0.0, 0.0, 0.0], 1.0).unwrap();
            assert_eq!(y[0], 0.0);
            assert_eq!(y[2], 0.0);
            assert!((y[1] - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn row_subset_scores_are_bit_identical_to_the_full_sweep() {
        let (v, norms) = sample_v(200, 12);
        let qhat: Vec<f64> = (0..12).map(|j| ((j * 5 % 13) as f64 - 6.0) / 5.0).collect();
        let qnorm = lsi_linalg::vecops::nrm2(&qhat);
        let rows: Vec<u32> = vec![190, 3, 3, 57, 0, 121];
        for p in [Precision::F32, Precision::I8] {
            let s = CompressedStore::build(p, &v, &norms).unwrap();
            let full = s.approx_scores(&qhat, qnorm).unwrap();
            let subset = s.approx_scores_rows(&qhat, qnorm, &rows).unwrap();
            assert_eq!(subset.len(), rows.len());
            for (slot, &r) in rows.iter().enumerate() {
                assert_eq!(
                    subset[slot].to_bits(),
                    full[r as usize].to_bits(),
                    "precision {p:?} row {r}"
                );
            }
            assert!(s.approx_scores_rows(&qhat, qnorm, &[]).unwrap().is_empty());
        }
    }

    #[test]
    fn multi_facet_scores_match_single_facet_sweeps_closely() {
        let (v, norms) = sample_v(120, 16);
        let q1: Vec<f64> = (0..16).map(|j| (j as f64 * 0.3).sin()).collect();
        let q2: Vec<f64> = (0..16).map(|j| (j as f64 * 0.7).cos()).collect();
        let n1 = lsi_linalg::vecops::nrm2(&q1);
        let n2 = lsi_linalg::vecops::nrm2(&q2);
        for p in [Precision::F32, Precision::I8] {
            let s = CompressedStore::build(p, &v, &norms).unwrap();
            let multi = s
                .approx_scores_multi(&[&q1, &q2], &[n1, n2])
                .unwrap();
            let s1 = s.approx_scores(&q1, n1).unwrap();
            let s2 = s.approx_scores(&q2, n2).unwrap();
            for i in 0..120 {
                assert!((multi[i] - s1[i]).abs() < 1e-5);
                assert!((multi[120 + i] - s2[i]).abs() < 1e-5);
            }
        }
    }
}
