//! The LSI model: vocabulary + weighting + truncated SVD factors.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use lsi_linalg::svd::Svd;
use lsi_linalg::{vecops, DenseMatrix};
use lsi_sparse::ops::DualFormat;
use lsi_sparse::CscMatrix;
use lsi_svd::{lanczos_svd, LanczosOptions, LanczosReport};
use lsi_text::{Corpus, ParsingRules, TermWeighting, Vocabulary};

use crate::{Error, Result};

/// Construction options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LsiOptions {
    /// Number of retained factors `k`. The paper: "Terms and documents
    /// represented by 200-300 of the largest singular vectors" at TREC
    /// scale; 70–100 is the sweet spot it reports for MED-sized
    /// collections (§5.2).
    pub k: usize,
    /// Parsing rules for vocabulary construction.
    pub rules: ParsingRules,
    /// Term weighting (Eq. 5).
    pub weighting: TermWeighting,
    /// Lanczos seed (runs are deterministic in this).
    pub svd_seed: u64,
}

impl Default for LsiOptions {
    fn default() -> Self {
        LsiOptions {
            k: 100,
            rules: ParsingRules::default(),
            weighting: TermWeighting::log_entropy(),
            svd_seed: 0x5EED,
        }
    }
}

/// Where a document vector came from — §4.3's orthogonality analysis
/// needs to distinguish SVD-derived rows of `V_k` from folded-in ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocOrigin {
    /// Column of the matrix the SVD (or SVD-update) was computed from.
    Svd,
    /// Appended by folding-in (Eq. 7).
    FoldedIn,
}

/// A complete LSI retrieval model ("LSI database" in the paper's
/// terminology: the singular values and vectors plus the bookkeeping to
/// use them).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LsiModel {
    /// The vocabulary (row semantics).
    pub(crate) vocab: Vocabulary,
    /// Weighting scheme used at build time.
    pub(crate) weighting: TermWeighting,
    /// Per-term global weights captured at build time (queries and
    /// folded-in documents must be weighted consistently).
    pub(crate) global_weights: Vec<f64>,
    /// Term matrix `U_k` (m × k).
    pub(crate) u: DenseMatrix,
    /// Singular values `Σ_k`.
    pub(crate) s: Vec<f64>,
    /// Document matrix `V_k` ((n + folded) × k); one row per document.
    pub(crate) v: DenseMatrix,
    /// Euclidean norm of each row of `v`, precomputed so that query
    /// scoring is a single `V q̂` product plus a scale (the per-query
    /// denominator `‖d_j‖` never changes between updates).
    pub(crate) doc_norms: Vec<f64>,
    /// Document ids, parallel to rows of `v`. Shared (`Arc`) because
    /// every ranked result references all of them.
    pub(crate) doc_ids: Vec<Arc<str>>,
    /// Origin of each document row.
    pub(crate) doc_origins: Vec<DocOrigin>,
    /// Term display forms that were folded in (rows appended to `u`).
    pub(crate) folded_terms: Vec<String>,
    /// Origin of each term row (parallel to rows of `u`).
    pub(crate) term_origins: Vec<DocOrigin>,
    /// The weighted term-document matrix the current factors were
    /// computed from (kept for recomputation and weight corrections).
    pub(crate) weighted: CscMatrix,
}

impl LsiModel {
    /// Build a model from a corpus: parse, weight, truncated SVD.
    ///
    /// Returns the model and the Lanczos execution report. If the
    /// matrix's numerical rank is below `k`, the model retains that
    /// smaller rank (the paper's `k ≤ r` regime).
    pub fn build(corpus: &Corpus, options: &LsiOptions) -> Result<(LsiModel, LanczosReport)> {
        let _build_span = lsi_obs::span("build");
        let (vocab, counts) = {
            let _parse_span = lsi_obs::span("parse");
            let vocab = Vocabulary::build(corpus, &options.rules);
            let counts = vocab.count_matrix(corpus);
            // Parsing does no arithmetic; account one unit of work per
            // (term, document) cell inserted so throughput is derivable.
            lsi_obs::add_flops(counts.nnz() as f64);
            lsi_obs::count("core.parse.docs.count", corpus.docs.len() as u64);
            (vocab, counts)
        };
        let doc_ids = corpus.docs.iter().map(|d| d.id.clone()).collect();
        Self::from_counts(vocab, counts, doc_ids, options)
    }

    /// Build from a pre-computed count matrix (rows must match `vocab`).
    pub fn from_counts(
        vocab: Vocabulary,
        counts: CscMatrix,
        doc_ids: Vec<String>,
        options: &LsiOptions,
    ) -> Result<(LsiModel, LanczosReport)> {
        if counts.nrows() != vocab.len() {
            return Err(Error::Inconsistent {
                context: format!(
                    "count matrix has {} rows but vocabulary has {} terms",
                    counts.nrows(),
                    vocab.len()
                ),
            });
        }
        if counts.ncols() != doc_ids.len() {
            return Err(Error::Inconsistent {
                context: format!(
                    "count matrix has {} columns but {} document ids supplied",
                    counts.ncols(),
                    doc_ids.len()
                ),
            });
        }
        let weighted = {
            let _matrix_span = lsi_obs::span("matrix");
            lsi_obs::count("core.matrix.nnz.count", counts.nnz() as u64);
            options.weighting.apply(&counts)
        };
        let k = options.k.min(counts.nrows().min(counts.ncols()));
        let (mut svd, report) = {
            let _svd_span = lsi_obs::span("svd");
            let operator = DualFormat::from_csc(weighted.matrix.clone());
            let lanczos_opts = LanczosOptions {
                seed: options.svd_seed,
                ..Default::default()
            };
            lanczos_svd(&operator, k, &lanczos_opts)?
        };
        let _assemble_span = lsi_obs::span("assemble");
        // Canonical signs (largest-magnitude U entry positive per
        // column) so coordinates are comparable across runs and with
        // published figures.
        svd.sign_normalize();
        let n_docs = counts.ncols();
        let n_terms = counts.nrows();
        // Sign pass over both factors plus the document-norm cache.
        lsi_obs::add_flops(((n_terms + 3 * n_docs) * k) as f64);
        let mut model = LsiModel {
            vocab,
            weighting: options.weighting,
            global_weights: weighted.global,
            u: svd.u,
            s: svd.s,
            v: svd.v,
            doc_norms: Vec::new(),
            doc_ids: doc_ids.into_iter().map(Arc::from).collect(),
            doc_origins: vec![DocOrigin::Svd; n_docs],
            folded_terms: Vec::new(),
            term_origins: vec![DocOrigin::Svd; n_terms],
            weighted: weighted.matrix,
        };
        model.refresh_doc_norms();
        Ok((model, report))
    }

    /// Recompute the cached row norms of `V_k`. Must be called by every
    /// operation that replaces or appends to `v`.
    pub(crate) fn refresh_doc_norms(&mut self) {
        self.doc_norms = (0..self.v.nrows())
            .map(|j| vecops::nrm2(&self.v.row(j)))
            .collect();
    }

    /// Precomputed Euclidean norms of the document vectors (rows of
    /// `V_k`), parallel to [`LsiModel::doc_ids`].
    pub fn doc_norms(&self) -> &[f64] {
        &self.doc_norms
    }

    /// Number of factors retained (`k`; may be below the requested `k`
    /// for rank-deficient collections).
    pub fn k(&self) -> usize {
        self.s.len()
    }

    /// Number of indexed terms (rows of `U_k`, including folded-in
    /// terms).
    pub fn n_terms(&self) -> usize {
        self.u.nrows()
    }

    /// Number of documents (rows of `V_k`, including folded-in docs).
    pub fn n_docs(&self) -> usize {
        self.v.nrows()
    }

    /// The singular values.
    pub fn singular_values(&self) -> &[f64] {
        &self.s
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The weighting scheme.
    pub fn weighting(&self) -> &TermWeighting {
        &self.weighting
    }

    /// Stored global term weights.
    pub fn global_weights(&self) -> &[f64] {
        &self.global_weights
    }

    /// Document ids in row order of `V_k`.
    pub fn doc_ids(&self) -> &[Arc<str>] {
        &self.doc_ids
    }

    /// Origin (SVD vs folded-in) of each document.
    pub fn doc_origins(&self) -> &[DocOrigin] {
        &self.doc_origins
    }

    /// The weighted term-document matrix the factors were computed from.
    pub fn weighted_matrix(&self) -> &CscMatrix {
        &self.weighted
    }

    /// Term matrix `U_k`.
    pub fn term_matrix(&self) -> &DenseMatrix {
        &self.u
    }

    /// Document matrix `V_k`.
    pub fn doc_matrix(&self) -> &DenseMatrix {
        &self.v
    }

    /// `k`-dimensional coordinates of term `i` (row `i` of `U_k`),
    /// unscaled.
    pub fn term_vector(&self, i: usize) -> Vec<f64> {
        self.u.row(i)
    }

    /// `k`-dimensional coordinates of document `j` (row `j` of `V_k`),
    /// unscaled.
    pub fn doc_vector(&self, j: usize) -> Vec<f64> {
        self.v.row(j)
    }

    /// Term coordinates scaled by the singular values — the plotting
    /// convention of the paper's Figures 4–9 ("the first column of U2
    /// multiplied by the first singular value ... for the
    /// x-coordinates").
    pub fn term_coords_scaled(&self, i: usize) -> Vec<f64> {
        let mut r = self.u.row(i);
        for (x, s) in r.iter_mut().zip(self.s.iter()) {
            *x *= s;
        }
        r
    }

    /// Document coordinates scaled by the singular values (plotting
    /// convention).
    pub fn doc_coords_scaled(&self, j: usize) -> Vec<f64> {
        let mut r = self.v.row(j);
        for (x, s) in r.iter_mut().zip(self.s.iter()) {
            *x *= s;
        }
        r
    }

    /// Cosine similarity between two documents in the factor space.
    pub fn doc_doc_similarity(&self, a: usize, b: usize) -> f64 {
        vecops::cosine(&self.v.row(a), &self.v.row(b))
    }

    /// Cosine similarity between two terms in the factor space —
    /// the quantity behind the §5.4 synonym test.
    pub fn term_term_similarity(&self, a: usize, b: usize) -> f64 {
        vecops::cosine(&self.u.row(a), &self.u.row(b))
    }

    /// Look up a document's row by id.
    pub fn doc_index(&self, id: &str) -> Option<usize> {
        self.doc_ids.iter().position(|d| d.as_ref() == id)
    }

    /// Look up a term's row, including folded-in terms.
    pub fn term_index(&self, term: &str) -> Option<usize> {
        if let Some(i) = self.vocab.index_of(term) {
            return Some(i);
        }
        let lowered = term.to_lowercase();
        self.folded_terms
            .iter()
            .position(|t| *t == lowered)
            .map(|p| self.vocab.len() + p)
    }

    /// Reconstruct the rank-k approximation `A_k = U_k Σ_k V_kᵀ`
    /// restricted to the SVD-derived rows (folded-in rows excluded).
    pub fn reconstruct_ak(&self) -> Result<DenseMatrix> {
        let svd = Svd {
            u: self.u.clone(),
            s: self.s.clone(),
            v: self.v.clone(),
        };
        Ok(svd.reconstruct()?)
    }

    /// Serialize the LSI database to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::Persist(e.to_string()))
    }

    /// Restore an LSI database from JSON.
    pub fn from_json(json: &str) -> Result<LsiModel> {
        let mut model: LsiModel =
            serde_json::from_str(json).map_err(|e| Error::Persist(e.to_string()))?;
        // Norms are derived data; recompute rather than trusting the
        // serialized copy (hand-edited or truncated files stay usable).
        model.refresh_doc_norms();
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_text::Document;

    fn small_corpus() -> Corpus {
        Corpus::from_pairs([
            ("d1", "apple banana apple cherry"),
            ("d2", "banana cherry banana date"),
            ("d3", "apple cherry date fig"),
            ("d4", "grape fig date grape"),
            ("d5", "fig grape apple banana"),
        ])
    }

    fn options(k: usize) -> LsiOptions {
        LsiOptions {
            k,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 1,
        }
    }

    #[test]
    fn build_produces_consistent_shapes() {
        let (m, report) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        assert_eq!(m.k(), 3);
        assert_eq!(m.n_docs(), 5);
        assert!(m.n_terms() >= 4);
        assert_eq!(m.term_matrix().shape(), (m.n_terms(), 3));
        assert_eq!(m.doc_matrix().shape(), (5, 3));
        assert!(report.steps >= 3);
    }

    #[test]
    fn k_is_capped_by_rank() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(50)).unwrap();
        assert!(m.k() <= 5);
    }

    #[test]
    fn factors_reconstruct_weighted_matrix_at_full_rank() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(5)).unwrap();
        let ak = m.reconstruct_ak().unwrap();
        let dense = m.weighted_matrix().to_dense();
        assert!(
            ak.fro_distance(&dense).unwrap() < 1e-8 * dense.fro_norm().max(1.0),
            "full-rank reconstruction should be exact"
        );
    }

    #[test]
    fn truncation_error_decreases_with_k() {
        let corpus = small_corpus();
        let mut errs = Vec::new();
        for k in 1..=4 {
            let (m, _) = LsiModel::build(&corpus, &options(k)).unwrap();
            let ak = m.reconstruct_ak().unwrap();
            let dense = m.weighted_matrix().to_dense();
            errs.push(ak.fro_distance(&dense).unwrap());
        }
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-10, "errors should shrink: {errs:?}");
        }
    }

    #[test]
    fn doc_and_term_lookup() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(2)).unwrap();
        assert_eq!(m.doc_index("d3"), Some(2));
        assert_eq!(m.doc_index("nope"), None);
        assert!(m.term_index("apple").is_some());
        assert!(m.term_index("unicorn").is_none());
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        for a in 0..m.n_docs() {
            for b in 0..m.n_docs() {
                let s1 = m.doc_doc_similarity(a, b);
                let s2 = m.doc_doc_similarity(b, a);
                assert!((s1 - s2).abs() < 1e-12);
                assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&s1));
            }
            assert!((m.doc_doc_similarity(a, a) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaled_coords_multiply_by_sigma() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(2)).unwrap();
        let raw = m.doc_vector(0);
        let scaled = m.doc_coords_scaled(0);
        for j in 0..m.k() {
            assert!((scaled[j] - raw[j] * m.singular_values()[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn json_roundtrip_preserves_model() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let json = m.to_json().unwrap();
        let back = LsiModel::from_json(&json).unwrap();
        assert_eq!(back.k(), m.k());
        assert_eq!(back.doc_ids(), m.doc_ids());
        assert_eq!(back.singular_values(), m.singular_values());
        assert!(back
            .term_matrix()
            .fro_distance(m.term_matrix())
            .unwrap()
            .abs()
            < 1e-15);
    }

    #[test]
    fn from_counts_validates_dimensions() {
        let corpus = small_corpus();
        let vocab = Vocabulary::build(&corpus, &ParsingRules::default());
        let counts = vocab.count_matrix(&corpus);
        let bad_ids = vec!["only-one".to_string()];
        assert!(LsiModel::from_counts(vocab, counts, bad_ids, &options(2)).is_err());
    }

    #[test]
    fn deterministic_build() {
        let (m1, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let (m2, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        assert_eq!(m1.singular_values(), m2.singular_values());
    }

    #[test]
    fn empty_like_corpus_is_rejected_gracefully() {
        // A corpus whose vocabulary is empty (all unique words, min_df 2).
        let corpus = Corpus {
            docs: vec![
                Document::new("a", "aardvark"),
                Document::new("b", "zebra"),
            ],
        };
        let (m, _) = LsiModel::build(&corpus, &options(2)).unwrap();
        assert_eq!(m.k(), 0);
        assert_eq!(m.n_terms(), 0);
    }
}
