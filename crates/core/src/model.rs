//! The LSI model: vocabulary + weighting + truncated SVD factors.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use lsi_linalg::svd::Svd;
use lsi_linalg::{DenseMatrix, RowView};
use lsi_sparse::ops::DualFormat;
use lsi_sparse::CscMatrix;
use lsi_svd::{robust_svd, LanczosOptions, LanczosReport, RobustOptions};
use lsi_text::{Corpus, ParsingRules, TermWeighting, Vocabulary};

use crate::compressed::{CompressedStore, Precision};
use crate::index::{splitmix64, ClusterIndex, IndexPolicy};
use crate::{Error, Result};

/// Construction options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LsiOptions {
    /// Number of retained factors `k`. The paper: "Terms and documents
    /// represented by 200-300 of the largest singular vectors" at TREC
    /// scale; 70–100 is the sweet spot it reports for MED-sized
    /// collections (§5.2).
    pub k: usize,
    /// Parsing rules for vocabulary construction.
    pub rules: ParsingRules,
    /// Term weighting (Eq. 5).
    pub weighting: TermWeighting,
    /// Lanczos seed (runs are deterministic in this).
    pub svd_seed: u64,
}

impl Default for LsiOptions {
    fn default() -> Self {
        LsiOptions {
            k: 100,
            rules: ParsingRules::default(),
            weighting: TermWeighting::log_entropy(),
            svd_seed: 0x5EED,
        }
    }
}

/// Where a document vector came from — §4.3's orthogonality analysis
/// needs to distinguish SVD-derived rows of `V_k` from folded-in ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocOrigin {
    /// Column of the matrix the SVD (or SVD-update) was computed from.
    Svd,
    /// Appended by folding-in (Eq. 7).
    FoldedIn,
}

/// A complete LSI retrieval model ("LSI database" in the paper's
/// terminology: the singular values and vectors plus the bookkeeping to
/// use them).
///
/// Serialization is hand-written (see the `Serialize`/`Deserialize`
/// impls below): the `precision` field is optional on read so legacy
/// files load as [`Precision::Exact`], and the derived `compressed`
/// store is never serialized — it is rebuilt from `V` on load.
#[derive(Debug, Clone)]
pub struct LsiModel {
    /// The vocabulary (row semantics).
    pub(crate) vocab: Vocabulary,
    /// Weighting scheme used at build time.
    pub(crate) weighting: TermWeighting,
    /// Per-term global weights captured at build time (queries and
    /// folded-in documents must be weighted consistently).
    pub(crate) global_weights: Vec<f64>,
    /// Term matrix `U_k` (m × k).
    pub(crate) u: DenseMatrix,
    /// Singular values `Σ_k`.
    pub(crate) s: Vec<f64>,
    /// Document matrix `V_k` ((n + folded) × k); one row per document.
    pub(crate) v: DenseMatrix,
    /// Euclidean norm of each row of `v`, precomputed so that query
    /// scoring is a single `V q̂` product plus a scale (the per-query
    /// denominator `‖d_j‖` never changes between updates).
    pub(crate) doc_norms: Vec<f64>,
    /// Document ids, parallel to rows of `v`. Shared (`Arc`) because
    /// every ranked result references all of them.
    pub(crate) doc_ids: Vec<Arc<str>>,
    /// Origin of each document row.
    pub(crate) doc_origins: Vec<DocOrigin>,
    /// Term display forms that were folded in (rows appended to `u`).
    pub(crate) folded_terms: Vec<String>,
    /// Origin of each term row (parallel to rows of `u`).
    pub(crate) term_origins: Vec<DocOrigin>,
    /// The weighted term-document matrix the current factors were
    /// computed from (kept for recomputation and weight corrections).
    pub(crate) weighted: CscMatrix,
    /// Scoring precision of the candidate-generation sweep (persisted;
    /// legacy files default to [`Precision::Exact`]).
    pub(crate) precision: Precision,
    /// Compressed replica of `v` for candidate generation. Derived
    /// data: `None` for [`Precision::Exact`], rebuilt by
    /// [`LsiModel::refresh_doc_norms`] whenever `v` changes, never
    /// serialized.
    pub(crate) compressed: Option<CompressedStore>,
    /// Retrieval strategy for top-k queries (persisted; legacy files
    /// default to [`IndexPolicy::Exact`]).
    pub(crate) index_policy: IndexPolicy,
    /// Cluster-pruning index over the rows of `v` — present exactly
    /// when the policy is `Pruned`. Centroids and assignments persist
    /// with the model; the posting lists are derived and rebuilt on
    /// load (and the whole index is retrained if the file's copy is
    /// inconsistent with `v`).
    pub(crate) index: Option<ClusterIndex>,
}

impl LsiModel {
    /// Build a model from a corpus: parse, weight, truncated SVD.
    ///
    /// Returns the model and the Lanczos execution report. If the
    /// matrix's numerical rank is below `k`, the model retains that
    /// smaller rank (the paper's `k ≤ r` regime).
    pub fn build(corpus: &Corpus, options: &LsiOptions) -> Result<(LsiModel, LanczosReport)> {
        let _build_span = lsi_obs::span("build");
        let (vocab, counts) = {
            let _parse_span = lsi_obs::span("parse");
            let vocab = Vocabulary::build(corpus, &options.rules);
            let counts = vocab.count_matrix(corpus);
            // Parsing does no arithmetic; account one unit of work per
            // (term, document) cell inserted so throughput is derivable.
            lsi_obs::add_flops(counts.nnz() as f64);
            lsi_obs::count("core.parse.docs.count", corpus.docs.len() as u64);
            (vocab, counts)
        };
        let doc_ids = corpus.docs.iter().map(|d| d.id.clone()).collect();
        Self::from_counts(vocab, counts, doc_ids, options)
    }

    /// Build from a pre-computed count matrix (rows must match `vocab`).
    pub fn from_counts(
        vocab: Vocabulary,
        counts: CscMatrix,
        doc_ids: Vec<String>,
        options: &LsiOptions,
    ) -> Result<(LsiModel, LanczosReport)> {
        if counts.nrows() != vocab.len() {
            return Err(Error::Inconsistent {
                context: format!(
                    "count matrix has {} rows but vocabulary has {} terms",
                    counts.nrows(),
                    vocab.len()
                ),
            });
        }
        if counts.ncols() != doc_ids.len() {
            return Err(Error::Inconsistent {
                context: format!(
                    "count matrix has {} columns but {} document ids supplied",
                    counts.ncols(),
                    doc_ids.len()
                ),
            });
        }
        let weighted = {
            let _matrix_span = lsi_obs::span("matrix");
            lsi_obs::count("core.matrix.nnz.count", counts.nnz() as u64);
            options.weighting.apply(&counts)
        };
        // Boundary guard at the matrix-span exit: a single zero-count
        // pathology in the weighting (log of a negative, 0/0 entropy)
        // would otherwise propagate NaN into every factor downstream.
        if !weighted.global.iter().all(|w| w.is_finite()) {
            return Err(Error::NonFinite {
                context: "global term weights (weighting scheme output)".into(),
            });
        }
        let k = options.k.min(counts.nrows().min(counts.ncols()));
        let (mut svd, report) = {
            let _svd_span = lsi_obs::span("svd");
            let operator = DualFormat::from_csc(weighted.matrix.clone());
            // The robust driver: Lanczos under a stagnation watchdog,
            // degrading to randomized/dense rungs rather than failing
            // (the report's `fallback` field says which rung served).
            let robust_opts = RobustOptions {
                lanczos: LanczosOptions {
                    seed: options.svd_seed,
                    ..RobustOptions::default().lanczos
                },
                ..Default::default()
            };
            robust_svd(&operator, k, &robust_opts)?
        };
        let _assemble_span = lsi_obs::span("assemble");
        // Canonical signs (largest-magnitude U entry positive per
        // column) so coordinates are comparable across runs and with
        // published figures.
        svd.sign_normalize();
        let n_docs = counts.ncols();
        let n_terms = counts.nrows();
        // Sign pass over both factors plus the document-norm cache.
        lsi_obs::add_flops(((n_terms + 3 * n_docs) * k) as f64);
        let mut model = LsiModel {
            vocab,
            weighting: options.weighting,
            global_weights: weighted.global,
            u: svd.u,
            s: svd.s,
            v: svd.v,
            doc_norms: Vec::new(),
            doc_ids: doc_ids.into_iter().map(Arc::from).collect(),
            doc_origins: vec![DocOrigin::Svd; n_docs],
            folded_terms: Vec::new(),
            term_origins: vec![DocOrigin::Svd; n_terms],
            weighted: weighted.matrix,
            precision: Precision::Exact,
            compressed: None,
            index_policy: IndexPolicy::Exact,
            index: None,
        };
        model.refresh_doc_norms();
        Ok((model, report))
    }

    /// Recompute the derived per-document data: the cached row norms of
    /// `V_k` and (when a reduced precision is active) the compressed
    /// scoring replica. Must be called by every operation that replaces
    /// or appends to `v` — this single hook is what keeps the
    /// compressed store coherent across fold-in, SVD-updating,
    /// recomputation, and load.
    pub(crate) fn refresh_doc_norms(&mut self) {
        self.doc_norms = (0..self.v.nrows())
            .map(|j| self.v.row_view(j).nrm2())
            .collect();
        self.compressed = CompressedStore::build(self.precision, &self.v, &self.doc_norms);
        debug_assert!(
            self.compressed
                .as_ref()
                .map_or(self.precision == Precision::Exact, |s| s.precision()
                    == self.precision),
            "compressed store out of sync with the precision mode"
        );
    }

    /// Scoring precision of the candidate-generation sweep.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Switch the candidate-generation precision, building (or
    /// dropping) the compressed replica of `V_k` immediately. The mode
    /// persists with the model; the replica itself does not.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
        self.compressed = CompressedStore::build(self.precision, &self.v, &self.doc_norms);
    }

    /// Retrieval strategy for top-k queries.
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// Number of centroid lists when a cluster index is active.
    pub fn index_n_lists(&self) -> Option<usize> {
        self.index.as_ref().map(|ix| ix.n_lists())
    }

    /// Heap bytes held by the cluster index, when one is active.
    pub fn index_resident_bytes(&self) -> Option<usize> {
        self.index.as_ref().map(|ix| ix.resident_bytes())
    }

    /// Switch the retrieval strategy. `Pruned` trains the cluster
    /// index immediately if none is active (deterministic k-means over
    /// the rows of `V_k`); `Exact` drops it. The policy persists with
    /// the model; changing only the `nprobe` depth of an existing
    /// `Pruned` policy reuses the trained index.
    pub fn set_index_policy(&mut self, policy: IndexPolicy) -> Result<()> {
        self.index_policy = policy;
        match policy {
            IndexPolicy::Exact => self.index = None,
            IndexPolicy::Pruned { .. } => {
                if self.index.is_none() {
                    self.index = Some(ClusterIndex::build(&self.v, &self.doc_norms)?);
                }
            }
        }
        Ok(())
    }

    /// Train the cluster index without changing the retrieval policy:
    /// queries keep following [`LsiModel::index_policy`], but the
    /// per-call probe-depth override
    /// ([`LsiModel::query_top_with`]) can now route through the index.
    /// This is how `lsi serve` prepares its degradation ladder at
    /// startup — an `Exact`-policy model serves exact at nominal load
    /// and degrades to pruned sweeps under pressure without paying a
    /// mid-serve training stall. No-op when an index is already
    /// trained. The index is not persisted unless the policy is
    /// `Pruned` (an `Exact` save drops it on reload).
    pub fn train_index(&mut self) -> Result<()> {
        if self.index.is_none() {
            self.index = Some(ClusterIndex::build(&self.v, &self.doc_norms)?);
        }
        Ok(())
    }

    /// Index-coherence hook for append-style mutations (fold-in):
    /// assign the rows `start..` of `v` to their nearest centroid, and
    /// retrain the centroids once the accumulated drift crosses
    /// [`crate::index::INDEX_RECLUSTER_THRESHOLD`].
    pub(crate) fn index_append_rows(&mut self, start: usize) -> Result<()> {
        if let Some(idx) = self.index.as_mut() {
            idx.append_rows(&self.v, &self.doc_norms, start)?;
            if idx.needs_recluster() {
                self.index = Some(ClusterIndex::build(&self.v, &self.doc_norms)?);
            }
        }
        Ok(())
    }

    /// Index-coherence hook for wholesale replacement of `v` (SVD
    /// updates, recompute): re-assign every row against the frozen
    /// centroids, counting changed rows toward the re-cluster budget;
    /// rebuild outright when the row count changed or drift crossed
    /// the threshold.
    pub(crate) fn index_reassign_all(&mut self) -> Result<()> {
        if let Some(idx) = self.index.as_mut() {
            if idx.assignments().len() != self.v.nrows() || idx.k() != self.v.ncols() {
                self.index = Some(ClusterIndex::build(&self.v, &self.doc_norms)?);
            } else {
                idx.reassign_all(&self.v, &self.doc_norms)?;
                if idx.needs_recluster() {
                    self.index = Some(ClusterIndex::build(&self.v, &self.doc_norms)?);
                }
            }
        }
        Ok(())
    }

    /// Post-load repair: drop a stray index under `Exact`, and under
    /// `Pruned` retrain whenever the persisted copy is inconsistent
    /// with `v` (wrong row/factor count, out-of-range assignment) —
    /// a hand-edited or corrupted index silently degrades to a fresh
    /// build instead of mis-routing queries.
    pub(crate) fn repair_index_after_load(&mut self) -> Result<()> {
        match self.index_policy {
            IndexPolicy::Exact => self.index = None,
            IndexPolicy::Pruned { .. } => {
                let coherent = self.index.as_ref().is_some_and(|ix| {
                    ix.assignments().len() == self.v.nrows()
                        && ix.k() == self.v.ncols()
                        && ix.assignments().iter().all(|&c| (c as usize) < ix.n_lists())
                });
                if !coherent {
                    self.index = Some(ClusterIndex::build(&self.v, &self.doc_norms)?);
                }
            }
        }
        Ok(())
    }

    /// Bench-only corpus inflation: tile the document rows `factor`
    /// times with a small deterministic per-row jitter (so replicas
    /// rank near, but not identically to, their originals) and
    /// synthetic `~rN` ids. Replicas are marked folded-in, which keeps
    /// the weighted-matrix invariants intact. Used by
    /// `perf_kernels --index` to measure the pruning curve at 10x/100x
    /// corpus scale without paying for a 10x/100x SVD.
    #[doc(hidden)]
    pub fn replicate_docs_for_bench(&mut self, factor: usize) -> Result<()> {
        if factor <= 1 {
            return Ok(());
        }
        let n = self.v.nrows();
        let k = self.v.ncols();
        let m2 = n * factor;
        let mut state = 0x1337_5EED_u64 ^ ((factor as u64) << 7);
        let mut row_scales = vec![1.0f64; m2];
        for scale in row_scales.iter_mut().skip(n) {
            // Jitter in [0.999, 1.001): replicas stay inside their
            // original's cluster but break exact score ties.
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            *scale = 1.0 + 2e-3 * (u - 0.5);
        }
        let mut data = vec![0.0f64; m2 * k];
        for j in 0..k {
            let col = self.v.col(j);
            for c in 0..factor {
                let dst = &mut data[j * m2 + c * n..j * m2 + c * n + n];
                let scales = &row_scales[c * n..(c + 1) * n];
                for i in 0..n {
                    dst[i] = col[i] * scales[i];
                }
            }
        }
        self.v = DenseMatrix::from_col_major(m2, k, data)?;
        for c in 1..factor {
            for i in 0..n {
                let id: Arc<str> = Arc::from(format!("{}~r{c}", self.doc_ids[i]).as_str());
                self.doc_ids.push(id);
            }
        }
        self.doc_origins.resize(m2, DocOrigin::FoldedIn);
        self.refresh_doc_norms();
        if self.index.is_some() {
            self.index = Some(ClusterIndex::build(&self.v, &self.doc_norms)?);
        }
        Ok(())
    }

    /// Bytes the scoring sweep streams per query: the compressed
    /// replica when one is active, otherwise the f64 `V_k` buffer.
    pub fn scoring_resident_bytes(&self) -> usize {
        match &self.compressed {
            Some(store) => store.resident_bytes(),
            None => std::mem::size_of_val(self.v.data()),
        }
    }

    /// Precomputed Euclidean norms of the document vectors (rows of
    /// `V_k`), parallel to [`LsiModel::doc_ids`].
    pub fn doc_norms(&self) -> &[f64] {
        &self.doc_norms
    }

    /// Number of factors retained (`k`; may be below the requested `k`
    /// for rank-deficient collections).
    pub fn k(&self) -> usize {
        self.s.len()
    }

    /// Number of indexed terms (rows of `U_k`, including folded-in
    /// terms).
    pub fn n_terms(&self) -> usize {
        self.u.nrows()
    }

    /// Number of documents (rows of `V_k`, including folded-in docs).
    pub fn n_docs(&self) -> usize {
        self.v.nrows()
    }

    /// The singular values.
    pub fn singular_values(&self) -> &[f64] {
        &self.s
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The weighting scheme.
    pub fn weighting(&self) -> &TermWeighting {
        &self.weighting
    }

    /// Stored global term weights.
    pub fn global_weights(&self) -> &[f64] {
        &self.global_weights
    }

    /// Document ids in row order of `V_k`.
    pub fn doc_ids(&self) -> &[Arc<str>] {
        &self.doc_ids
    }

    /// Origin (SVD vs folded-in) of each document.
    pub fn doc_origins(&self) -> &[DocOrigin] {
        &self.doc_origins
    }

    /// The weighted term-document matrix the factors were computed from.
    pub fn weighted_matrix(&self) -> &CscMatrix {
        &self.weighted
    }

    /// Term matrix `U_k`.
    pub fn term_matrix(&self) -> &DenseMatrix {
        &self.u
    }

    /// Document matrix `V_k`.
    pub fn doc_matrix(&self) -> &DenseMatrix {
        &self.v
    }

    /// `k`-dimensional coordinates of term `i` (row `i` of `U_k`),
    /// unscaled. Allocates; hot loops should use
    /// [`LsiModel::term_row`] instead.
    pub fn term_vector(&self, i: usize) -> Vec<f64> {
        self.u.row(i)
    }

    /// `k`-dimensional coordinates of document `j` (row `j` of `V_k`),
    /// unscaled. Allocates; hot loops should use
    /// [`LsiModel::doc_row`] instead.
    pub fn doc_vector(&self, j: usize) -> Vec<f64> {
        self.v.row(j)
    }

    /// Borrowing view of term `i`'s coordinates (row `i` of `U_k`) —
    /// the allocation-free form of [`LsiModel::term_vector`].
    pub fn term_row(&self, i: usize) -> RowView<'_> {
        self.u.row_view(i)
    }

    /// Borrowing view of document `j`'s coordinates (row `j` of `V_k`)
    /// — the allocation-free form of [`LsiModel::doc_vector`].
    pub fn doc_row(&self, j: usize) -> RowView<'_> {
        self.v.row_view(j)
    }

    /// Term coordinates scaled by the singular values — the plotting
    /// convention of the paper's Figures 4–9 ("the first column of U2
    /// multiplied by the first singular value ... for the
    /// x-coordinates").
    pub fn term_coords_scaled(&self, i: usize) -> Vec<f64> {
        let mut r = self.u.row(i);
        for (x, s) in r.iter_mut().zip(self.s.iter()) {
            *x *= s;
        }
        r
    }

    /// Document coordinates scaled by the singular values (plotting
    /// convention).
    pub fn doc_coords_scaled(&self, j: usize) -> Vec<f64> {
        let mut r = self.v.row(j);
        for (x, s) in r.iter_mut().zip(self.s.iter()) {
            *x *= s;
        }
        r
    }

    /// Cosine similarity between two documents in the factor space.
    /// Row views keep this allocation-free; the result is bit-identical
    /// to cosine over row copies.
    pub fn doc_doc_similarity(&self, a: usize, b: usize) -> f64 {
        self.v.row_view(a).cosine(self.v.row_view(b))
    }

    /// Cosine similarity between two terms in the factor space —
    /// the quantity behind the §5.4 synonym test.
    pub fn term_term_similarity(&self, a: usize, b: usize) -> f64 {
        self.u.row_view(a).cosine(self.u.row_view(b))
    }

    /// Look up a document's row by id.
    pub fn doc_index(&self, id: &str) -> Option<usize> {
        self.doc_ids.iter().position(|d| d.as_ref() == id)
    }

    /// Look up a term's row, including folded-in terms.
    pub fn term_index(&self, term: &str) -> Option<usize> {
        if let Some(i) = self.vocab.index_of(term) {
            return Some(i);
        }
        let lowered = term.to_lowercase();
        self.folded_terms
            .iter()
            .position(|t| *t == lowered)
            .map(|p| self.vocab.len() + p)
    }

    /// Reconstruct the rank-k approximation `A_k = U_k Σ_k V_kᵀ`
    /// restricted to the SVD-derived rows (folded-in rows excluded).
    pub fn reconstruct_ak(&self) -> Result<DenseMatrix> {
        let svd = Svd {
            u: self.u.clone(),
            s: self.s.clone(),
            v: self.v.clone(),
        };
        Ok(svd.reconstruct()?)
    }

    /// Serialize the LSI database to JSON, with an integrity trailer.
    ///
    /// The output is the model's JSON document followed by one line of
    /// the form `#lsi1 len=<bytes> fnv=<16-hex>` — the body length and
    /// its FNV-1a-64 checksum. [`LsiModel::from_json`] validates the
    /// trailer when present, so truncation and bit-rot are caught
    /// before a half-loaded model can serve queries.
    pub fn to_json(&self) -> Result<String> {
        if lsi_fault::should_fail(lsi_fault::points::CORE_PERSIST_SAVE) {
            return Err(Error::Persist(format!(
                "fault injected at failpoint `{}`",
                lsi_fault::points::CORE_PERSIST_SAVE
            )));
        }
        let body = serde_json::to_string(self).map_err(|e| Error::Persist(e.to_string()))?;
        let sum = fnv1a64(body.as_bytes());
        Ok(format!("{body}\n{TRAILER_TAG} len={} fnv={sum:016x}", body.len()))
    }

    /// Restore an LSI database from JSON.
    ///
    /// Accepts both trailer-carrying output of [`LsiModel::to_json`]
    /// (validated) and legacy trailer-less files. Beyond the checksum,
    /// every structural invariant the query/update paths rely on is
    /// checked here, so corrupted or hand-edited files fail with a
    /// typed [`Error::Persist`] instead of panicking mid-query.
    pub fn from_json(json: &str) -> Result<LsiModel> {
        if lsi_fault::should_fail(lsi_fault::points::CORE_PERSIST_LOAD) {
            return Err(Error::Persist(format!(
                "fault injected at failpoint `{}`",
                lsi_fault::points::CORE_PERSIST_LOAD
            )));
        }
        let body = validate_trailer(json)?;
        let mut model: LsiModel =
            serde_json::from_str(body).map_err(|e| Error::Persist(e.to_string()))?;
        model.validate_shape()?;
        // Norms are derived data; recompute rather than trusting the
        // serialized copy (hand-edited files stay usable).
        model.refresh_doc_norms();
        // Same philosophy for the cluster index: trust it only if it
        // is coherent with `v`, otherwise retrain.
        model.repair_index_after_load()?;
        Ok(model)
    }

    /// Check every dimensional invariant between the model's parallel
    /// arrays. Only called on deserialized models — construction and
    /// update paths maintain these by design.
    fn validate_shape(&self) -> Result<()> {
        let fail = |context: String| Err(Error::Persist(format!("invalid model: {context}")));
        let k = self.s.len();
        let (u_rows, u_cols) = self.u.shape();
        let (v_rows, v_cols) = self.v.shape();
        if u_cols != k || v_cols != k {
            return fail(format!(
                "U is {u_rows}x{u_cols} and V is {v_rows}x{v_cols}, but {k} singular values"
            ));
        }
        if self.u.data().len() != u_rows * u_cols {
            return fail(format!(
                "U buffer holds {} entries for a {u_rows}x{u_cols} matrix",
                self.u.data().len()
            ));
        }
        if self.v.data().len() != v_rows * v_cols {
            return fail(format!(
                "V buffer holds {} entries for a {v_rows}x{v_cols} matrix",
                self.v.data().len()
            ));
        }
        if self.doc_ids.len() != v_rows || self.doc_origins.len() != v_rows {
            return fail(format!(
                "{} doc ids and {} doc origins for {v_rows} document rows",
                self.doc_ids.len(),
                self.doc_origins.len()
            ));
        }
        if self.term_origins.len() != u_rows {
            return fail(format!(
                "{} term origins for {u_rows} term rows",
                self.term_origins.len()
            ));
        }
        if self.vocab.len() + self.folded_terms.len() != u_rows {
            return fail(format!(
                "{} vocabulary terms + {} folded terms != {u_rows} term rows",
                self.vocab.len(),
                self.folded_terms.len()
            ));
        }
        if self.global_weights.len() != u_rows {
            // Build sets one weight per vocabulary term; both term-add
            // paths push a unit weight per appended row, so the vector
            // always tracks the rows of U.
            return fail(format!(
                "{} global weights for {u_rows} term rows",
                self.global_weights.len()
            ));
        }
        if !self.s.iter().all(|s| s.is_finite() && *s >= 0.0) {
            return fail("singular values must be finite and non-negative".into());
        }
        if !self.u.data().iter().all(|x| x.is_finite())
            || !self.v.data().iter().all(|x| x.is_finite())
        {
            return fail("factor matrices contain non-finite entries".into());
        }
        self.weighted
            .check_invariants()
            .map_err(|e| Error::Persist(format!("invalid model: weighted matrix: {e}")))?;
        // The stored weighted matrix covers exactly the SVD-derived
        // rows and columns: folding-in appends factor rows without
        // touching it, while SVD-updating grows it in step.
        let svd_terms = self
            .term_origins
            .iter()
            .filter(|o| matches!(o, DocOrigin::Svd))
            .count();
        let svd_docs = self
            .doc_origins
            .iter()
            .filter(|o| matches!(o, DocOrigin::Svd))
            .count();
        if self.weighted.shape() != (svd_terms, svd_docs) {
            return fail(format!(
                "weighted matrix is {:?} but origins say {svd_terms} SVD terms x {svd_docs} SVD docs",
                self.weighted.shape()
            ));
        }
        Ok(())
    }
}

// Hand-written (de)serialization. The derive macro would make every
// field required on read, but `precision` was added after the format
// shipped: it serializes as a trailing map entry and defaults to
// `Exact` when absent, so legacy files keep loading. The `compressed`
// store is derived data and is intentionally not serialized —
// `from_json` rebuilds it via `refresh_doc_norms`.
impl Serialize for LsiModel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("vocab".to_string(), self.vocab.to_value()),
            ("weighting".to_string(), self.weighting.to_value()),
            ("global_weights".to_string(), self.global_weights.to_value()),
            ("u".to_string(), self.u.to_value()),
            ("s".to_string(), self.s.to_value()),
            ("v".to_string(), self.v.to_value()),
            ("doc_norms".to_string(), self.doc_norms.to_value()),
            ("doc_ids".to_string(), self.doc_ids.to_value()),
            ("doc_origins".to_string(), self.doc_origins.to_value()),
            ("folded_terms".to_string(), self.folded_terms.to_value()),
            ("term_origins".to_string(), self.term_origins.to_value()),
            ("weighted".to_string(), self.weighted.to_value()),
            ("precision".to_string(), self.precision.to_value()),
            ("index_policy".to_string(), self.index_policy.to_value()),
            ("index".to_string(), self.index.to_value()),
        ])
    }
}

impl Deserialize for LsiModel {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct LsiModel"))?;
        let precision = match map.iter().find(|(key, _)| key.as_str() == "precision") {
            Some((_, pv)) => Precision::from_value(pv)?,
            None => Precision::Exact,
        };
        // Like `precision`, the index fields are trailing optional
        // entries so pre-index files keep loading (as Exact, no index).
        let index_policy = match map.iter().find(|(key, _)| key.as_str() == "index_policy") {
            Some((_, pv)) => IndexPolicy::from_value(pv)?,
            None => IndexPolicy::Exact,
        };
        let index = match map.iter().find(|(key, _)| key.as_str() == "index") {
            Some((_, iv)) => Option::<ClusterIndex>::from_value(iv)?,
            None => None,
        };
        Ok(LsiModel {
            vocab: serde::de::field(map, "vocab")?,
            weighting: serde::de::field(map, "weighting")?,
            global_weights: serde::de::field(map, "global_weights")?,
            u: serde::de::field(map, "u")?,
            s: serde::de::field(map, "s")?,
            v: serde::de::field(map, "v")?,
            doc_norms: serde::de::field(map, "doc_norms")?,
            doc_ids: serde::de::field(map, "doc_ids")?,
            doc_origins: serde::de::field(map, "doc_origins")?,
            folded_terms: serde::de::field(map, "folded_terms")?,
            term_origins: serde::de::field(map, "term_origins")?,
            weighted: serde::de::field(map, "weighted")?,
            precision,
            compressed: None,
            index_policy,
            index,
        })
    }
}

/// Tag introducing the integrity trailer line of a serialized model.
const TRAILER_TAG: &str = "#lsi1";

/// FNV-1a 64-bit — tiny, dependency-free, and plenty for detecting
/// truncation and accidental corruption (this is an integrity check,
/// not an authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Split off and verify the `#lsi1` trailer, returning the JSON body.
/// Inputs without a trailer (legacy files) pass through unchanged.
fn validate_trailer(json: &str) -> Result<&str> {
    let Some((body, trailer)) = json.trim_end().rsplit_once('\n') else {
        return Ok(json);
    };
    let Some(fields) = trailer.strip_prefix(TRAILER_TAG) else {
        // No trailer tag: treat the whole input as body (legacy).
        return Ok(json);
    };
    let mut expect_len: Option<usize> = None;
    let mut expect_fnv: Option<u64> = None;
    for field in fields.split_whitespace() {
        if let Some(v) = field.strip_prefix("len=") {
            expect_len = v.parse().ok();
        } else if let Some(v) = field.strip_prefix("fnv=") {
            expect_fnv = u64::from_str_radix(v, 16).ok();
        }
    }
    let (Some(len), Some(fnv)) = (expect_len, expect_fnv) else {
        return Err(Error::Persist(
            "model trailer is malformed (expected `#lsi1 len=<n> fnv=<hex>`)".into(),
        ));
    };
    if body.len() != len {
        return Err(Error::Persist(format!(
            "model file truncated or padded: trailer says {len} bytes, found {}",
            body.len()
        )));
    }
    let actual = fnv1a64(body.as_bytes());
    if actual != fnv {
        return Err(Error::Persist(format!(
            "model checksum mismatch: trailer says {fnv:016x}, computed {actual:016x}"
        )));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_text::Document;

    fn small_corpus() -> Corpus {
        Corpus::from_pairs([
            ("d1", "apple banana apple cherry"),
            ("d2", "banana cherry banana date"),
            ("d3", "apple cherry date fig"),
            ("d4", "grape fig date grape"),
            ("d5", "fig grape apple banana"),
        ])
    }

    fn options(k: usize) -> LsiOptions {
        LsiOptions {
            k,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 1,
        }
    }

    #[test]
    fn build_produces_consistent_shapes() {
        let (m, report) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        assert_eq!(m.k(), 3);
        assert_eq!(m.n_docs(), 5);
        assert!(m.n_terms() >= 4);
        assert_eq!(m.term_matrix().shape(), (m.n_terms(), 3));
        assert_eq!(m.doc_matrix().shape(), (5, 3));
        assert!(report.steps >= 3);
    }

    #[test]
    fn k_is_capped_by_rank() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(50)).unwrap();
        assert!(m.k() <= 5);
    }

    #[test]
    fn factors_reconstruct_weighted_matrix_at_full_rank() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(5)).unwrap();
        let ak = m.reconstruct_ak().unwrap();
        let dense = m.weighted_matrix().to_dense();
        assert!(
            ak.fro_distance(&dense).unwrap() < 1e-8 * dense.fro_norm().max(1.0),
            "full-rank reconstruction should be exact"
        );
    }

    #[test]
    fn truncation_error_decreases_with_k() {
        let corpus = small_corpus();
        let mut errs = Vec::new();
        for k in 1..=4 {
            let (m, _) = LsiModel::build(&corpus, &options(k)).unwrap();
            let ak = m.reconstruct_ak().unwrap();
            let dense = m.weighted_matrix().to_dense();
            errs.push(ak.fro_distance(&dense).unwrap());
        }
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-10, "errors should shrink: {errs:?}");
        }
    }

    #[test]
    fn doc_and_term_lookup() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(2)).unwrap();
        assert_eq!(m.doc_index("d3"), Some(2));
        assert_eq!(m.doc_index("nope"), None);
        assert!(m.term_index("apple").is_some());
        assert!(m.term_index("unicorn").is_none());
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        for a in 0..m.n_docs() {
            for b in 0..m.n_docs() {
                let s1 = m.doc_doc_similarity(a, b);
                let s2 = m.doc_doc_similarity(b, a);
                assert!((s1 - s2).abs() < 1e-12);
                assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&s1));
            }
            assert!((m.doc_doc_similarity(a, a) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaled_coords_multiply_by_sigma() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(2)).unwrap();
        let raw = m.doc_vector(0);
        let scaled = m.doc_coords_scaled(0);
        for j in 0..m.k() {
            assert!((scaled[j] - raw[j] * m.singular_values()[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn json_roundtrip_preserves_model() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let json = m.to_json().unwrap();
        let back = LsiModel::from_json(&json).unwrap();
        assert_eq!(back.k(), m.k());
        assert_eq!(back.doc_ids(), m.doc_ids());
        assert_eq!(back.singular_values(), m.singular_values());
        assert!(back
            .term_matrix()
            .fro_distance(m.term_matrix())
            .unwrap()
            .abs()
            < 1e-15);
    }

    #[test]
    fn serialized_model_carries_a_valid_trailer() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let json = m.to_json().unwrap();
        let (body, trailer) = json.rsplit_once('\n').unwrap();
        assert!(trailer.starts_with(TRAILER_TAG));
        assert!(trailer.contains(&format!("len={}", body.len())));
        assert!(trailer.contains(&format!("fnv={:016x}", fnv1a64(body.as_bytes()))));
    }

    #[test]
    fn truncated_model_file_is_rejected() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let json = m.to_json().unwrap();
        // Chop bytes out of the body while keeping the trailer: the
        // length check must catch it before serde sees broken JSON.
        let (body, trailer) = json.rsplit_once('\n').unwrap();
        let truncated = format!("{}\n{trailer}", &body[..body.len() - 10]);
        let err = LsiModel::from_json(&truncated).unwrap_err();
        assert!(matches!(err, Error::Persist(_)), "got {err}");
        assert!(err.to_string().contains("truncated"), "got {err}");
    }

    #[test]
    fn bit_flipped_model_file_is_rejected() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let json = m.to_json().unwrap();
        // Swap one digit for another somewhere in the body — same
        // length, still valid JSON, but the checksum must catch it.
        let pos = json.find("\"s\":").unwrap();
        let mut bytes = json.into_bytes();
        let target = bytes[pos + 5];
        bytes[pos + 5] = if target == b'1' { b'2' } else { b'1' };
        let corrupted = String::from_utf8(bytes).unwrap();
        let err = LsiModel::from_json(&corrupted).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "got {err}");
    }

    #[test]
    fn malformed_trailer_is_rejected() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(2)).unwrap();
        let json = m.to_json().unwrap();
        let (body, _) = json.rsplit_once('\n').unwrap();
        let mangled = format!("{body}\n{TRAILER_TAG} len=oops fnv=xyz");
        let err = LsiModel::from_json(&mangled).unwrap_err();
        assert!(err.to_string().contains("malformed"), "got {err}");
    }

    #[test]
    fn legacy_trailerless_json_still_loads() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let json = m.to_json().unwrap();
        let (body, _) = json.rsplit_once('\n').unwrap();
        let back = LsiModel::from_json(body).unwrap();
        assert_eq!(back.k(), m.k());
        assert_eq!(back.singular_values(), m.singular_values());
    }

    #[test]
    fn shape_violations_in_loaded_json_are_rejected() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let json = m.to_json().unwrap();
        let (body, _) = json.rsplit_once('\n').unwrap();
        // Drop a document id: parallel arrays now disagree with V.
        let chopped = body.replacen("\"d1\",", "", 1);
        let err = LsiModel::from_json(&chopped).unwrap_err();
        assert!(err.to_string().contains("invalid model"), "got {err}");
        // Smuggle a NaN into the singular values.
        let poisoned = body.replacen("\"s\":[", "\"s\":[null,", 1);
        assert!(LsiModel::from_json(&poisoned).is_err());
    }

    #[test]
    fn garbage_input_yields_typed_persist_errors() {
        for garbage in ["", "{", "not json at all", "[1,2,3]", "{\"s\":[1.0]}"] {
            let err = LsiModel::from_json(garbage).unwrap_err();
            assert!(matches!(err, Error::Persist(_)), "input {garbage:?} gave {err}");
        }
    }

    #[test]
    fn from_counts_validates_dimensions() {
        let corpus = small_corpus();
        let vocab = Vocabulary::build(&corpus, &ParsingRules::default());
        let counts = vocab.count_matrix(&corpus);
        let bad_ids = vec!["only-one".to_string()];
        assert!(LsiModel::from_counts(vocab, counts, bad_ids, &options(2)).is_err());
    }

    #[test]
    fn precision_mode_roundtrips_and_rebuilds_the_store() {
        let (mut m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        assert_eq!(m.precision(), Precision::Exact);
        assert!(m.compressed.is_none());
        let exact_bytes = m.scoring_resident_bytes();
        m.set_precision(Precision::F32);
        assert!(m.compressed.is_some());
        assert!(m.scoring_resident_bytes() < exact_bytes);
        let json = m.to_json().unwrap();
        let back = LsiModel::from_json(&json).unwrap();
        assert_eq!(back.precision(), Precision::F32);
        assert!(back.compressed.is_some(), "load must rebuild the store");
        m.set_precision(Precision::Exact);
        assert!(m.compressed.is_none());
    }

    #[test]
    fn index_policy_roundtrips_with_the_trained_index() {
        use crate::index::IndexPolicy;
        let (mut m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        assert_eq!(m.index_policy(), IndexPolicy::Exact);
        assert!(m.index.is_none());
        m.set_index_policy(IndexPolicy::Pruned { nprobe: 2 }).unwrap();
        let n_lists = m.index_n_lists().unwrap();
        assert!(n_lists >= 1);
        let json = m.to_json().unwrap();
        let back = LsiModel::from_json(&json).unwrap();
        assert_eq!(back.index_policy(), IndexPolicy::Pruned { nprobe: 2 });
        let bi = back.index.as_ref().unwrap();
        let mi = m.index.as_ref().unwrap();
        assert_eq!(bi.assignments(), mi.assignments());
        assert_eq!(bi.centroids().data(), mi.centroids().data());
        m.set_index_policy(IndexPolicy::Exact).unwrap();
        assert!(m.index.is_none());
    }

    #[test]
    fn corrupted_persisted_index_is_retrained_on_load() {
        use crate::index::IndexPolicy;
        let (mut m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        m.set_index_policy(IndexPolicy::Pruned { nprobe: 1 }).unwrap();
        let json = m.to_json().unwrap();
        let (body, _) = json.rsplit_once('\n').unwrap();
        // Smuggle an out-of-range assignment into the persisted index:
        // the load path must notice and retrain rather than mis-route.
        let first = "\"assignments\":[";
        let pos = body.find(first).unwrap() + first.len();
        let mut mangled = String::with_capacity(body.len() + 2);
        mangled.push_str(&body[..pos]);
        let rest = &body[pos..];
        let end = rest.find(']').unwrap();
        let mut entries: Vec<&str> = rest[..end].split(',').collect();
        let swapped = "99";
        entries[0] = swapped;
        mangled.push_str(&entries.join(","));
        mangled.push_str(&rest[end..]);
        let back = LsiModel::from_json(&mangled).unwrap();
        let bi = back.index.as_ref().unwrap();
        assert!(bi.assignments().iter().all(|&c| (c as usize) < bi.n_lists()));
        assert_eq!(bi.assignments().len(), back.n_docs());
    }

    #[test]
    fn replicated_corpus_scales_docs_and_keeps_invariants() {
        let (mut m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let n = m.n_docs();
        m.replicate_docs_for_bench(3).unwrap();
        assert_eq!(m.n_docs(), 3 * n);
        assert_eq!(m.doc_ids().len(), 3 * n);
        assert_eq!(m.doc_norms().len(), 3 * n);
        assert!(m.doc_index("d1~r2").is_some());
        // Replicas jitter but stay near their original's direction.
        let sim = m.doc_doc_similarity(0, n);
        assert!(sim > 0.999, "replica drifted: {sim}");
        // The inflated model still round-trips (replicas are folded-in).
        let json = m.to_json().unwrap();
        let back = LsiModel::from_json(&json).unwrap();
        assert_eq!(back.n_docs(), 3 * n);
    }

    #[test]
    fn legacy_files_without_precision_load_as_exact() {
        let (m, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let json = m.to_json().unwrap();
        let (body, _) = json.rsplit_once('\n').unwrap();
        // Simulate a pre-precision file by stripping the field.
        let legacy = body.replacen(",\"precision\":\"Exact\"", "", 1);
        assert_ne!(legacy, body, "serialized form should carry precision");
        let back = LsiModel::from_json(&legacy).unwrap();
        assert_eq!(back.precision(), Precision::Exact);
        assert_eq!(back.k(), m.k());
    }

    #[test]
    fn deterministic_build() {
        let (m1, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        let (m2, _) = LsiModel::build(&small_corpus(), &options(3)).unwrap();
        assert_eq!(m1.singular_values(), m2.singular_values());
    }

    #[test]
    fn empty_like_corpus_is_rejected_gracefully() {
        // A corpus whose vocabulary is empty (all unique words, min_df 2).
        let corpus = Corpus {
            docs: vec![
                Document::new("a", "aardvark"),
                Document::new("b", "zebra"),
            ],
        };
        let (m, _) = LsiModel::build(&corpus, &options(2)).unwrap();
        assert_eq!(m.k(), 0);
        assert_eq!(m.n_terms(), 0);
    }
}
