//! Updating an LSI database: folding-in, SVD-updating, recomputing.
//!
//! §2.3 of the paper defines the three options; §4 gives the
//! SVD-updating algebra (O'Brien, reference \[24\]), reproduced here
//! phase by phase:
//!
//! * **Folding-in** (Eqs. 7–8) — project new documents/terms onto the
//!   *existing* factors. Cheap (`2mkp` flops per Table 7) but "new terms
//!   and documents have no effect on the representation of the
//!   pre-existing terms and documents", and it "corrupts the
//!   orthogonality" of the factor matrices (§4.3).
//! * **SVD-updating** (Eqs. 10–13) — reduce the update to a small dense
//!   SVD (`F`, `H`, or `Q`) and rotate the existing factors. The
//!   factors stay orthonormal. The paper's printed reductions assume
//!   the new material lies in the span of the current factors; this
//!   implementation carries the orthogonal residual along (one extra
//!   QR of the out-of-span components, à la Zha–Simon), which makes
//!   the update *exact* for `B = (A_k | D)` — matching what the
//!   paper's own §4.4 example actually computes ("the best rank-2
//!   approximation B₂ to B") and reproducing its Figure 9. When the
//!   residual vanishes the formulas reduce to the paper's Eq. 13
//!   verbatim.
//! * **Recomputing** — "not an updating method, but a way of creating
//!   an LSI-generated database ... from scratch", the accuracy
//!   yardstick.

use lsi_linalg::{jacobi_svd, ops, DenseMatrix};
use lsi_sparse::{CooMatrix, CscMatrix};
use lsi_svd::{robust_svd, RobustOptions};
use lsi_text::Corpus;

use crate::model::{DocOrigin, LsiModel};
use crate::{Error, Result};

/// Append `rows` (each of length `m.ncols()`) to the bottom of `m`.
fn append_rows(m: &DenseMatrix, rows: &[Vec<f64>]) -> crate::Result<DenseMatrix> {
    let extra = DenseMatrix::from_rows(rows).unwrap_or_else(|_| DenseMatrix::zeros(0, m.ncols()));
    if rows.is_empty() {
        return Ok(m.clone());
    }
    Ok(m.vcat(&extra)?)
}

impl LsiModel {
    /// Weight raw per-term counts for one new document with the stored
    /// scheme (local transform × stored global weights, padding
    /// folded-in term rows with unit global weight).
    fn weight_doc_counts(&self, counts: &[f64]) -> Vec<f64> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let g = self.global_weights.get(i).copied().unwrap_or(1.0);
                self.weighting.local.apply(c) * g
            })
            .collect()
    }

    /// Fold in new documents (Eq. 7): each document is projected as
    /// `d̂ = dᵀ U_k Σ_k⁻¹` and appended to `V_k`. Existing coordinates
    /// are untouched.
    pub fn fold_in_documents(&mut self, corpus: &Corpus) -> Result<()> {
        let _span = lsi_obs::span("fold_in");
        // Table 7: folding in p documents costs 2mkp flops.
        lsi_obs::add_flops(
            crate::complexity::CostParams::with_defaults(self.n_terms(), self.n_docs(), self.k())
                .fold_in_documents(corpus.len()) as f64,
        );
        lsi_obs::count("update.fold_in_docs.count", corpus.len() as u64);
        let mut new_rows = Vec::with_capacity(corpus.len());
        for doc in &corpus.docs {
            if self.doc_index(&doc.id).is_some() {
                return Err(Error::Inconsistent {
                    context: format!("document id {} already present", doc.id),
                });
            }
            let mut counts = self.vocab.count_vector(&doc.text);
            counts.resize(self.n_terms(), 0.0);
            let weighted = self.weight_doc_counts(&counts);
            let mut dhat = vec![0.0; self.k()];
            for (j, q) in dhat.iter_mut().enumerate() {
                *q = lsi_linalg::vecops::dot(&weighted, self.u.col(j));
                if self.s[j] > 0.0 {
                    *q /= self.s[j];
                }
            }
            new_rows.push(dhat);
            self.doc_ids.push(doc.id.as_str().into());
            self.doc_origins.push(DocOrigin::FoldedIn);
        }
        let appended_from = self.v.nrows();
        self.v = append_rows(&self.v, &new_rows)?;
        self.refresh_doc_norms();
        // Folded-in rows are pure appends: route each to its nearest
        // centroid (retrains automatically once drift accumulates).
        self.index_append_rows(appended_from)?;
        Ok(())
    }

    /// Fold in new terms (Eq. 8): each term is a vector of counts over
    /// the model's documents, projected as `t̂ = t V_k Σ_k⁻¹` and
    /// appended to `U_k`.
    ///
    /// `counts` maps each new term name to its occurrence counts over
    /// the first [`LsiModel::n_docs`] documents.
    pub fn fold_in_terms(&mut self, terms: &[(String, Vec<f64>)]) -> Result<()> {
        let _span = lsi_obs::span("fold_in");
        // Table 7: folding in q terms costs 2nkq flops.
        lsi_obs::add_flops(
            crate::complexity::CostParams::with_defaults(self.n_terms(), self.n_docs(), self.k())
                .fold_in_terms(terms.len()) as f64,
        );
        lsi_obs::count("update.fold_in_terms.count", terms.len() as u64);
        let n = self.n_docs();
        let mut new_rows = Vec::with_capacity(terms.len());
        for (name, counts) in terms {
            if counts.len() != n {
                return Err(Error::Inconsistent {
                    context: format!(
                        "term {name} has {} counts but the model holds {n} documents",
                        counts.len()
                    ),
                });
            }
            let lowered = name.to_lowercase();
            if self.term_index(&lowered).is_some() {
                return Err(Error::Inconsistent {
                    context: format!("term {name} already indexed"),
                });
            }
            let weighted: Vec<f64> = counts.iter().map(|&c| self.weighting.local.apply(c)).collect();
            let mut that = vec![0.0; self.k()];
            for (j, q) in that.iter_mut().enumerate() {
                *q = lsi_linalg::vecops::dot(&weighted, self.v.col(j));
                if self.s[j] > 0.0 {
                    *q /= self.s[j];
                }
            }
            new_rows.push(that);
            self.folded_terms.push(lowered);
            self.term_origins.push(DocOrigin::FoldedIn);
            self.global_weights.push(1.0);
        }
        self.u = append_rows(&self.u, &new_rows)?;
        Ok(())
    }

    /// SVD-update with new documents (Eqs. 10 and 13).
    ///
    /// `d_counts` is the m×p *raw count* matrix of the new documents
    /// over the model's terms (build it with
    /// `model.vocabulary().count_matrix(&new_corpus)`); weighting is
    /// applied internally with the stored global weights.
    pub fn svd_update_documents(&mut self, d_counts: &CscMatrix, ids: &[String]) -> Result<()> {
        let _span = lsi_obs::span("update");
        lsi_obs::add_flops(
            crate::complexity::CostParams::with_defaults(self.n_terms(), self.n_docs(), self.k())
                .svd_update_documents(d_counts.ncols(), d_counts.nnz()) as f64,
        );
        lsi_obs::count("update.svd_update_docs.count", d_counts.ncols() as u64);
        let m = self.n_terms();
        let k = self.k();
        let p = d_counts.ncols();
        if d_counts.nrows() != m {
            return Err(Error::Inconsistent {
                context: format!(
                    "update matrix has {} rows but the model indexes {m} terms",
                    d_counts.nrows()
                ),
            });
        }
        if ids.len() != p {
            return Err(Error::Inconsistent {
                context: format!("{p} new documents but {} ids", ids.len()),
            });
        }
        for id in ids {
            if self.doc_index(id).is_some() {
                return Err(Error::Inconsistent {
                    context: format!("document id {id} already present"),
                });
            }
        }

        // Weight D consistently with the stored scheme.
        let mut d_weighted = d_counts.clone();
        let local = self.weighting.local;
        d_weighted.map_values(|v| local.apply(v));
        let mut scale = self.global_weights.clone();
        scale.resize(m, 1.0);
        d_weighted.scale_rows(&scale)?;

        // Dhat = U_k^T D  (k x p) and the dense copy of D.
        let mut dhat = DenseMatrix::zeros(k, p);
        let mut d_dense = DenseMatrix::zeros(m, p);
        for c in 0..p {
            let (rows, vals) = d_weighted.col(c);
            for (&r, &v) in rows.iter().zip(vals.iter()) {
                d_dense.set(r, c, v);
            }
            for j in 0..k {
                let uj = self.u.col(j);
                let mut acc = 0.0;
                for (&r, &v) in rows.iter().zip(vals.iter()) {
                    acc += uj[r] * v;
                }
                dhat.set(j, c, acc);
            }
        }

        // Residual of D outside span(U_k): R = D - U_k Dhat, then an
        // orthonormal basis Q_r (m x p') with coefficients
        // R_r = Q_r^T R. The paper's Eq. 13 is the special case
        // R = 0.
        let mut resid = d_dense.clone();
        for c in 0..p {
            for j in 0..k {
                let coeff = dhat.get(j, c);
                let uj = self.u.col(j).to_vec();
                lsi_linalg::vecops::axpy(-coeff, &uj, resid.col_mut(c));
            }
        }
        let mut q_r = resid.clone();
        let kept = lsi_linalg::qr::mgs_orthonormalize(&mut q_r);
        let kept_cols: Vec<Vec<f64>> = (0..p)
            .filter(|&c| kept[c])
            .map(|c| q_r.col(c).to_vec())
            .collect();
        let pr = kept_cols.len();
        let q_r = if pr > 0 {
            DenseMatrix::from_cols(&kept_cols)?
        } else {
            DenseMatrix::zeros(m, 0)
        };
        // R_r = Q_r^T resid (pr x p).
        let r_r = ops::matmul_tn(&q_r, &resid)?;

        // Extended middle matrix F~ = [[Sigma, Dhat], [0, R_r]],
        // (k+pr) x (k+p).
        let mut f = DenseMatrix::zeros(k + pr, k + p);
        for j in 0..k {
            f.set(j, j, self.s[j]);
        }
        for c in 0..p {
            for j in 0..k {
                f.set(j, k + c, dhat.get(j, c));
            }
            for j in 0..pr {
                f.set(k + j, k + c, r_r.get(j, c));
            }
        }
        let svd_f = jacobi_svd(&f)?;
        let keep = k.min(svd_f.s.len());
        let u_f = svd_f.u.truncate_cols(keep); // (k+pr) x keep
        let v_f = svd_f.v.truncate_cols(keep); // (k+p) x keep
        let sigma_new = svd_f.s[..keep].to_vec();

        // U <- [U_k | Q_r] U_F (rotates folded-in term rows too).
        let u_ext = self.u.hcat(&q_r)?;
        self.u = ops::matmul(&u_ext, &u_f)?;
        // V <- blockdiag(V_k, I_p) V_F.
        let v_f_top = v_f.submatrix(0, k, 0, keep);
        let v_f_bottom = v_f.submatrix(k, k + p, 0, keep);
        let v_old = ops::matmul(&self.v, &v_f_top)?;
        self.v = v_old.vcat(&v_f_bottom)?;
        self.s = sigma_new;

        self.refresh_doc_norms();
        // The rotation moved every document vector (and appended p new
        // ones): re-derive all index assignments against the frozen
        // centroids; the row-count change forces a rebuild.
        self.index_reassign_all()?;
        for id in ids {
            self.doc_ids.push(id.as_str().into());
            self.doc_origins.push(DocOrigin::Svd);
        }
        // Grow the stored weighted matrix for later recomputation /
        // weight corrections. (Stored matrix covers only vocab terms.)
        for c in 0..p {
            let (rows, vals) = d_weighted.col(c);
            let keep: Vec<(usize, f64)> = rows
                .iter()
                .zip(vals.iter())
                .filter(|(&r, _)| r < self.weighted.nrows())
                .map(|(&r, &v)| (r, v))
                .collect();
            let (rr, vv): (Vec<usize>, Vec<f64>) = keep.into_iter().unzip();
            self.weighted.push_col(&rr, &vv)?;
        }
        Ok(())
    }

    /// SVD-update with new terms (Eq. 11).
    ///
    /// Each entry gives a new term's name and its raw counts over the
    /// model's documents (length [`LsiModel::n_docs`]).
    pub fn svd_update_terms(&mut self, terms: &[(String, Vec<f64>)]) -> Result<()> {
        let _span = lsi_obs::span("update");
        let nnz_t: usize = terms
            .iter()
            .map(|(_, c)| c.iter().filter(|&&v| v != 0.0).count())
            .sum();
        lsi_obs::add_flops(
            crate::complexity::CostParams::with_defaults(self.n_terms(), self.n_docs(), self.k())
                .svd_update_terms(terms.len(), nnz_t) as f64,
        );
        lsi_obs::count("update.svd_update_terms.count", terms.len() as u64);
        let n = self.n_docs();
        let k = self.k();
        let q = terms.len();
        if q == 0 {
            return Ok(());
        }
        for (name, counts) in terms {
            if counts.len() != n {
                return Err(Error::Inconsistent {
                    context: format!(
                        "term {name} has {} counts but the model holds {n} documents",
                        counts.len()
                    ),
                });
            }
            if self.term_index(name).is_some() {
                return Err(Error::Inconsistent {
                    context: format!("term {name} already indexed"),
                });
            }
        }

        // T (q x n), locally weighted.
        let t_rows: Vec<Vec<f64>> = terms
            .iter()
            .map(|(_, counts)| counts.iter().map(|&c| self.weighting.local.apply(c)).collect())
            .collect();

        // TV = T V_k (q x k), and the residual of T^T outside span(V_k):
        // resid = T^T - V_k (TV)^T (n x q), orthonormalized as Q_r with
        // coefficients R_r = Q_r^T resid. The paper's Eq. 11 algebra is
        // the special case resid = 0.
        let mut tv = DenseMatrix::zeros(q, k);
        for (qi, row) in t_rows.iter().enumerate() {
            for j in 0..k {
                tv.set(qi, j, lsi_linalg::vecops::dot(row, self.v.col(j)));
            }
        }
        let mut resid = DenseMatrix::zeros(n, q);
        for (qi, row) in t_rows.iter().enumerate() {
            resid.col_mut(qi).copy_from_slice(row);
            for j in 0..k {
                let coeff = tv.get(qi, j);
                let vj = self.v.col(j).to_vec();
                lsi_linalg::vecops::axpy(-coeff, &vj, resid.col_mut(qi));
            }
        }
        let mut q_r = resid.clone();
        let kept = lsi_linalg::qr::mgs_orthonormalize(&mut q_r);
        let kept_cols: Vec<Vec<f64>> = (0..q)
            .filter(|&c| kept[c])
            .map(|c| q_r.col(c).to_vec())
            .collect();
        let qr_count = kept_cols.len();
        let q_r = if qr_count > 0 {
            DenseMatrix::from_cols(&kept_cols)?
        } else {
            DenseMatrix::zeros(n, 0)
        };
        let r_r = ops::matmul_tn(&q_r, &resid)?; // qr_count x q

        // H~ = [[Sigma, 0], [TV, R_r^T]]  ((k+q) x (k+qr_count)).
        let mut h = DenseMatrix::zeros(k + q, k + qr_count);
        for j in 0..k {
            h.set(j, j, self.s[j]);
        }
        for qi in 0..q {
            for j in 0..k {
                h.set(k + qi, j, tv.get(qi, j));
            }
            for j in 0..qr_count {
                h.set(k + qi, k + j, r_r.get(j, qi));
            }
        }
        let svd_h = jacobi_svd(&h)?;
        let keep = k.min(svd_h.s.len());
        let u_h = svd_h.u.truncate_cols(keep); // (k+q) x keep
        let v_h = svd_h.v.truncate_cols(keep); // (k+qr_count) x keep
        let sigma_new = svd_h.s[..keep].to_vec();

        // U <- blockdiag(U_k, I_q) U_H.
        let u_h_top = u_h.submatrix(0, k, 0, keep);
        let u_h_bottom = u_h.submatrix(k, k + q, 0, keep);
        let u_old = ops::matmul(&self.u, &u_h_top)?;
        self.u = u_old.vcat(&u_h_bottom)?;
        // V <- [V_k | Q_r] V_H (rotates folded-in document rows too).
        let v_ext = self.v.hcat(&q_r)?;
        self.v = ops::matmul(&v_ext, &v_h)?;
        self.s = sigma_new;
        self.refresh_doc_norms();
        // Every document row rotated: re-derive index assignments.
        self.index_reassign_all()?;

        // Rebuild the stored weighted matrix with the q new rows (new
        // terms get unit global weight, mirroring fold_in_terms).
        let old = &self.weighted;
        let mut coo = CooMatrix::new(old.nrows() + q, old.ncols());
        for (r, c, v) in old.iter() {
            coo.push(r, c, v).expect("within shape");
        }
        for (qi, row) in t_rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate().take(old.ncols()) {
                if v != 0.0 {
                    coo.push(old.nrows() + qi, c, v).expect("within shape");
                }
            }
        }
        self.weighted = coo.to_csc();
        for (name, _) in terms {
            self.folded_terms.push(name.to_lowercase());
            self.term_origins.push(DocOrigin::Svd);
            self.global_weights.push(1.0);
        }
        Ok(())
    }

    /// SVD-update for term-weight corrections (Eq. 12):
    /// `W = A_k + Y_j Z_jᵀ`, where `Y_j` selects the `j` re-weighted
    /// term rows and `Z_j`'s columns hold the per-document weight
    /// deltas.
    ///
    /// `changes` maps a term row index to its delta vector over the
    /// model's documents.
    pub fn svd_update_weights(&mut self, changes: &[(usize, Vec<f64>)]) -> Result<()> {
        let _span = lsi_obs::span("update");
        let nnz_z: usize = changes
            .iter()
            .map(|(_, d)| d.iter().filter(|&&v| v != 0.0).count())
            .sum();
        lsi_obs::add_flops(
            crate::complexity::CostParams::with_defaults(self.n_terms(), self.n_docs(), self.k())
                .svd_update_weights(changes.len(), nnz_z) as f64,
        );
        lsi_obs::count("update.svd_update_weights.count", changes.len() as u64);
        let k = self.k();
        let n = self.n_docs();
        if changes.is_empty() {
            return Ok(());
        }
        for (term, delta) in changes {
            if *term >= self.n_terms() {
                return Err(Error::Inconsistent {
                    context: format!("term row {term} out of range"),
                });
            }
            if delta.len() != n {
                return Err(Error::Inconsistent {
                    context: format!(
                        "delta for term {term} has {} entries, expected {n}",
                        delta.len()
                    ),
                });
            }
        }

        // W = A_k + Y Z^T with Y the unit columns selecting the
        // re-weighted term rows and Z the per-document deltas. The
        // paper's Eq. 12 projects both onto the current factors
        // (Q = Sigma + U^T Y Z^T V); as with the other phases we carry
        // the out-of-span residuals so the rank-j update of A_k is
        // exact.
        let j_count = changes.len();
        let m_rows = self.n_terms();

        // Y (m x j): unit columns; Yhat = U^T Y (k x j); residual
        // RY = Y - U Yhat.
        let mut yhat = DenseMatrix::zeros(k, j_count);
        let mut ry = DenseMatrix::zeros(m_rows, j_count);
        for (jj, (term, _)) in changes.iter().enumerate() {
            let urow = self.u.row(*term);
            for a in 0..k {
                yhat.set(a, jj, urow[a]);
            }
            ry.set(*term, jj, 1.0);
            for a in 0..k {
                let coeff = urow[a];
                let ua = self.u.col(a).to_vec();
                lsi_linalg::vecops::axpy(-coeff, &ua, ry.col_mut(jj));
            }
        }
        let mut qy = ry.clone();
        let kept_y = lsi_linalg::qr::mgs_orthonormalize(&mut qy);
        let qy_cols: Vec<Vec<f64>> = (0..j_count)
            .filter(|&c| kept_y[c])
            .map(|c| qy.col(c).to_vec())
            .collect();
        let jy = qy_cols.len();
        let qy = if jy > 0 {
            DenseMatrix::from_cols(&qy_cols)?
        } else {
            DenseMatrix::zeros(m_rows, 0)
        };
        let ry_coef = ops::matmul_tn(&qy, &ry)?; // jy x j

        // Z (n x j): deltas; Zhat = V^T Z; residual RZ = Z - V Zhat.
        let mut zhat = DenseMatrix::zeros(k, j_count);
        let mut rz = DenseMatrix::zeros(n, j_count);
        for (jj, (_, delta)) in changes.iter().enumerate() {
            rz.col_mut(jj).copy_from_slice(delta);
            for a in 0..k {
                let coeff = lsi_linalg::vecops::dot(delta, self.v.col(a));
                zhat.set(a, jj, coeff);
                let va = self.v.col(a).to_vec();
                lsi_linalg::vecops::axpy(-coeff, &va, rz.col_mut(jj));
            }
        }
        let mut qz = rz.clone();
        let kept_z = lsi_linalg::qr::mgs_orthonormalize(&mut qz);
        let qz_cols: Vec<Vec<f64>> = (0..j_count)
            .filter(|&c| kept_z[c])
            .map(|c| qz.col(c).to_vec())
            .collect();
        let jz = qz_cols.len();
        let qz = if jz > 0 {
            DenseMatrix::from_cols(&qz_cols)?
        } else {
            DenseMatrix::zeros(n, 0)
        };
        let rz_coef = ops::matmul_tn(&qz, &rz)?; // jz x j

        // K = [[Sigma, 0],[0, 0]] + [Yhat; RYcoef] [Zhat; RZcoef]^T,
        // (k+jy) x (k+jz).
        let ystack = yhat.vcat(&ry_coef)?; // (k+jy) x j
        let zstack = zhat.vcat(&rz_coef)?; // (k+jz) x j
        let mut kmat = ops::matmul_nt(&ystack, &zstack)?;
        for a in 0..k {
            kmat.add_to(a, a, self.s[a]);
        }
        let svd_k = jacobi_svd(&kmat)?;
        let keep = k.min(svd_k.s.len());
        let u_ext = self.u.hcat(&qy)?;
        let v_ext = self.v.hcat(&qz)?;
        self.u = ops::matmul(&u_ext, &svd_k.u.truncate_cols(keep))?;
        self.v = ops::matmul(&v_ext, &svd_k.v.truncate_cols(keep))?;
        self.s = svd_k.s[..keep].to_vec();
        self.refresh_doc_norms();
        // Every document row rotated: re-derive index assignments.
        self.index_reassign_all()?;

        // Apply the deltas to the stored weighted matrix.
        let old = &self.weighted;
        let mut coo = CooMatrix::new(old.nrows(), old.ncols());
        for (r, c, v) in old.iter() {
            coo.push(r, c, v).expect("within shape");
        }
        for (term, delta) in changes {
            if *term < old.nrows() {
                for (c, &dv) in delta.iter().enumerate().take(old.ncols()) {
                    if dv != 0.0 {
                        coo.push(*term, c, dv).expect("within shape");
                    }
                }
            }
        }
        self.weighted = coo.to_csc();
        Ok(())
    }

    /// Recompute the truncated SVD from the stored (possibly grown)
    /// weighted matrix — the paper's accuracy yardstick for the
    /// updating methods. Folded-in document/term rows that are not part
    /// of the stored matrix are dropped (they are re-foldable).
    pub fn recompute(&mut self, k: usize) -> Result<()> {
        let _span = lsi_obs::span("recompute");
        let k = k.min(self.weighted.nrows().min(self.weighted.ncols()));
        let operator = lsi_sparse::ops::DualFormat::from_csc(self.weighted.clone());
        let (svd, _) = robust_svd(&operator, k, &RobustOptions::default())?;
        // Rows beyond the stored matrix (folded-in) are dropped.
        self.u = svd.u;
        self.s = svd.s;
        self.v = svd.v;
        let n_docs = self.weighted.ncols();
        let n_terms = self.weighted.nrows();
        self.doc_ids.truncate(n_docs);
        self.doc_origins = vec![DocOrigin::Svd; n_docs];
        self.folded_terms
            .truncate(n_terms.saturating_sub(self.vocab.len()));
        self.term_origins = vec![DocOrigin::Svd; n_terms];
        self.global_weights.resize(n_terms, 1.0);
        self.refresh_doc_norms();
        // V was rebuilt from scratch (and may have shrunk): the
        // row-count check inside forces a fresh clustering.
        self.index_reassign_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LsiOptions;
    use lsi_linalg::ops::matmul_tn;
    use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};

    fn corpus() -> Corpus {
        Corpus::from_pairs([
            ("d1", "apple banana apple cherry"),
            ("d2", "banana cherry banana date"),
            ("d3", "apple cherry date fig"),
            ("d4", "grape fig date grape"),
            ("d5", "fig grape apple banana"),
            ("d6", "cherry date fig grape"),
        ])
    }

    fn build(k: usize) -> LsiModel {
        let options = LsiOptions {
            k,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::none(),
            svd_seed: 7,
        };
        LsiModel::build(&corpus(), &options).unwrap().0
    }

    fn orthonormality(m: &DenseMatrix) -> f64 {
        let g = matmul_tn(m, m).unwrap();
        g.fro_distance(&DenseMatrix::identity(m.ncols())).unwrap()
    }

    #[test]
    fn fold_in_documents_preserves_existing_rows() {
        let mut m = build(3);
        let v_before = m.doc_matrix().clone();
        let u_before = m.term_matrix().clone();
        m.fold_in_documents(&Corpus::from_pairs([("new1", "apple banana cherry")]))
            .unwrap();
        assert_eq!(m.n_docs(), 7);
        // Pre-existing rows bitwise identical: "the coordinates of the
        // original topics stay fixed".
        for j in 0..6 {
            assert_eq!(m.doc_vector(j), v_before.row(j));
        }
        assert_eq!(m.term_matrix(), &u_before);
        assert_eq!(m.doc_origins()[6], DocOrigin::FoldedIn);
    }

    #[test]
    fn folding_in_existing_document_lands_on_its_vector() {
        // At full rank, folding in a document identical to column j of A
        // reproduces row j of V exactly (Eq. 7 inverts Eq. 1).
        let mut m = build(6);
        let original = m.doc_vector(0);
        m.fold_in_documents(&Corpus::from_pairs([("copy", "apple banana apple cherry")]))
            .unwrap();
        let folded = m.doc_vector(m.n_docs() - 1);
        for (a, b) in original.iter().zip(folded.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fold_in_rejects_duplicate_ids() {
        let mut m = build(2);
        assert!(m
            .fold_in_documents(&Corpus::from_pairs([("d1", "apple")]))
            .is_err());
    }

    #[test]
    fn fold_in_terms_appends_rows() {
        let mut m = build(3);
        let n = m.n_docs();
        let counts = vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        assert_eq!(counts.len(), n);
        m.fold_in_terms(&[("kiwi".to_string(), counts)]).unwrap();
        assert_eq!(m.n_terms(), m.vocabulary().len() + 1);
        assert!(m.term_index("kiwi").is_some());
        // Folding a duplicate term errors.
        assert!(m
            .fold_in_terms(&[("kiwi".to_string(), vec![0.0; 6])])
            .is_err());
        // Wrong length errors.
        assert!(m
            .fold_in_terms(&[("melon".to_string(), vec![0.0; 3])])
            .is_err());
    }

    #[test]
    fn svd_update_documents_keeps_factors_orthonormal() {
        let mut m = build(3);
        let d = m
            .vocabulary()
            .count_matrix(&Corpus::from_pairs([("n1", "apple banana fig"), ("n2", "date grape")]));
        m.svd_update_documents(&d, &["n1".to_string(), "n2".to_string()])
            .unwrap();
        assert_eq!(m.n_docs(), 8);
        assert!(orthonormality(m.term_matrix()) < 1e-9);
        assert!(orthonormality(m.doc_matrix()) < 1e-9);
        // Singular values stay sorted.
        for w in m.singular_values().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_update_matches_recompute_at_full_rank() {
        // At k = rank, SVD-updating is exact: its singular values match
        // a fresh decomposition of the extended matrix.
        let mut m = build(6);
        let new = Corpus::from_pairs([("n1", "apple banana cherry date fig grape")]);
        let d = m.vocabulary().count_matrix(&new);
        let k = m.k();
        m.svd_update_documents(&d, &["n1".to_string()]).unwrap();

        // Oracle: dense SVD of the stored (extended) weighted matrix.
        let oracle = lsi_linalg::dense_svd(&m.weighted_matrix().to_dense()).unwrap();
        for (got, want) in m.singular_values().iter().zip(oracle.s.iter()).take(k) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn svd_update_documents_is_exact_for_ak_extension() {
        // Even at truncated rank, the residual-carrying update computes
        // the exact rank-k SVD of B = (A_k | D).
        let mut m = build(2);
        let ak = m.reconstruct_ak().unwrap();
        let new = Corpus::from_pairs([("n1", "apple grape grape"), ("n2", "cherry fig")]);
        let d = m.vocabulary().count_matrix(&new);
        let d_dense = d.to_dense();
        let b = ak.hcat(&d_dense).unwrap();
        let oracle = lsi_linalg::dense_svd(&b).unwrap();

        m.svd_update_documents(&d, &["n1".to_string(), "n2".to_string()])
            .unwrap();
        for (got, want) in m.singular_values().iter().zip(oracle.s.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs oracle {want}");
        }
        // Reconstruction agrees with the oracle's rank-k truncation.
        let ours = m.reconstruct_ak().unwrap();
        let theirs = oracle.truncate(m.k()).reconstruct().unwrap();
        assert!(ours.fro_distance(&theirs).unwrap() < 1e-8);
    }

    #[test]
    fn svd_update_terms_is_exact_for_ak_extension() {
        let mut m = build(2);
        let ak = m.reconstruct_ak().unwrap();
        let t_counts = vec![1.0, 0.0, 2.0, 0.0, 1.0, 0.0];
        let t_row = DenseMatrix::from_rows(std::slice::from_ref(&t_counts)).unwrap();
        let c = ak.vcat(&t_row).unwrap();
        let oracle = lsi_linalg::dense_svd(&c).unwrap();

        m.svd_update_terms(&[("kiwi".to_string(), t_counts)]).unwrap();
        for (got, want) in m.singular_values().iter().zip(oracle.s.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs oracle {want}");
        }
    }

    #[test]
    fn svd_update_weights_is_exact_for_rank_j_update() {
        let mut m = build(2);
        let ak = m.reconstruct_ak().unwrap();
        let term = 1usize;
        let delta = vec![0.5, 0.0, -0.25, 0.0, 1.0, 0.0];
        let mut w = ak.clone();
        for (c, &dv) in delta.iter().enumerate() {
            w.add_to(term, c, dv);
        }
        let oracle = lsi_linalg::dense_svd(&w).unwrap();
        m.svd_update_weights(&[(term, delta)]).unwrap();
        for (got, want) in m.singular_values().iter().zip(oracle.s.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs oracle {want}");
        }
    }

    #[test]
    fn svd_update_moves_existing_documents() {
        // Unlike folding-in, updating redefines the latent structure.
        let mut m = build(2);
        let before = m.doc_vector(0);
        let d = m
            .vocabulary()
            .count_matrix(&Corpus::from_pairs([("n1", "apple apple banana banana")]));
        m.svd_update_documents(&d, &["n1".to_string()]).unwrap();
        let after = m.doc_vector(0);
        let diff: f64 = before
            .iter()
            .zip(after.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "existing coordinates should move, diff {diff}");
    }

    #[test]
    fn svd_update_terms_keeps_factors_orthonormal() {
        let mut m = build(3);
        let n = m.n_docs();
        m.svd_update_terms(&[
            ("kiwi".to_string(), vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0]),
            ("melon".to_string(), vec![0.0, 1.0, 1.0, 0.0, 0.0, 0.0]),
        ])
        .unwrap();
        assert_eq!(m.n_terms(), m.vocabulary().len() + 2);
        assert_eq!(m.n_docs(), n);
        assert!(orthonormality(m.term_matrix()) < 1e-9);
        assert!(orthonormality(m.doc_matrix()) < 1e-9);
        assert!(m.term_index("melon").is_some());
    }

    #[test]
    fn svd_update_terms_exact_at_full_rank() {
        let mut m = build(6);
        let k = m.k();
        m.svd_update_terms(&[("kiwi".to_string(), vec![2.0, 0.0, 1.0, 0.0, 0.0, 1.0])])
            .unwrap();
        let oracle = lsi_linalg::dense_svd(&m.weighted_matrix().to_dense()).unwrap();
        for (got, want) in m.singular_values().iter().zip(oracle.s.iter()).take(k) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn weight_correction_exact_for_in_span_changes() {
        // Build a delta that lies in span(V_k) by construction: scale an
        // existing term row. At full rank every delta qualifies.
        let mut m = build(6);
        let k = m.k();
        let term = 0usize;
        // Delta: +0.5 to term 0's weight in every document it occurs in.
        let csr = m.weighted_matrix().to_csr();
        let (cols, vals) = csr.row(term);
        let mut delta = vec![0.0; m.n_docs()];
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            delta[c] = 0.5 * v;
        }
        m.svd_update_weights(&[(term, delta)]).unwrap();
        assert!(orthonormality(m.term_matrix()) < 1e-9);
        assert!(orthonormality(m.doc_matrix()) < 1e-9);
        let oracle = lsi_linalg::dense_svd(&m.weighted_matrix().to_dense()).unwrap();
        for (got, want) in m.singular_values().iter().zip(oracle.s.iter()).take(k) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn weight_correction_validates_input() {
        let mut m = build(3);
        assert!(m.svd_update_weights(&[(999, vec![0.0; 6])]).is_err());
        assert!(m.svd_update_weights(&[(0, vec![0.0; 2])]).is_err());
        assert!(m.svd_update_weights(&[]).is_ok());
    }

    #[test]
    fn recompute_restores_exact_factors() {
        let mut m = build(3);
        // Fold in a document (degrades the representation), then
        // recompute: folded row is dropped, factors are fresh.
        m.fold_in_documents(&Corpus::from_pairs([("x", "apple banana")]))
            .unwrap();
        assert_eq!(m.n_docs(), 7);
        m.recompute(3).unwrap();
        assert_eq!(m.n_docs(), 6);
        assert!(orthonormality(m.doc_matrix()) < 1e-9);
        let oracle = lsi_linalg::dense_svd(&m.weighted_matrix().to_dense()).unwrap();
        for (got, want) in m.singular_values().iter().zip(oracle.s.iter()).take(3) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn update_dimension_validation() {
        let mut m = build(3);
        let wrong_rows = CscMatrix::zeros(2, 1);
        assert!(m
            .svd_update_documents(&wrong_rows, &["x".to_string()])
            .is_err());
        let ok_shape = CscMatrix::zeros(m.n_terms(), 1);
        assert!(m.svd_update_documents(&ok_shape, &[]).is_err()); // id count mismatch
        assert!(m
            .svd_update_documents(&ok_shape, &["d1".to_string()])
            .is_err()); // duplicate id
    }

    #[test]
    fn queries_work_after_each_update_kind() {
        let mut m = build(3);
        m.fold_in_documents(&Corpus::from_pairs([("f1", "apple cherry")]))
            .unwrap();
        let d = m
            .vocabulary()
            .count_matrix(&Corpus::from_pairs([("u1", "banana date")]));
        m.svd_update_documents(&d, &["u1".to_string()]).unwrap();
        m.svd_update_terms(&[("kiwi".to_string(), vec![1.0; m.n_docs()])])
            .unwrap();
        let ranked = m.query("apple cherry").unwrap();
        assert_eq!(ranked.matches.len(), m.n_docs());
        // d1/d3 contain apple+cherry, should rank above d4.
        assert!(ranked.rank_of("d1").unwrap() < ranked.rank_of("d4").unwrap());
    }

    #[test]
    fn folded_then_updated_document_coordinates_differ() {
        // Fold-in and SVD-update of the same document give different
        // (but correlated) positions at truncated rank.
        let text = "apple banana date date";
        let mut folded = build(2);
        folded
            .fold_in_documents(&Corpus {
                docs: vec![Document::new("x", text)],
            })
            .unwrap();
        let f = folded.doc_vector(folded.n_docs() - 1);

        let mut updated = build(2);
        let d = updated
            .vocabulary()
            .count_matrix(&Corpus::from_pairs([("x", text)]));
        updated.svd_update_documents(&d, &["x".to_string()]).unwrap();
        let u = updated.doc_vector(updated.n_docs() - 1);

        let cos = lsi_linalg::vecops::cosine(&f, &u);
        assert!(cos.abs() > 0.5, "positions should correlate, cos {cos}");
        let dist = lsi_linalg::vecops::distance(&f, &u);
        assert!(dist > 1e-9, "but not coincide exactly");
    }
}
