//! Hostile-input property tests for model persistence: any byte-level
//! corruption of a serialized model — truncation, bit flips, splices,
//! or outright garbage — must come back as a typed `Error::Persist`
//! (or, for corruption the trailer cannot see, another typed error),
//! never a panic.

use std::sync::OnceLock;

use lsi_core::{LsiModel, LsiOptions};
use lsi_text::{Corpus, ParsingRules, TermWeighting};
use proptest::prelude::*;

/// One serialized model, built once — proptest runs hundreds of cases
/// and the corpus/SVD cost would otherwise dominate the suite.
fn valid_json() -> &'static str {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| {
        let corpus = Corpus::from_pairs([
            ("d1", "apple banana apple cherry"),
            ("d2", "banana cherry banana date"),
            ("d3", "apple cherry date fig"),
            ("d4", "grape fig date grape"),
            ("d5", "fig grape apple banana"),
        ]);
        let options = LsiOptions {
            k: 3,
            rules: ParsingRules {
                min_df: 2,
                ..Default::default()
            },
            weighting: TermWeighting::log_entropy(),
            svd_seed: 11,
        };
        let (model, _) = LsiModel::build(&corpus, &options).unwrap();
        model.to_json().unwrap()
    })
}

/// Loading must not panic; errors must render through Display.
fn load_never_panics(json: &str) {
    if let Err(e) = LsiModel::from_json(json) {
        let _ = e.to_string();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncations_are_rejected_without_panicking(cut in 0usize..8192) {
        let json = valid_json();
        let cut = cut.min(json.len());
        // Cut on a char boundary (the serialized model is ASCII, but
        // don't let the test itself panic if that ever changes).
        let mut end = cut;
        while !json.is_char_boundary(end) {
            end -= 1;
        }
        let truncated = &json[..end];
        if !truncated.is_empty() && truncated.len() < json.len() {
            // A strict prefix must never load as a model.
            prop_assert!(LsiModel::from_json(truncated).is_err());
        } else {
            load_never_panics(truncated);
        }
    }

    #[test]
    fn byte_mutations_never_panic(pos in 0usize..8192, byte in 0u8..=255) {
        let mut bytes = valid_json().as_bytes().to_vec();
        let pos = pos % bytes.len();
        let original = bytes[pos];
        bytes[pos] = byte;
        // Mutations can break UTF-8; a real loader reads files as
        // strings, so only valid-UTF-8 mutants reach from_json.
        if let Ok(json) = std::str::from_utf8(&bytes) {
            if byte == original {
                prop_assert!(LsiModel::from_json(json).is_ok());
            } else {
                load_never_panics(json);
            }
        }
    }

    #[test]
    fn body_mutations_are_caught_by_the_checksum(pos in 0usize..4096, byte in b'0'..=b'9') {
        // Swap one digit inside the body for a different digit: the
        // length still matches, so only the checksum can catch it.
        let json = valid_json();
        let body_len = json.rsplit_once('\n').map_or(json.len(), |(b, _)| b.len());
        let mut bytes = json.as_bytes().to_vec();
        let pos = pos % body_len;
        if bytes[pos].is_ascii_digit() && bytes[pos] != byte {
            bytes[pos] = byte;
            let mutated = std::str::from_utf8(&bytes).unwrap();
            let err = LsiModel::from_json(mutated).unwrap_err();
            prop_assert!(
                err.to_string().contains("checksum mismatch"),
                "digit swap at {} gave: {}", pos, err
            );
        }
    }

    #[test]
    fn garbage_documents_never_panic(
        // 0 maps to a newline so multi-line garbage appears too.
        bytes in prop::collection::vec(0u8..96, 0..400),
    ) {
        let doc: Vec<u8> = bytes
            .iter()
            .map(|&b| if b == 0 { b'\n' } else { 0x1f + b })
            .collect();
        load_never_panics(std::str::from_utf8(&doc).unwrap());
    }

    #[test]
    fn oversized_indices_in_json_are_rejected(extra in 1usize..1000) {
        // Grow the declared V shape without growing its buffer: the
        // shape validator must reject it before any query indexes out
        // of bounds.
        let json = valid_json();
        let (body, _) = json.rsplit_once('\n').unwrap();
        let needle = "\"nrows\":";
        if let Some(pos) = body.rfind(needle) {
            let start = pos + needle.len();
            let end = start
                + body[start..]
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(0);
            let n: usize = body[start..end].parse().unwrap();
            let inflated = format!("{}{}{}", &body[..start], n + extra, &body[end..]);
            prop_assert!(LsiModel::from_json(&inflated).is_err());
        }
    }
}
