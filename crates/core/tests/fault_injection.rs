//! End-to-end fault-injection tests for the lsi-core boundaries.
//!
//! Failpoints are process-global, so these tests live in their own
//! integration binary (cargo gives it a dedicated process) and
//! serialize on a mutex so concurrently scheduled test threads never
//! see each other's armed failpoints.

use std::sync::Mutex;

use lsi_core::{Combine, Error, LsiModel, LsiOptions, MultiQuery, Precision};
use lsi_fault::{points, Action};
use lsi_svd::Fallback;
use lsi_text::{Corpus, ParsingRules, TermWeighting};

static SERIAL: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

fn corpus() -> Corpus {
    Corpus::from_pairs([
        ("d1", "apple banana apple cherry"),
        ("d2", "banana cherry banana date"),
        ("d3", "apple cherry date fig"),
        ("d4", "grape fig date grape"),
        ("d5", "fig grape apple banana"),
    ])
}

fn options() -> LsiOptions {
    LsiOptions {
        k: 2,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::none(),
        svd_seed: 7,
    }
}

fn model() -> LsiModel {
    LsiModel::build(&corpus(), &options()).unwrap().0
}

#[test]
fn forced_query_score_error_is_typed() {
    let _g = guard();
    let m = model();
    lsi_fault::arm(points::CORE_QUERY_SCORE, Action::ReturnErr, Some(1));
    let err = m.query("apple").unwrap_err();
    lsi_fault::disarm(points::CORE_QUERY_SCORE);
    assert!(
        err.to_string().contains("core.query.score"),
        "got {err}"
    );
    // The failpoint self-disarmed after one firing; queries recover.
    assert!(m.query("apple").is_ok());
}

#[test]
fn injected_nan_score_is_caught_by_the_boundary_guard() {
    let _g = guard();
    let m = model();
    lsi_fault::arm(points::CORE_QUERY_SCORE, Action::InjectNan, Some(1));
    let err = m.query("banana").unwrap_err();
    lsi_fault::disarm(points::CORE_QUERY_SCORE);
    assert!(matches!(err, Error::NonFinite { .. }), "got {err}");
    assert!(m.query("banana").is_ok());
}

#[test]
fn compressed_nan_injection_falls_back_to_the_exact_scan() {
    let _g = guard();
    let exact = model();
    let mut compressed = exact.clone();
    compressed.set_precision(Precision::F32);
    // The injected NaN poisons the *candidate sweep*, where the exact
    // path is still available — the non-finite guard must degrade to
    // it instead of erroring, and the served result must match the
    // oracle bit-for-bit.
    lsi_fault::arm(points::CORE_QUERY_SCORE, Action::InjectNan, Some(1));
    let served = compressed.query_top("apple", 3).unwrap();
    lsi_fault::disarm(points::CORE_QUERY_SCORE);
    let oracle = exact.query_top("apple", 3).unwrap();
    assert_eq!(served.ids(), oracle.ids());
    for (a, b) in served.matches.iter().zip(oracle.matches.iter()) {
        assert_eq!(a.cosine.to_bits(), b.cosine.to_bits());
    }
}

#[test]
fn compressed_forced_error_is_still_typed() {
    let _g = guard();
    let mut m = model();
    m.set_precision(Precision::F32);
    lsi_fault::arm(points::CORE_QUERY_SCORE, Action::ReturnErr, Some(1));
    let err = m.query_top("apple", 3).unwrap_err();
    lsi_fault::disarm(points::CORE_QUERY_SCORE);
    assert!(err.to_string().contains("core.query.score"), "got {err}");
    assert!(m.query_top("apple", 3).is_ok());
}

#[test]
fn compressed_multi_facet_nan_injection_also_falls_back() {
    let _g = guard();
    let exact = model();
    let mut compressed = exact.clone();
    compressed.set_precision(Precision::F32);
    let q = MultiQuery::from_texts(&exact, &["apple", "grape fig"]).unwrap();
    lsi_fault::arm(points::CORE_QUERY_SCORE, Action::InjectNan, Some(1));
    let served = compressed.query_multi_top(&q, Combine::Max, 3).unwrap();
    lsi_fault::disarm(points::CORE_QUERY_SCORE);
    let oracle = exact.query_multi_top(&q, Combine::Max, 3).unwrap();
    assert_eq!(served.ids(), oracle.ids());
}

#[test]
fn forced_persist_faults_are_typed_errors() {
    let _g = guard();
    let m = model();
    lsi_fault::arm(points::CORE_PERSIST_SAVE, Action::ReturnErr, Some(1));
    let err = m.to_json().unwrap_err();
    assert!(matches!(err, Error::Persist(_)), "got {err}");
    let json = m.to_json().unwrap();

    lsi_fault::arm(points::CORE_PERSIST_LOAD, Action::ReturnErr, Some(1));
    let err = LsiModel::from_json(&json).unwrap_err();
    assert!(matches!(err, Error::Persist(_)), "got {err}");
    assert!(LsiModel::from_json(&json).is_ok());
}

#[test]
fn lanczos_faults_during_build_degrade_to_a_fallback_rung() {
    let _g = guard();
    // Every Lanczos iteration fails, so the robust ladder must hand the
    // build to the randomized rung — the model still comes out usable.
    lsi_fault::arm(points::SVD_LANCZOS_ITER, Action::ReturnErr, None);
    let built = LsiModel::build(&corpus(), &options());
    lsi_fault::disarm(points::SVD_LANCZOS_ITER);
    let (m, report) = built.unwrap();
    assert_ne!(report.fallback, Fallback::None);
    assert_eq!(m.k(), 2);
    let ranked = m.query("apple banana").unwrap();
    assert_eq!(ranked.matches.len(), 5);
}

#[test]
fn nan_injection_during_lanczos_also_degrades_gracefully() {
    let _g = guard();
    lsi_fault::arm(points::SVD_LANCZOS_ITER, Action::InjectNan, None);
    let built = LsiModel::build(&corpus(), &options());
    lsi_fault::disarm(points::SVD_LANCZOS_ITER);
    let (m, report) = built.unwrap();
    assert_ne!(report.fallback, Fallback::None);
    assert!(m.query("cherry").is_ok());
}
