//! Large-collection behaviour: exercises the parallel ranking path
//! (engaged above ~4k documents) and the scalability of folding-in.

use lsi_core::{LsiModel, LsiOptions};
use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};

/// A deterministic corpus of `n` documents over a 40-word vocabulary
/// with 4 latent themes.
fn big_corpus(n: usize) -> Corpus {
    let themes: [&[&str]; 4] = [
        &["engine", "motor", "car", "wheel", "driver", "road", "fuel", "gear", "brake", "tyre"],
        &["lion", "zebra", "elephant", "giraffe", "savanna", "herd", "pride", "cub", "mane", "horn"],
        &["violin", "cello", "sonata", "tempo", "melody", "chord", "octave", "opus", "aria", "duet"],
        &["kernel", "thread", "cache", "stack", "heap", "mutex", "socket", "fiber", "paging", "shell"],
    ];
    let mut docs = Vec::with_capacity(n);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..n {
        let theme = themes[i % 4];
        let len = 6 + (next() % 6) as usize;
        let words: Vec<&str> = (0..len).map(|_| theme[(next() % 10) as usize]).collect();
        docs.push(Document::new(format!("d{i}"), words.join(" ")));
    }
    Corpus { docs }
}

#[test]
fn parallel_ranking_path_is_deterministic_and_topical() {
    // 4800 documents: the ranking loop runs under rayon.
    let corpus = big_corpus(4800);
    let options = LsiOptions {
        k: 4,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: 77,
    };
    let (model, _) = LsiModel::build(&corpus, &options).unwrap();
    assert_eq!(model.n_docs(), 4800);

    let r1 = model.query("violin sonata melody").unwrap();
    let r2 = model.query("violin sonata melody").unwrap();
    // Parallel scoring must be deterministic (scores computed
    // independently, sort is total with the doc-index tiebreak).
    assert_eq!(r1.ids(), r2.ids());

    // Top 100 hits are all music-theme documents (index ≡ 2 mod 4).
    for m in r1.matches.iter().take(100) {
        assert_eq!(m.doc % 4, 2, "doc {} leaked into music results", m.id);
    }
    // All 4800 documents are scored.
    assert_eq!(r1.matches.len(), 4800);
}

#[test]
fn folding_thousands_of_documents_stays_consistent() {
    let corpus = big_corpus(4096);
    let options = LsiOptions {
        k: 4,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::none(),
        svd_seed: 5,
    };
    let (mut model, _) = LsiModel::build(&corpus, &options).unwrap();
    let extra = Corpus {
        docs: big_corpus(600)
            .docs
            .into_iter()
            .map(|d| Document::new(format!("x{}", d.id), d.text))
            .collect(),
    };
    model.fold_in_documents(&extra).unwrap();
    assert_eq!(model.n_docs(), 4096 + 600);
    // Folded documents of the zoo theme score on par with the
    // originals (ties in the crowded 4-factor space break by index, so
    // check cosines rather than rank positions).
    let ranked = model.query("lion zebra savanna").unwrap();
    let best = ranked.matches[0].cosine;
    let best_folded = ranked
        .matches
        .iter()
        .find(|m| m.id.starts_with('x') && m.doc % 4 == 1)
        .map(|m| m.cosine)
        .expect("some folded zoo doc is scored");
    assert!(
        best - best_folded < 0.05,
        "folded zoo docs should score near the top: {best_folded:.4} vs {best:.4}"
    );
}
