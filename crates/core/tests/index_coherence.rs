//! Index-coherence property suite for the cluster-pruned retrieval
//! path.
//!
//! The contract under test: every model mutation keeps the cluster
//! index coherent — fold-in assigns the appended rows to their nearest
//! centroid, the SVD updates and `recompute` re-assign every row (and
//! retrain outright once the latent space drifts past the re-cluster
//! threshold or the factor shape changes) — so that at
//! `nprobe = n_lists` the pruned path covers the whole collection:
//! every document id is reachable (recall 1.0 against the exact scan)
//! and the ranked list is *bit-identical* to the
//! [`IndexPolicy::Exact`] oracle, after any interleaving of mutations
//! and in every precision mode. Persistence must not break this
//! either: a save/load roundtrip in the middle of an interleaving
//! preserves the trained index and the property keeps holding.
//!
//! Thread-mode coverage: the probe and survivor-sweep shards pin their
//! split layout by list, so bit-reproducibility across thread counts
//! is covered by `scripts/verify.sh`, which runs this whole suite both
//! pooled and under `LSI_NUM_THREADS=1`.

use std::collections::HashSet;

use lsi_core::{IndexPolicy, LsiModel, LsiOptions, Precision};
use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};

const THEMES: [&[&str]; 4] = [
    &["engine", "motor", "car", "wheel", "driver", "road", "fuel", "gear", "brake", "tyre"],
    &["lion", "zebra", "elephant", "giraffe", "savanna", "herd", "pride", "cub", "mane", "horn"],
    &["violin", "cello", "sonata", "tempo", "melody", "chord", "octave", "opus", "aria", "duet"],
    &["kernel", "thread", "cache", "stack", "heap", "mutex", "socket", "fiber", "paging", "shell"],
];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn random_text(state: &mut u64) -> String {
    let t1 = THEMES[(xorshift(state) % 4) as usize];
    let t2 = THEMES[(xorshift(state) % 4) as usize];
    let len = 6 + (xorshift(state) % 7) as usize;
    let words: Vec<&str> = (0..len)
        .map(|j| {
            let theme = if j % 2 == 0 { t1 } else { t2 };
            theme[(xorshift(state) % theme.len() as u64) as usize]
        })
        .collect();
    words.join(" ")
}

fn random_corpus(n: usize, seed: u64) -> Corpus {
    let mut state = seed | 1;
    Corpus {
        docs: (0..n)
            .map(|i| Document::new(format!("d{i}"), random_text(&mut state)))
            .collect(),
    }
}

fn build(corpus: &Corpus, k: usize, seed: u64) -> LsiModel {
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: seed,
    };
    LsiModel::build(corpus, &options).unwrap().0
}

fn random_queries(count: usize, seed: u64) -> Vec<String> {
    let mut state = seed | 1;
    (0..count).map(|_| random_text(&mut state)).collect()
}

fn assert_bit_identical(exact: &lsi_core::RankedList, pruned: &lsi_core::RankedList, ctx: &str) {
    assert_eq!(exact.matches.len(), pruned.matches.len(), "{ctx}: lengths differ");
    for (i, (a, b)) in exact.matches.iter().zip(pruned.matches.iter()).enumerate() {
        assert_eq!(a.doc, b.doc, "{ctx}: rank {i} documents differ");
        assert_eq!(
            a.cosine.to_bits(),
            b.cosine.to_bits(),
            "{ctx}: rank {i} cosine bits differ ({} vs {})",
            a.cosine,
            b.cosine
        );
    }
}

/// The coherence property itself: with the model's `Pruned` policy
/// clamped to full probe depth, the pruned scan is bit-identical to an
/// `Exact`-policy oracle at every `z`, and at `z = n_docs` it returns
/// each document exactly once (recall 1.0).
fn assert_full_depth_coherent(m: &LsiModel, queries: &[String], ctx: &str) {
    let n_lists = m
        .index_n_lists()
        .unwrap_or_else(|| panic!("{ctx}: cluster index missing under Pruned policy"));
    assert!(n_lists >= 1, "{ctx}: empty index");
    let n = m.n_docs();
    let mut oracle = m.clone();
    oracle.set_index_policy(IndexPolicy::Exact).unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let qhat = m.project_text(q).unwrap();
        for z in [1usize, 10, n] {
            let want = oracle.rank_projected_top(&qhat, z).unwrap();
            let got = m.rank_projected_top(&qhat, z).unwrap();
            assert_bit_identical(&want, &got, &format!("{ctx}: query {qi} ({q:?}), z={z}"));
        }
        let all = m.rank_projected_top(&qhat, n).unwrap();
        assert_eq!(all.matches.len(), n, "{ctx}: query {qi} full scan short");
        let ids: HashSet<&str> = all.ids().into_iter().collect();
        assert_eq!(ids.len(), n, "{ctx}: query {qi} returned duplicate ids");
    }
}

/// Apply mutation `op` (chosen by the interleaving driver) to `m`;
/// `step` salts the new document/term ids so they stay unique.
fn apply_mutation(m: &mut LsiModel, op: u64, step: usize, state: &mut u64) {
    match op % 5 {
        0 => {
            let docs: Vec<Document> = (0..1 + (xorshift(state) % 3) as usize)
                .map(|j| Document::new(format!("f{step}_{j}"), random_text(state)))
                .collect();
            m.fold_in_documents(&Corpus { docs }).unwrap();
        }
        1 => {
            // Built against n_terms (not the vocabulary) so the column
            // stays valid after an `svd_update_terms` step appended
            // term rows the tokenizer does not know about.
            let mut rows: Vec<usize> = (0..5)
                .map(|_| (xorshift(state) as usize) % m.n_terms())
                .collect();
            rows.sort_unstable();
            rows.dedup();
            let vals: Vec<f64> = rows.iter().map(|_| 1.0 + (xorshift(state) % 3) as f64).collect();
            let mut d = lsi_sparse::CscMatrix::zeros(m.n_terms(), 0);
            d.push_col(&rows, &vals).unwrap();
            m.svd_update_documents(&d, &[format!("u{step}")]).unwrap();
        }
        2 => {
            let n = m.n_docs();
            let mut counts = vec![0.0; n];
            for _ in 0..4 {
                counts[(xorshift(state) as usize) % n] = 1.0 + (xorshift(state) % 3) as f64;
            }
            m.svd_update_terms(&[(format!("t{step}"), counts)]).unwrap();
        }
        3 => {
            let n = m.n_docs();
            let term = (xorshift(state) as usize) % m.n_terms();
            let mut delta = vec![0.0; n];
            for _ in 0..3 {
                delta[(xorshift(state) as usize) % n] = 0.25;
            }
            m.svd_update_weights(&[(term, delta)]).unwrap();
        }
        _ => {
            let k = m.k();
            m.recompute(k).unwrap();
        }
    }
}

#[test]
fn interleaved_mutations_keep_full_depth_probe_bit_identical() {
    for seed in [0x1D_C0_0001u64, 0x1D_C0_0002] {
        let corpus = random_corpus(120, seed);
        let mut m = build(&corpus, 8, 31);
        // usize::MAX clamps to n_lists at query time, so the policy
        // stays "full probe depth" across re-clusters that change the
        // list count mid-interleaving.
        m.set_index_policy(IndexPolicy::Pruned { nprobe: usize::MAX }).unwrap();
        let queries = random_queries(4, seed ^ 0xABCD);
        assert_full_depth_coherent(&m, &queries, &format!("seed {seed:#x}, fresh build"));
        let mut state = seed.rotate_left(17) | 1;
        for step in 0..8 {
            let op = xorshift(&mut state);
            apply_mutation(&mut m, op, step, &mut state);
            assert_full_depth_coherent(
                &m,
                &queries,
                &format!("seed {seed:#x}, step {step} (op {})", op % 5),
            );
        }
    }
}

#[test]
fn fold_in_reaches_new_documents_without_retraining() {
    let corpus = random_corpus(100, 0x1D_C0_0003);
    let mut m = build(&corpus, 8, 37);
    m.set_index_policy(IndexPolicy::Pruned { nprobe: usize::MAX }).unwrap();
    let lists_before = m.index_n_lists().unwrap();
    // Well below the re-cluster threshold (0.25 * n): the append path
    // must assign the new rows without touching the trained centroids.
    let text = "violin sonata melody tempo violin chord";
    m.fold_in_documents(&Corpus::from_pairs([("fresh", text)])).unwrap();
    assert_eq!(m.index_n_lists().unwrap(), lists_before, "append retrained the index");
    let qhat = m.project_text(text).unwrap();
    let ranked = m.rank_projected_top(&qhat, m.n_docs()).unwrap();
    assert!(
        ranked.ids().contains(&"fresh"),
        "folded-in document unreachable through the index"
    );
    assert_full_depth_coherent(&m, &random_queries(3, 0xF01D), "post fold-in");
}

#[test]
fn shape_changing_recompute_rebuilds_the_index() {
    let corpus = random_corpus(90, 0x1D_C0_0004);
    let mut m = build(&corpus, 8, 41);
    m.set_index_policy(IndexPolicy::Pruned { nprobe: usize::MAX }).unwrap();
    // Grow the collection enough that a retrain would pick a different
    // list count, then force the rebuild with a rank change (the
    // reassignment hook rebuilds on any factor-shape mismatch).
    let mut state = 0xFEEDu64;
    let extra: Vec<Document> = (0..80)
        .map(|i| Document::new(format!("x{i}"), random_text(&mut state)))
        .collect();
    m.fold_in_documents(&Corpus { docs: extra }).unwrap();
    m.recompute(6).unwrap();
    let n = m.n_docs();
    let expected = ((n as f64).sqrt().round() as usize).clamp(1, n);
    assert_eq!(
        m.index_n_lists().unwrap(),
        expected,
        "rebuilt index must size its list count to the grown collection"
    );
    assert_full_depth_coherent(&m, &random_queries(3, 0xFEED), "post recompute(6)");
}

#[test]
fn persistence_roundtrip_mid_interleaving_preserves_coherence() {
    let corpus = random_corpus(110, 0x1D_C0_0005);
    let mut m = build(&corpus, 8, 43);
    m.set_index_policy(IndexPolicy::Pruned { nprobe: 3 }).unwrap();
    let mut state = 0xBEEF_0001u64;
    apply_mutation(&mut m, 0, 100, &mut state); // fold-in
    let lists = m.index_n_lists().unwrap();
    let json = m.to_json().unwrap();
    let mut loaded = LsiModel::from_json(&json).unwrap();
    assert_eq!(
        loaded.index_policy(),
        IndexPolicy::Pruned { nprobe: 3 },
        "policy must survive the roundtrip"
    );
    assert_eq!(loaded.index_n_lists(), Some(lists), "index must survive the roundtrip");
    // The persisted index serves bit-identically to the in-memory one.
    let queries = random_queries(3, 0xBEEF);
    for q in &queries {
        let qhat = m.project_text(q).unwrap();
        let a = m.rank_projected_top(&qhat, 10).unwrap();
        let b = loaded.rank_projected_top(&qhat, 10).unwrap();
        assert_bit_identical(&a, &b, &format!("roundtrip query {q:?}"));
    }
    // And the interleaving continues cleanly on the loaded copy.
    loaded.set_index_policy(IndexPolicy::Pruned { nprobe: usize::MAX }).unwrap();
    apply_mutation(&mut loaded, 1, 101, &mut state); // svd_update_documents
    assert_full_depth_coherent(&loaded, &queries, "post-roundtrip update");
    apply_mutation(&mut loaded, 4, 102, &mut state); // recompute
    assert_full_depth_coherent(&loaded, &queries, "post-roundtrip recompute");
}

#[test]
fn compressed_precisions_stay_coherent_under_mutation() {
    let corpus = random_corpus(130, 0x1D_C0_0006);
    let base = build(&corpus, 8, 47);
    for precision in [Precision::F32, Precision::I8] {
        let mut m = base.clone();
        m.set_precision(precision);
        m.set_index_policy(IndexPolicy::Pruned { nprobe: usize::MAX }).unwrap();
        let mut state = 0xC0DE_0001u64;
        apply_mutation(&mut m, 0, 200, &mut state); // fold-in
        apply_mutation(&mut m, 4, 201, &mut state); // recompute
        assert_full_depth_coherent(&m, &random_queries(3, 0xC0DE), &format!("{precision:?}"));
    }
}
