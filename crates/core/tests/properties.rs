//! Property-based tests on the LSI model: factor invariants, query
//! geometry, and updating exactness over randomly generated corpora.

use lsi_core::{LsiModel, LsiOptions};
use lsi_linalg::ops::matmul_tn;
use lsi_linalg::DenseMatrix;
use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};
use proptest::prelude::*;

/// Strategy: a corpus of `n_docs` documents over a small closed
/// vocabulary, so min_df = 2 keeps most words.
fn corpus_strategy() -> impl Strategy<Value = Corpus> {
    let word = prop::sample::select(vec![
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    ]);
    let doc = prop::collection::vec(word, 3..12);
    prop::collection::vec(doc, 4..10).prop_map(|docs| Corpus {
        docs: docs
            .into_iter()
            .enumerate()
            .map(|(i, words)| Document::new(format!("d{i}"), words.join(" ")))
            .collect(),
    })
}

fn build(corpus: &Corpus, k: usize) -> Option<LsiModel> {
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::none(),
        svd_seed: 9,
    };
    let (model, _) = LsiModel::build(corpus, &options).ok()?;
    if model.k() == 0 {
        None
    } else {
        Some(model)
    }
}

fn orthonormality(m: &DenseMatrix) -> f64 {
    if m.ncols() == 0 {
        return 0.0;
    }
    matmul_tn(m, m)
        .unwrap()
        .fro_distance(&DenseMatrix::identity(m.ncols()))
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn factors_are_orthonormal_and_sigma_sorted(corpus in corpus_strategy()) {
        let Some(model) = build(&corpus, 4) else { return Ok(()); };
        prop_assert!(orthonormality(model.term_matrix()) < 1e-8);
        prop_assert!(orthonormality(model.doc_matrix()) < 1e-8);
        for w in model.singular_values().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(model.singular_values().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn query_cosines_are_bounded_and_self_retrieval_works(corpus in corpus_strategy()) {
        let Some(model) = build(&corpus, 4) else { return Ok(()); };
        for (j, doc) in corpus.docs.iter().enumerate().take(3) {
            let ranked = model.query(&doc.text).unwrap();
            for m in &ranked.matches {
                prop_assert!(m.cosine <= 1.0 + 1e-9 && m.cosine >= -1.0 - 1e-9);
            }
            // Querying with a document's own text ranks that document
            // highly (ties possible with duplicate docs).
            let self_rank = ranked.matches.iter().position(|m| m.doc == j).unwrap();
            let self_cos = ranked.matches[self_rank].cosine;
            let best_cos = ranked.matches[0].cosine;
            prop_assert!(
                best_cos - self_cos < 1e-6 || self_rank < corpus.docs.len(),
                "self-retrieval cosine {} vs best {}", self_cos, best_cos
            );
        }
    }

    #[test]
    fn fold_in_never_moves_existing_rows(corpus in corpus_strategy()) {
        let Some(mut model) = build(&corpus, 3) else { return Ok(()); };
        let before: Vec<Vec<f64>> = (0..model.n_docs()).map(|j| model.doc_vector(j)).collect();
        model
            .fold_in_documents(&Corpus {
                docs: vec![Document::new("fresh", "alpha beta gamma")],
            })
            .unwrap();
        for (j, b) in before.iter().enumerate() {
            prop_assert_eq!(&model.doc_vector(j), b);
        }
    }

    #[test]
    fn svd_update_matches_dense_oracle_of_ak_extension(corpus in corpus_strategy()) {
        let Some(mut model) = build(&corpus, 3) else { return Ok(()); };
        let ak = model.reconstruct_ak().unwrap();
        let new = Corpus {
            docs: vec![Document::new("n0", "alpha gamma epsilon epsilon")],
        };
        let d = model.vocabulary().count_matrix(&new);
        let b = ak.hcat(&d.to_dense()).unwrap();
        let oracle = lsi_linalg::dense_svd(&b).unwrap();
        model
            .svd_update_documents(&d, &["n0".to_string()])
            .unwrap();
        for (got, want) in model.singular_values().iter().zip(oracle.s.iter()) {
            prop_assert!((got - want).abs() < 1e-8 * want.max(1.0), "{} vs {}", got, want);
        }
        prop_assert!(orthonormality(model.term_matrix()) < 1e-8);
        prop_assert!(orthonormality(model.doc_matrix()) < 1e-8);
    }

    #[test]
    fn persistence_roundtrip_is_lossless(corpus in corpus_strategy()) {
        let Some(model) = build(&corpus, 3) else { return Ok(()); };
        let back = LsiModel::from_json(&model.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.singular_values(), model.singular_values());
        prop_assert_eq!(back.doc_ids(), model.doc_ids());
        let q = "alpha beta";
        let r1 = model.query(q).unwrap();
        let r2 = back.query(q).unwrap();
        prop_assert_eq!(r1.ids(), r2.ids());
    }

    #[test]
    fn reconstruction_error_shrinks_with_k(corpus in corpus_strategy()) {
        let mut last_err = f64::INFINITY;
        for k in 1..=3 {
            let Some(model) = build(&corpus, k) else { return Ok(()); };
            let dense = model.weighted_matrix().to_dense();
            let err = model
                .reconstruct_ak()
                .unwrap()
                .fro_distance(&dense)
                .unwrap();
            prop_assert!(err <= last_err + 1e-9, "error grew: {} -> {}", last_err, err);
            last_err = err;
        }
    }
}
