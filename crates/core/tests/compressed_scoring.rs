//! Property suite for the compressed candidate-generation path.
//!
//! The contract under test: with [`Precision::F32`] active, the
//! two-phase scan (f32 candidate sweep → exact f64 re-rank → margin
//! certificate, with exact-scan fallback) returns a top-`z` that is
//! *bit-identical* — documents, order, and cosine bit patterns — to the
//! exact f64 oracle, on random Zipf-weighted corpora including
//! tie-heavy ones built from duplicated documents. [`Precision::I8`]
//! promises a statistical bound instead: recall@10 ≥ 0.99 against the
//! exact oracle, with the returned scores still exact f64 cosines.
//!
//! Thread-mode coverage: the scoring kernels pin their split layout by
//! pool size, so bit-reproducibility across thread counts is covered by
//! `scripts/verify.sh`, which runs this whole suite both pooled and
//! under `LSI_NUM_THREADS=1`.

use lsi_core::{LsiModel, LsiOptions, Precision};
use lsi_text::{Corpus, Document, ParsingRules, TermWeighting};

const THEMES: [&[&str]; 4] = [
    &["engine", "motor", "car", "wheel", "driver", "road", "fuel", "gear", "brake", "tyre"],
    &["lion", "zebra", "elephant", "giraffe", "savanna", "herd", "pride", "cub", "mane", "horn"],
    &["violin", "cello", "sonata", "tempo", "melody", "chord", "octave", "opus", "aria", "duet"],
    &["kernel", "thread", "cache", "stack", "heap", "mutex", "socket", "fiber", "paging", "shell"],
];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Zipf-ish pick over `m` ranks: mass ∝ 1/(r+1), via inverse CDF on a
/// precomputed cumulative table.
fn zipf_pick(state: &mut u64, cum: &[f64]) -> usize {
    let total = *cum.last().unwrap();
    let u = (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64 * total;
    cum.partition_point(|&c| c < u).min(cum.len() - 1)
}

fn zipf_table(m: usize) -> Vec<f64> {
    let mut cum = Vec::with_capacity(m);
    let mut acc = 0.0;
    for r in 0..m {
        acc += 1.0 / (r + 1) as f64;
        cum.push(acc);
    }
    cum
}

/// A random corpus of `n` documents. Each document draws a theme
/// mixture (so cosine scores spread out instead of clustering at the
/// theme centroids) and Zipf-weighted words within each theme.
fn random_corpus(n: usize, seed: u64) -> Corpus {
    let mut state = seed | 1;
    let cum = zipf_table(10);
    let mut docs = Vec::with_capacity(n);
    for i in 0..n {
        let primary = (xorshift(&mut state) % 4) as usize;
        let secondary = (xorshift(&mut state) % 4) as usize;
        let mix = xorshift(&mut state) % 100; // % of words from `primary`
        let len = 8 + (xorshift(&mut state) % 9) as usize;
        let words: Vec<&str> = (0..len)
            .map(|_| {
                let theme = if xorshift(&mut state) % 100 < mix {
                    THEMES[primary]
                } else {
                    THEMES[secondary]
                };
                theme[zipf_pick(&mut state, &cum)]
            })
            .collect();
        docs.push(Document::new(format!("d{i}"), words.join(" ")));
    }
    Corpus { docs }
}

fn build(corpus: &Corpus, k: usize, seed: u64) -> LsiModel {
    let options = LsiOptions {
        k,
        rules: ParsingRules {
            min_df: 2,
            ..Default::default()
        },
        weighting: TermWeighting::log_entropy(),
        svd_seed: seed,
    };
    LsiModel::build(corpus, &options).unwrap().0
}

/// Random word-mix query texts spanning one or two themes.
fn random_queries(count: usize, seed: u64) -> Vec<String> {
    let mut state = seed | 1;
    let cum = zipf_table(10);
    (0..count)
        .map(|_| {
            let t1 = THEMES[(xorshift(&mut state) % 4) as usize];
            let t2 = THEMES[(xorshift(&mut state) % 4) as usize];
            let len = 2 + (xorshift(&mut state) % 4) as usize;
            let words: Vec<&str> = (0..len)
                .map(|j| {
                    let theme = if j % 2 == 0 { t1 } else { t2 };
                    theme[zipf_pick(&mut state, &cum)]
                })
                .collect();
            words.join(" ")
        })
        .collect()
}

/// Bit-level equality of two ranked lists: same documents, same order,
/// same f64 cosine bit patterns.
fn assert_bit_identical(exact: &lsi_core::RankedList, compressed: &lsi_core::RankedList, ctx: &str) {
    assert_eq!(exact.matches.len(), compressed.matches.len(), "{ctx}: lengths differ");
    for (i, (a, b)) in exact.matches.iter().zip(compressed.matches.iter()).enumerate() {
        assert_eq!(a.doc, b.doc, "{ctx}: rank {i} documents differ");
        assert_eq!(
            a.cosine.to_bits(),
            b.cosine.to_bits(),
            "{ctx}: rank {i} cosine bits differ ({} vs {})",
            a.cosine,
            b.cosine
        );
    }
}

#[test]
fn f32_top_z_is_bit_identical_to_the_exact_oracle() {
    let corpus = random_corpus(400, 0x5EED_0001);
    let exact = build(&corpus, 8, 11);
    let mut compressed = exact.clone();
    compressed.set_precision(Precision::F32);
    for (qi, q) in random_queries(20, 0xABCD_EF01).iter().enumerate() {
        let qhat = exact.project_text(q).unwrap();
        for z in [1usize, 5, 10, 37] {
            let oracle = exact.rank_projected_top(&qhat, z).unwrap();
            let two_phase = compressed.rank_projected_top(&qhat, z).unwrap();
            assert_bit_identical(&oracle, &two_phase, &format!("query {qi} ({q:?}), z={z}"));
        }
    }
}

#[test]
fn tie_heavy_duplicate_corpora_stay_bit_identical() {
    // Every document duplicated: exact score ties everywhere, which is
    // precisely where the margin certificate must refuse and fall back
    // — the result must still be bit-identical to the oracle.
    let base = random_corpus(200, 0x5EED_0002);
    let corpus = Corpus {
        docs: base
            .docs
            .iter()
            .enumerate()
            .flat_map(|(i, d)| {
                [
                    Document::new(format!("a{i}"), d.text.clone()),
                    Document::new(format!("b{i}"), d.text.clone()),
                ]
            })
            .collect(),
    };
    let exact = build(&corpus, 8, 13);
    let mut compressed = exact.clone();
    compressed.set_precision(Precision::F32);
    for (qi, q) in random_queries(12, 0xABCD_EF02).iter().enumerate() {
        let qhat = exact.project_text(q).unwrap();
        for z in [1usize, 10, 25] {
            let oracle = exact.rank_projected_top(&qhat, z).unwrap();
            let two_phase = compressed.rank_projected_top(&qhat, z).unwrap();
            assert_bit_identical(&oracle, &two_phase, &format!("dup query {qi}, z={z}"));
        }
    }
}

#[test]
fn collections_below_the_candidate_floor_rerank_everything() {
    // n < OVER_FETCH_FLOOR: the candidate set is the whole collection,
    // the margin check is vacuous, and the re-rank alone must reproduce
    // the oracle bit-for-bit.
    let corpus = random_corpus(50, 0x5EED_0003);
    let exact = build(&corpus, 6, 17);
    let mut compressed = exact.clone();
    compressed.set_precision(Precision::F32);
    for q in random_queries(10, 0xABCD_EF03) {
        let qhat = exact.project_text(&q).unwrap();
        let oracle = exact.rank_projected_top(&qhat, 10).unwrap();
        let two_phase = compressed.rank_projected_top(&qhat, 10).unwrap();
        assert_bit_identical(&oracle, &two_phase, &format!("small corpus, query {q:?}"));
    }
}

#[test]
fn compressed_scores_are_always_finite() {
    let corpus = random_corpus(300, 0x5EED_0004);
    let exact = build(&corpus, 8, 19);
    for precision in [Precision::F32, Precision::I8] {
        let mut m = exact.clone();
        m.set_precision(precision);
        for q in random_queries(15, 0xABCD_EF04) {
            let qhat = m.project_text(&q).unwrap();
            let ranked = m.rank_projected_top(&qhat, 10).unwrap();
            for hit in &ranked.matches {
                assert!(
                    hit.cosine.is_finite(),
                    "{precision:?} produced non-finite cosine for {q:?}"
                );
            }
        }
        // The zero projection (no indexed terms) is the degenerate
        // all-ties case: every score is exactly 0, never NaN.
        let zero = vec![0.0; m.k()];
        let ranked = m.rank_projected_top(&zero, 5).unwrap();
        assert!(ranked.matches.iter().all(|h| h.cosine == 0.0));
    }
}

#[test]
fn i8_recall_at_10_is_at_least_99_percent() {
    let corpus = random_corpus(400, 0x5EED_0005);
    let exact = build(&corpus, 8, 23);
    let mut quantized = exact.clone();
    quantized.set_precision(Precision::I8);
    let queries = random_queries(100, 0xABCD_EF05);
    let mut hit = 0usize;
    let mut total = 0usize;
    for q in &queries {
        let qhat = exact.project_text(q).unwrap();
        let oracle = exact.rank_projected_top(&qhat, 10).unwrap();
        let approx = quantized.rank_projected_top(&qhat, 10).unwrap();
        let truth: Vec<&str> = oracle.ids();
        for id in approx.ids() {
            if truth.contains(&id) {
                hit += 1;
            }
        }
        total += truth.len();
        // Scores of returned documents are exact f64 cosines even on
        // the approximate ladder: any document present in both lists
        // carries the identical bit pattern.
        for m in &approx.matches {
            if let Some(r) = oracle.rank_of(m.id.as_ref()) {
                assert_eq!(m.cosine.to_bits(), oracle.matches[r].cosine.to_bits());
            }
        }
    }
    let recall = hit as f64 / total as f64;
    assert!(
        recall >= 0.99,
        "i8 recall@10 = {recall:.4} over {} queries (expected ≥ 0.99)",
        queries.len()
    );
}

#[test]
fn precision_modes_shrink_the_scoring_footprint() {
    let corpus = random_corpus(256, 0x5EED_0006);
    let mut m = build(&corpus, 8, 29);
    let exact_bytes = m.scoring_resident_bytes();
    m.set_precision(Precision::F32);
    let f32_bytes = m.scoring_resident_bytes();
    m.set_precision(Precision::I8);
    let i8_bytes = m.scoring_resident_bytes();
    // f32 halves the matrix; i8 is an eighth. The per-row scale vector
    // adds n·4 bytes to each compressed mode.
    let n = m.n_docs();
    assert_eq!(f32_bytes, exact_bytes / 2 + n * 4);
    assert_eq!(i8_bytes, exact_bytes / 8 + n * 4);
    m.set_precision(Precision::Exact);
    assert_eq!(m.scoring_resident_bytes(), exact_bytes);
}
