//! Relevance judgments.
//!
//! "These collections consist of a set of documents, a set of user
//! queries, and relevance judgements (i.e., for each query every
//! document in the collection has been judged as relevant or not to
//! the query)" (§5.1).

use std::collections::{HashMap, HashSet};

/// Relevance judgments for a collection: per query, the set of relevant
/// document indices (exhaustive judgments, as the paper's footnote 1
/// describes for classic test collections).
#[derive(Debug, Clone, Default)]
pub struct RelevanceJudgments {
    relevant: HashMap<usize, HashSet<usize>>,
}

impl RelevanceJudgments {
    /// Empty judgment set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `doc` is relevant to `query`.
    pub fn add(&mut self, query: usize, doc: usize) {
        self.relevant.entry(query).or_default().insert(doc);
    }

    /// Record a whole relevant set.
    pub fn add_all(&mut self, query: usize, docs: impl IntoIterator<Item = usize>) {
        self.relevant.entry(query).or_default().extend(docs);
    }

    /// The relevant set for `query` (empty set if none recorded).
    pub fn relevant(&self, query: usize) -> HashSet<usize> {
        self.relevant.get(&query).cloned().unwrap_or_default()
    }

    /// Is `doc` relevant to `query`?
    pub fn is_relevant(&self, query: usize, doc: usize) -> bool {
        self.relevant
            .get(&query)
            .is_some_and(|s| s.contains(&doc))
    }

    /// Number of queries with at least one judgment.
    pub fn n_queries(&self) -> usize {
        self.relevant.len()
    }

    /// Query ids with judgments, sorted.
    pub fn queries(&self) -> Vec<usize> {
        let mut q: Vec<usize> = self.relevant.keys().copied().collect();
        q.sort_unstable();
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut j = RelevanceJudgments::new();
        j.add(0, 3);
        j.add(0, 5);
        j.add(2, 1);
        assert!(j.is_relevant(0, 3));
        assert!(!j.is_relevant(0, 4));
        assert!(!j.is_relevant(1, 3));
        assert_eq!(j.relevant(0).len(), 2);
        assert_eq!(j.n_queries(), 2);
        assert_eq!(j.queries(), vec![0, 2]);
    }

    #[test]
    fn add_all_extends() {
        let mut j = RelevanceJudgments::new();
        j.add_all(1, [2, 4, 6]);
        j.add_all(1, [6, 8]);
        assert_eq!(j.relevant(1).len(), 4);
    }

    #[test]
    fn missing_query_has_empty_set() {
        let j = RelevanceJudgments::new();
        assert!(j.relevant(9).is_empty());
    }
}
