//! IR evaluation harness.
//!
//! §5.1 of the paper: "Two measures, precision and recall, are used to
//! summarize retrieval performance. ... Average precision across
//! several levels of recall can then be used as a summary measure of
//! performance", with footnote 2 fixing the levels at 0.25, 0.50, 0.75.
//! This crate implements those measures plus the two baselines the
//! paper compares against: the "standard keyword vector method in
//! SMART" and plain lexical matching (§3.2).

pub mod baselines;
pub mod curve;
pub mod judgments;
pub mod metrics;

pub use baselines::{LexicalMatcher, VectorSpaceModel};
pub use curve::PrecisionRecallCurve;
pub use judgments::RelevanceJudgments;
pub use metrics::{
    average_precision_3pt, interpolated_precision_at, precision_at, recall_at, RetrievalScore,
};
