//! Precision/recall metrics.
//!
//! §5.1: "Recall is the proportion of all relevant documents in the
//! collection that are retrieved by the system; and precision is the
//! proportion of relevant documents in the set returned to the user."
//! Footnote 2 defines the paper's summary number: "Performance is
//! average precision over recall levels of 0.25, 0.50 and 0.75."

use std::collections::HashSet;

/// The paper's three recall levels (footnote 2 of §5.2).
pub const THREE_POINT_LEVELS: [f64; 3] = [0.25, 0.50, 0.75];

/// Standard 11-point recall levels (0.0, 0.1, …, 1.0).
pub const ELEVEN_POINT_LEVELS: [f64; 11] =
    [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Precision within the top `z` of `ranking`.
pub fn precision_at(ranking: &[usize], relevant: &HashSet<usize>, z: usize) -> f64 {
    if z == 0 {
        return 0.0;
    }
    let z = z.min(ranking.len());
    if z == 0 {
        return 0.0;
    }
    let hits = ranking[..z].iter().filter(|d| relevant.contains(d)).count();
    hits as f64 / z as f64
}

/// Recall within the top `z` of `ranking`.
pub fn recall_at(ranking: &[usize], relevant: &HashSet<usize>, z: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let z = z.min(ranking.len());
    let hits = ranking[..z].iter().filter(|d| relevant.contains(d)).count();
    hits as f64 / relevant.len() as f64
}

/// Interpolated precision at recall `level`: the maximum precision at
/// any cutoff whose recall is ≥ `level` (the standard interpolation
/// used with fixed recall levels).
pub fn interpolated_precision_at(
    ranking: &[usize],
    relevant: &HashSet<usize>,
    level: f64,
) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut best = 0.0f64;
    let mut hits = 0usize;
    for (i, d) in ranking.iter().enumerate() {
        if relevant.contains(d) {
            hits += 1;
            let recall = hits as f64 / relevant.len() as f64;
            if recall + 1e-12 >= level {
                let precision = hits as f64 / (i + 1) as f64;
                best = best.max(precision);
            }
        }
    }
    best
}

/// The paper's summary measure: mean interpolated precision over recall
/// 0.25 / 0.50 / 0.75.
pub fn average_precision_3pt(ranking: &[usize], relevant: &HashSet<usize>) -> f64 {
    THREE_POINT_LEVELS
        .iter()
        .map(|&l| interpolated_precision_at(ranking, relevant, l))
        .sum::<f64>()
        / THREE_POINT_LEVELS.len() as f64
}

/// Mean interpolated precision over the standard 11 recall points.
pub fn average_precision_11pt(ranking: &[usize], relevant: &HashSet<usize>) -> f64 {
    ELEVEN_POINT_LEVELS
        .iter()
        .map(|&l| interpolated_precision_at(ranking, relevant, l))
        .sum::<f64>()
        / ELEVEN_POINT_LEVELS.len() as f64
}

/// Non-interpolated mean average precision (precision at each relevant
/// document's rank, averaged).
pub fn mean_average_precision(ranking: &[usize], relevant: &HashSet<usize>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut acc = 0.0;
    for (i, d) in ranking.iter().enumerate() {
        if relevant.contains(d) {
            hits += 1;
            acc += hits as f64 / (i + 1) as f64;
        }
    }
    acc / relevant.len() as f64
}

/// A per-system retrieval score averaged over queries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RetrievalScore {
    /// Mean 3-point average precision.
    pub avg_precision_3pt: f64,
    /// Mean 11-point average precision.
    pub avg_precision_11pt: f64,
    /// Mean non-interpolated average precision.
    pub map: f64,
}

impl RetrievalScore {
    /// Average the per-query metrics over `(ranking, relevant)` pairs.
    pub fn over_queries<'a, I>(runs: I) -> RetrievalScore
    where
        I: IntoIterator<Item = (&'a [usize], &'a HashSet<usize>)>,
    {
        let mut n = 0usize;
        let mut s3 = 0.0;
        let mut s11 = 0.0;
        let mut smap = 0.0;
        for (ranking, relevant) in runs {
            n += 1;
            s3 += average_precision_3pt(ranking, relevant);
            s11 += average_precision_11pt(ranking, relevant);
            smap += mean_average_precision(ranking, relevant);
        }
        if n == 0 {
            return RetrievalScore::default();
        }
        RetrievalScore {
            avg_precision_3pt: s3 / n as f64,
            avg_precision_11pt: s11 / n as f64,
            map: smap / n as f64,
        }
    }

    /// Relative improvement of `self` over `other` in 3-point average
    /// precision, as a fraction (the paper's "30% better" style
    /// numbers).
    pub fn improvement_over(&self, other: &RetrievalScore) -> f64 {
        if other.avg_precision_3pt == 0.0 {
            return 0.0;
        }
        (self.avg_precision_3pt - other.avg_precision_3pt) / other.avg_precision_3pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(docs: &[usize]) -> HashSet<usize> {
        docs.iter().copied().collect()
    }

    #[test]
    fn precision_and_recall_at_cutoffs() {
        let ranking = [1, 2, 3, 4, 5];
        let relevant = rel(&[2, 4]);
        assert_eq!(precision_at(&ranking, &relevant, 2), 0.5);
        assert_eq!(precision_at(&ranking, &relevant, 4), 0.5);
        assert_eq!(recall_at(&ranking, &relevant, 2), 0.5);
        assert_eq!(recall_at(&ranking, &relevant, 5), 1.0);
        assert_eq!(precision_at(&ranking, &relevant, 0), 0.0);
    }

    #[test]
    fn perfect_ranking_has_unit_scores() {
        let ranking = [7, 8, 1, 2];
        let relevant = rel(&[7, 8]);
        assert_eq!(average_precision_3pt(&ranking, &relevant), 1.0);
        assert_eq!(mean_average_precision(&ranking, &relevant), 1.0);
    }

    #[test]
    fn worst_ranking_has_low_scores() {
        let ranking = [1, 2, 3, 4, 9];
        let relevant = rel(&[9]);
        // Single relevant doc at rank 5: precision 0.2 at all levels.
        assert!((average_precision_3pt(&ranking, &relevant) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn interpolated_precision_is_monotone_in_level() {
        let ranking = [9, 1, 8, 2, 3, 7];
        let relevant = rel(&[7, 8, 9]);
        let mut last = f64::INFINITY;
        for level in [0.25, 0.5, 0.75, 1.0] {
            let p = interpolated_precision_at(&ranking, &relevant, level);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn interpolated_precision_known_values() {
        // Relevant at ranks 1 and 4 of 4, |relevant| = 2.
        let ranking = [5, 1, 2, 6];
        let relevant = rel(&[5, 6]);
        // recall 0.5 reached at rank 1 (precision 1.0);
        // recall 1.0 reached at rank 4 (precision 0.5).
        assert_eq!(interpolated_precision_at(&ranking, &relevant, 0.25), 1.0);
        assert_eq!(interpolated_precision_at(&ranking, &relevant, 0.50), 1.0);
        assert_eq!(interpolated_precision_at(&ranking, &relevant, 0.75), 0.5);
        let ap = average_precision_3pt(&ranking, &relevant);
        assert!((ap - (1.0 + 1.0 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relevant_set_scores_zero() {
        let ranking = [1, 2];
        let relevant = rel(&[]);
        assert_eq!(average_precision_3pt(&ranking, &relevant), 0.0);
        assert_eq!(recall_at(&ranking, &relevant, 2), 0.0);
    }

    #[test]
    fn over_queries_averages() {
        let r1 = vec![1usize, 2];
        let rel1 = rel(&[1]);
        let r2 = vec![3usize, 4];
        let rel2 = rel(&[4]);
        let score = RetrievalScore::over_queries([
            (r1.as_slice(), &rel1),
            (r2.as_slice(), &rel2),
        ]);
        // Query 1 perfect (1.0), query 2 has the relevant doc at rank 2
        // (0.5 everywhere).
        assert!((score.avg_precision_3pt - 0.75).abs() < 1e-12);
    }

    #[test]
    fn improvement_is_relative() {
        let a = RetrievalScore {
            avg_precision_3pt: 0.6,
            ..Default::default()
        };
        let b = RetrievalScore {
            avg_precision_3pt: 0.4,
            ..Default::default()
        };
        assert!((a.improvement_over(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.improvement_over(&RetrievalScore::default()), 0.0);
    }
}
