//! The paper's comparison systems.
//!
//! * [`VectorSpaceModel`] — "the standard keyword vector method in
//!   SMART" (§5.1): cosine between the weighted query vector and each
//!   weighted document column in the *full* term space (no dimension
//!   reduction).
//! * [`LexicalMatcher`] — the literal term-matching strawman of §3.2:
//!   a document matches if it shares at least one indexed query term.

use lsi_sparse::CscMatrix;
use lsi_text::{Corpus, TermWeighting, Vocabulary};

/// SMART-style keyword vector retrieval over the raw term space.
#[derive(Debug, Clone)]
pub struct VectorSpaceModel {
    vocab: Vocabulary,
    weighting: TermWeighting,
    global: Vec<f64>,
    /// Weighted matrix, documents as columns.
    matrix: CscMatrix,
    doc_norms: Vec<f64>,
}

impl VectorSpaceModel {
    /// Index `corpus` with an existing vocabulary and weighting scheme
    /// (use the same scheme as the LSI model under comparison).
    pub fn build(corpus: &Corpus, vocab: Vocabulary, weighting: TermWeighting) -> Self {
        let counts = vocab.count_matrix(corpus);
        let weighted = weighting.apply(&counts);
        let doc_norms = weighted.matrix.col_norms();
        VectorSpaceModel {
            vocab,
            weighting,
            global: weighted.global,
            matrix: weighted.matrix,
            doc_norms,
        }
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.matrix.ncols()
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Rank all documents by cosine to the weighted query vector,
    /// best first. Returns `(doc index, cosine)` pairs.
    pub fn rank(&self, query: &str) -> Vec<(usize, f64)> {
        let counts = self.vocab.count_vector(query);
        let weighted = self.weighting.weight_query(&counts, &self.global);
        let qnorm = lsi_linalg::vecops::nrm2(&weighted);
        let mut scores: Vec<(usize, f64)> = (0..self.n_docs())
            .map(|j| {
                let (rows, vals) = self.matrix.col(j);
                let mut dot = 0.0;
                for (&r, &v) in rows.iter().zip(vals.iter()) {
                    dot += weighted[r] * v;
                }
                let denom = qnorm * self.doc_norms[j];
                (j, if denom > 0.0 { dot / denom } else { 0.0 })
            })
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        scores
    }

    /// Ranking as a plain doc-index list (for the metrics functions).
    pub fn ranking(&self, query: &str) -> Vec<usize> {
        self.rank(query).into_iter().map(|(d, _)| d).collect()
    }

    /// Rank against an explicit weighted term vector (relevance-feedback
    /// callers construct these from document columns).
    pub fn rank_vector(&self, weighted: &[f64]) -> Vec<(usize, f64)> {
        assert_eq!(weighted.len(), self.matrix.nrows());
        let qnorm = lsi_linalg::vecops::nrm2(weighted);
        let mut scores: Vec<(usize, f64)> = (0..self.n_docs())
            .map(|j| {
                let (rows, vals) = self.matrix.col(j);
                let mut dot = 0.0;
                for (&r, &v) in rows.iter().zip(vals.iter()) {
                    dot += weighted[r] * v;
                }
                let denom = qnorm * self.doc_norms[j];
                (j, if denom > 0.0 { dot / denom } else { 0.0 })
            })
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        scores
    }

    /// A document's weighted column as a dense vector.
    pub fn doc_vector(&self, j: usize) -> Vec<f64> {
        let mut v = vec![0.0; self.matrix.nrows()];
        let (rows, vals) = self.matrix.col(j);
        for (&r, &val) in rows.iter().zip(vals.iter()) {
            v[r] = val;
        }
        v
    }
}

/// Literal lexical matching (§3.2): a document is returned iff it shares
/// at least one indexed term with the query; matches are ordered by
/// overlap count.
#[derive(Debug, Clone)]
pub struct LexicalMatcher {
    vocab: Vocabulary,
    matrix: CscMatrix,
}

impl LexicalMatcher {
    /// Index `corpus` against `vocab`.
    pub fn build(corpus: &Corpus, vocab: Vocabulary) -> Self {
        let matrix = vocab.count_matrix(corpus);
        LexicalMatcher { vocab, matrix }
    }

    /// Documents sharing at least one indexed term with the query,
    /// ordered by number of distinct shared terms (ties by index).
    pub fn matches(&self, query: &str) -> Vec<(usize, usize)> {
        let counts = self.vocab.count_vector(query);
        let qterms: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(i, _)| i)
            .collect();
        let mut out = Vec::new();
        for j in 0..self.matrix.ncols() {
            let (rows, _) = self.matrix.col(j);
            let overlap = qterms.iter().filter(|t| rows.contains(t)).count();
            if overlap > 0 {
                out.push((j, overlap));
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Matching document indices only.
    pub fn matching_docs(&self, query: &str) -> Vec<usize> {
        self.matches(query).into_iter().map(|(d, _)| d).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_text::ParsingRules;

    fn corpus() -> Corpus {
        Corpus::from_pairs([
            ("d0", "apple banana apple"),
            ("d1", "banana cherry banana"),
            ("d2", "cherry apple date"),
            ("d3", "date date cherry"),
        ])
    }

    fn vocab() -> Vocabulary {
        Vocabulary::build(
            &corpus(),
            &ParsingRules {
                min_df: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn vsm_ranks_exact_match_first() {
        let vsm = VectorSpaceModel::build(&corpus(), vocab(), TermWeighting::none());
        let ranked = vsm.rank("apple apple banana");
        assert_eq!(ranked[0].0, 0, "d0 is the exact topical match");
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn vsm_gives_zero_to_disjoint_docs() {
        let vsm = VectorSpaceModel::build(&corpus(), vocab(), TermWeighting::none());
        let ranked = vsm.rank("apple");
        let d3 = ranked.iter().find(|(d, _)| *d == 3).unwrap();
        assert_eq!(d3.1, 0.0, "d3 shares no terms with the query");
    }

    #[test]
    fn vsm_cosines_are_bounded() {
        let vsm = VectorSpaceModel::build(&corpus(), vocab(), TermWeighting::log_entropy());
        for (_, c) in vsm.rank("banana cherry") {
            assert!((-1e-12..=1.0 + 1e-12).contains(&c));
        }
    }

    #[test]
    fn vsm_doc_vector_roundtrip() {
        let vsm = VectorSpaceModel::build(&corpus(), vocab(), TermWeighting::none());
        let v = vsm.doc_vector(0);
        let ranked = vsm.rank_vector(&v);
        assert_eq!(ranked[0].0, 0);
        assert!((ranked[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lexical_matcher_returns_overlapping_docs_only() {
        let lex = LexicalMatcher::build(&corpus(), vocab());
        let m = lex.matching_docs("apple date");
        // d0 (apple), d2 (apple+date -> top), d3 (date).
        assert_eq!(m[0], 2);
        assert_eq!(m.len(), 3);
        assert!(!m.contains(&1));
    }

    #[test]
    fn lexical_matcher_empty_query_matches_nothing() {
        let lex = LexicalMatcher::build(&corpus(), vocab());
        assert!(lex.matching_docs("zzz qqq").is_empty());
    }

    #[test]
    fn lexical_ordering_by_overlap() {
        let lex = LexicalMatcher::build(&corpus(), vocab());
        let m = lex.matches("cherry date");
        // d2 and d3 both contain cherry and date; ties break by index.
        assert_eq!(m[0].0, 2);
        assert_eq!(m[0].1, 2);
        assert_eq!(m[1].0, 3);
        assert_eq!(m[1].1, 2);
    }
}
