//! Interpolated precision–recall curves.
//!
//! §5.1 evaluates systems by "average precision across several levels
//! of recall"; the full curve behind that summary is often the more
//! informative artifact (the paper's "LSI performs best ... at high
//! levels of recall" claim is a statement about the curve's right end).

use std::collections::HashSet;

use crate::metrics::{interpolated_precision_at, ELEVEN_POINT_LEVELS};

/// An interpolated precision–recall curve sampled at fixed recall
/// levels.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionRecallCurve {
    /// `(recall level, interpolated precision)` points, recall
    /// ascending.
    pub points: Vec<(f64, f64)>,
}

impl PrecisionRecallCurve {
    /// Curve of a single ranking at the standard 11 recall points.
    pub fn of_ranking(ranking: &[usize], relevant: &HashSet<usize>) -> PrecisionRecallCurve {
        PrecisionRecallCurve {
            points: ELEVEN_POINT_LEVELS
                .iter()
                .map(|&l| (l, interpolated_precision_at(ranking, relevant, l)))
                .collect(),
        }
    }

    /// Mean curve over several queries (pointwise average).
    pub fn mean_over<'a, I>(runs: I) -> PrecisionRecallCurve
    where
        I: IntoIterator<Item = (&'a [usize], &'a HashSet<usize>)>,
    {
        let mut sums = vec![0.0f64; ELEVEN_POINT_LEVELS.len()];
        let mut n = 0usize;
        for (ranking, relevant) in runs {
            for (i, &l) in ELEVEN_POINT_LEVELS.iter().enumerate() {
                sums[i] += interpolated_precision_at(ranking, relevant, l);
            }
            n += 1;
        }
        let denom = n.max(1) as f64;
        PrecisionRecallCurve {
            points: ELEVEN_POINT_LEVELS
                .iter()
                .zip(sums.iter())
                .map(|(&l, &s)| (l, s / denom))
                .collect(),
        }
    }

    /// Precision at the recall level nearest to `recall`.
    pub fn precision_at(&self, recall: f64) -> f64 {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.0 - recall)
                    .abs()
                    .partial_cmp(&(b.0 - recall).abs())
                    .expect("finite recall levels")
            })
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }

    /// Area under the curve (trapezoidal).
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| 0.5 * (w[1].0 - w[0].0) * (w[0].1 + w[1].1))
            .sum()
    }

    /// Render as an ASCII table (for the repro harness).
    pub fn render(&self) -> String {
        let mut out = String::from("  recall  precision\n");
        for &(r, p) in &self.points {
            let bar: String = std::iter::repeat_n('#', (p * 30.0) as usize).collect();
            out.push_str(&format!("  {r:.1}     {p:.4} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(docs: &[usize]) -> HashSet<usize> {
        docs.iter().copied().collect()
    }

    #[test]
    fn perfect_ranking_gives_flat_unit_curve() {
        let ranking = [1, 2, 3, 4];
        let relevant = rel(&[1, 2]);
        let c = PrecisionRecallCurve::of_ranking(&ranking, &relevant);
        for &(_, p) in &c.points {
            assert_eq!(p, 1.0);
        }
        assert!((c.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let ranking = [9, 1, 8, 2, 3, 7, 4, 5];
        let relevant = rel(&[7, 8, 9]);
        let c = PrecisionRecallCurve::of_ranking(&ranking, &relevant);
        for w in c.points.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn mean_over_averages_pointwise() {
        let r1 = vec![1usize, 2];
        let rel1 = rel(&[1]);
        let r2 = vec![3usize, 4];
        let rel2 = rel(&[4]);
        let mean = PrecisionRecallCurve::mean_over([
            (r1.as_slice(), &rel1),
            (r2.as_slice(), &rel2),
        ]);
        // Query 1 is perfect (precision 1 everywhere); query 2 has its
        // relevant doc at rank 2 (precision 0.5 everywhere).
        for &(_, p) in &mean.points {
            assert!((p - 0.75).abs() < 1e-12);
        }
    }

    #[test]
    fn precision_at_snaps_to_nearest_level() {
        let ranking = [5, 1, 2, 6];
        let relevant = rel(&[5, 6]);
        let c = PrecisionRecallCurve::of_ranking(&ranking, &relevant);
        assert_eq!(c.precision_at(0.52), c.precision_at(0.5));
        assert_eq!(c.precision_at(2.0), c.points.last().unwrap().1);
    }

    #[test]
    fn render_contains_all_levels() {
        let ranking = [1, 2];
        let relevant = rel(&[2]);
        let text = PrecisionRecallCurve::of_ranking(&ranking, &relevant).render();
        assert_eq!(text.lines().count(), 12); // header + 11 levels
    }

    #[test]
    fn empty_runs_mean_is_zero() {
        let mean = PrecisionRecallCurve::mean_over(std::iter::empty());
        assert!(mean.points.iter().all(|&(_, p)| p == 0.0));
    }
}
